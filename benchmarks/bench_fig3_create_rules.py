"""E-FIG3: the create-ECA-rules control flow — cost of rule definition.

Measures the full seven-step pipeline (filter -> parse -> name expansion
-> codegen -> server DDL -> LED graph -> persistence) for each of the
three definition forms.  Expected shape: forms that add an inline block
to the shared native trigger (primitive events, and IMMEDIATE triggers on
them) pay for regenerating that trigger — linear in the number of events
already multiplexed over the same (table, operation) — while composite
definitions only touch the LED and their own procedure, so they are the
cheapest despite the Snoop parse.
"""

import itertools
import time

from _helpers import agent_stack, print_series

_counter = itertools.count()


def test_create_primitive_rule(benchmark):
    _server, _agent, conn = agent_stack()

    def create():
        index = next(_counter)
        conn.execute(
            f"create trigger tp{index} on stock for insert "
            f"event ep{index} as print 'x'")

    # Fixed rounds: every created event enlarges the regenerated native
    # trigger, so unbounded calibration would measure a growing artifact.
    benchmark.pedantic(create, rounds=25, iterations=1)


def test_create_trigger_on_existing_event(benchmark):
    _server, _agent, conn = agent_stack()
    conn.execute(
        "create trigger t0 on stock for insert event shared as print 'x'")

    def create():
        index = next(_counter)
        conn.execute(f"create trigger te{index} event shared as print 'x'")

    benchmark.pedantic(create, rounds=25, iterations=1)


def test_create_composite_rule(benchmark):
    _server, _agent, conn = agent_stack()
    conn.execute(
        "create trigger ta on stock for insert event baseA as print 'a'")
    conn.execute(
        "create trigger tb on stock for delete event baseB as print 'b'")

    def create():
        index = next(_counter)
        conn.execute(
            f"create trigger tc{index} event ec{index} = baseA AND baseB "
            f"as print 'c'")

    benchmark.pedantic(create, rounds=25, iterations=1)


def test_rule_creation_series(benchmark):
    """Figure series: per-form creation cost side by side."""
    _server, _agent, conn = agent_stack()
    conn.execute(
        "create trigger seed on stock for insert event seedEv as print 's'")
    conn.execute(
        "create trigger seed2 on stock for delete event seedEv2 as print 's'")

    def timed(form, template, count=30):
        start = time.perf_counter()
        for _ in range(count):
            index = next(_counter)
            conn.execute(template.format(i=index))
        return form, f"{(time.perf_counter() - start) / count * 1e3:.3f}"

    rows = [
        timed("primitive",
              "create trigger sp{i} on stock for insert event se{i} "
              "as print 'x'"),
        timed("on existing event",
              "create trigger se_t{i} event seedEv as print 'x'"),
        timed("composite",
              "create trigger sc{i} event sce{i} = seedEv AND seedEv2 "
              "as print 'x'"),
    ]
    print_series("E-FIG3 rule creation cost", rows, ("form", "ms/rule"))
    benchmark(lambda: None)
