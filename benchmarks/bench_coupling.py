"""E-EXT1: coupling-mode cost comparison (Section 6 future work built).

Expected shape: IMMEDIATE pays the action inline; DEFERRED moves it to
commit time (the triggering statement gets cheaper, the commit dearer);
DETACHED takes it off the client path entirely at thread-spawn cost.
"""

import time

from _helpers import agent_stack, print_series


def _stack(coupling: str):
    _server, agent, conn = agent_stack()
    conn.execute(
        "create trigger tp on stock for insert event ev as print 'p'")
    conn.execute("create table log_t (n int)")
    conn.execute(
        f"create trigger tr event ev {coupling} as insert log_t values (1)")
    return agent, conn


def test_immediate_statement(benchmark):
    _agent, conn = _stack("IMMEDIATE")
    benchmark(conn.execute, "insert stock values ('X', 1.0, 1)")


def test_deferred_statement_plus_commit(benchmark):
    agent, conn = _stack("DEFERRED")

    def tx():
        conn.execute("begin tran")
        conn.execute("insert stock values ('X', 1.0, 1)")
        conn.execute("commit")

    benchmark(tx)


def test_detached_statement(benchmark):
    agent, conn = _stack("DETACHED")

    def fire():
        conn.execute("insert stock values ('X', 1.0, 1)")

    benchmark(fire)
    agent.action_handler.join_detached()


def test_coupling_comparison_series(benchmark):
    rows = []
    for coupling in ("IMMEDIATE", "DEFERRED", "DETACHED"):
        agent, conn = _stack(coupling)
        if coupling == "DEFERRED":
            conn.execute("begin tran")
        start = time.perf_counter()
        for _ in range(100):
            conn.execute("insert stock values ('X', 1.0, 1)")
        statement_ms = (time.perf_counter() - start) / 100 * 1e3
        commit_ms = 0.0
        if coupling == "DEFERRED":
            start = time.perf_counter()
            conn.execute("commit")
            commit_ms = (time.perf_counter() - start) * 1e3
        agent.action_handler.join_detached()
        executed = agent.persistent_manager.execute(
            "sentineldb", "select count(*) from sharma.log_t").last.scalar()
        rows.append((coupling, f"{statement_ms:.3f}", f"{commit_ms:.2f}",
                     executed))
    print_series(
        "E-EXT1 coupling modes (100 triggering inserts)",
        rows, ("coupling", "ms/stmt (client)", "commit ms", "actions run"))
    assert all(row[3] == 100 for row in rows)
    benchmark(lambda: None)
