"""E-FIG1: gateway transparency — identical results, bounded overhead.

Expected shape: the mediated path returns byte-identical results to the
direct path at a small constant per-command cost (one extra routing hop
through the Language Filter).
"""

import time

from _helpers import agent_stack, direct_stack, print_series

QUERY = "select symbol, price from stock where price > 50 order by symbol"
ROWS = [
    f"insert stock values ('S{i}', {20 + (i % 100)}.0, {i % 7})"
    for i in range(200)
]


def _fill(conn):
    for sql in ROWS:
        conn.execute(sql)


def test_direct_query(benchmark):
    _server, conn = direct_stack()
    _fill(conn)
    result = benchmark(conn.execute, QUERY)
    assert result.last.rows


def test_mediated_query(benchmark):
    _server, _agent, conn = agent_stack()
    _fill(conn)
    result = benchmark(conn.execute, QUERY)
    assert result.last.rows


def test_mediated_results_identical_and_overhead_bounded(benchmark):
    """The figure series: direct vs mediated latency and the ratio."""
    _dserver, direct = direct_stack()
    _aserver, _agent, mediated = agent_stack()
    _fill(direct)
    _fill(mediated)

    assert direct.execute(QUERY).last.rows == mediated.execute(QUERY).last.rows

    def once():
        mediated.execute(QUERY)

    benchmark(once)

    def clock(conn, n=300):
        start = time.perf_counter()
        for _ in range(n):
            conn.execute(QUERY)
        return (time.perf_counter() - start) / n

    direct_cost = clock(direct)
    mediated_cost = clock(mediated)
    ratio = mediated_cost / direct_cost
    print_series(
        "E-FIG1 transparency overhead (pass-through query)",
        [
            ("direct", f"{direct_cost * 1e6:.1f}"),
            ("mediated", f"{mediated_cost * 1e6:.1f}"),
            ("ratio", f"{ratio:.3f}x"),
        ],
        ("path", "us/query"),
    )
    # Shape check: mediation costs well under 2x on a pass-through query.
    assert ratio < 2.0
