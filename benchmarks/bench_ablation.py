"""Ablation benches for the design choices DESIGN.md calls out.

1. vNo-in-notification vs paper-format lookup: carrying the occurrence
   number in the datagram (our deviation) vs reading it back from
   ``SysPrimitiveEvent`` per notification (the paper's implied scheme).
2. Condition placement: a WHEN condition evaluated inside the generated
   procedure (in-server, our design) vs an agent-side rule that runs
   the action procedure and checks the condition with a separate query.
3. Index vs scan: the engine's equality indexes under a point-query
   workload (the substrate-level choice the mediator's bookkeeping
   queries sit on).
"""

import time

from _helpers import agent_stack, direct_stack, print_series


def test_ablation_vno_in_message(benchmark):
    """Deviation 3: self-contained notifications vs per-message lookup."""
    _server, agent, conn = agent_stack()
    conn.execute(
        "create trigger t on stock for insert event ev as print 'x'")
    conn.execute("insert stock values ('SEED', 1.0, 1)")

    with_vno = "sharma stock insert begin sentineldb.sharma.ev 1"
    without_vno = "sharma stock insert begin sentineldb.sharma.ev"

    def clock(payload, n=500):
        start = time.perf_counter()
        for _ in range(n):
            agent.notifier.on_payload(payload)
        return (time.perf_counter() - start) / n * 1e6

    fast = clock(with_vno)
    slow = clock(without_vno)  # falls back to a SysPrimitiveEvent query
    print_series(
        "Ablation: occurrence number in the notification payload",
        [
            ("vNo carried in message (ours)", f"{fast:.1f}"),
            ("paper format + lookup", f"{slow:.1f}"),
            ("lookup penalty", f"{slow / fast:.2f}x"),
        ],
        ("scheme", "us/notification"),
    )
    assert slow > fast
    benchmark(lambda: None)


def test_ablation_condition_placement(benchmark):
    """In-proc condition vs agent-side condition round trip."""
    _server, agent, conn = agent_stack()
    conn.execute(
        "create trigger t_base on stock for insert event ev as print 'b'")

    # In-server: the WHEN clause compiles into the procedure.
    conn.execute(
        "create trigger t_inproc event ev DEFERRED "
        "when (select count(*) from stock) < 0 "
        "as print 'never'")

    # Agent-side: a Python condition that issues its own query per firing.
    def python_condition(_occurrence):
        result = agent.persistent_manager.execute(
            "sentineldb", "select count(*) from sharma.stock")
        return result.last.scalar() < 0

    agent.led.add_rule(
        "agent_side_condition", "sentineldb.sharma.ev",
        action=lambda occ: None, condition=python_condition,
        coupling="DEFERRED")

    def clock(n=200):
        start = time.perf_counter()
        for _ in range(n):
            conn.execute("insert stock values ('X', 1.0, 1)")
        agent.flush_deferred()
        return (time.perf_counter() - start) / n * 1e3

    combined = clock()
    print_series(
        "Ablation: condition placement (both active, per statement)",
        [("in-proc + agent-side conditions", f"{combined:.3f}")],
        ("configuration", "ms/stmt"),
    )
    benchmark(lambda: None)


def test_ablation_index_vs_scan_series(benchmark):
    """Substrate choice: equality index vs full scan at three sizes."""
    rows = []
    for size in (200, 800, 3200):
        _server, conn = direct_stack()
        for i in range(size):
            conn.execute(f"insert stock values ('S{i}', {i}.0, {i})")
        probe = f"select qty from stock where symbol = 'S{size // 2}'"

        def clock(n=100):
            start = time.perf_counter()
            for _ in range(n):
                conn.execute(probe)
            return (time.perf_counter() - start) / n * 1e3

        scan = clock()
        conn.execute("create index ix on stock (symbol)")
        conn.execute(probe)  # pay the one-time lazy build
        indexed = clock()
        rows.append((size, f"{scan:.3f}", f"{indexed:.3f}",
                     f"{scan / indexed:.1f}x"))
    print_series(
        "Ablation: point query, scan vs equality index",
        rows, ("rows", "scan ms", "index ms", "speedup"))
    # Shape: speedup grows with table size.
    assert float(rows[-1][3][:-1]) > float(rows[0][3][:-1])
    benchmark(lambda: None)


def test_indexed_point_query(benchmark):
    _server, conn = direct_stack()
    for i in range(2000):
        conn.execute(f"insert stock values ('S{i}', {i}.0, {i})")
    conn.execute("create index ix on stock (symbol)")
    conn.execute("select qty from stock where symbol = 'S1000'")
    benchmark(conn.execute, "select qty from stock where symbol = 'S1000'")


def test_scanned_point_query(benchmark):
    _server, conn = direct_stack()
    for i in range(2000):
        conn.execute(f"insert stock values ('S{i}', {i}.0, {i})")
    benchmark(conn.execute, "select qty from stock where symbol = 'S1000'")
