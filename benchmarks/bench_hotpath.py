"""E-PERF2: the hot-path overhaul — plan cache, index scans, coalescing.

Three paired series quantify each layer of the PR:

1/2. The same parse-heavy batch repeated with the plan cache force-off
     vs force-on.  The cached path must be >= 1.3x faster at the median
     (``tools/check_hotpath.py`` gates the artifact in CI).
3/4. A point SELECT against a populated table with no index vs an
     equality index (the generalized ``_scan_plan`` path).
5.   An active insert whose table carries TWO primitive events on the
     same (table, operation): the generated trigger coalesces both
     segments into one datagram, so the agent decodes/locks once.
6.   A composite rule fired repeatedly: the ``sysContext`` refresh the
     action handler generates per firing uses ``@eca_vno<i>`` parameter
     slots instead of inlined occurrence numbers, so its batch *text*
     is constant across firings and the rule-origin cache hit rate must
     be as healthy as the client-origin one (it languished near 0.45
     when every firing inlined a fresh ``vNo`` literal).
7-12. Three planner pairs — point select, three-table join, grouped
     aggregate over 10k rows — each run through the legacy AST walker
     and the cost-based DAG executor.  The join pair is the headline:
     greedy join ordering plus hash joins replace the legacy cross
     product, and ``tools/check_hotpath.py`` gates its p50 speedup at
     >= PLANNER_RATIO (1.5x).

The artifact ``BENCH_hotpath.json`` also records the plan-cache stats
(with per-origin hit rates), index-scan totals, and coalescing counters
each series produced.
"""

from _helpers import (
    LATENCY_HEADERS,
    agent_stack,
    direct_stack,
    latency_row,
    measure_ms,
    print_series,
    write_bench_json,
)
from repro.obs import summarize

#: One parse-heavy batch, re-issued verbatim — the plan cache's best case
#: and exactly what the agent's generated SQL does to the engine.
HOT_BATCH = "\n".join([
    "select symbol, price, qty from stock where symbol = 'S1'",
    "select symbol from stock where symbol in ('S1', 'S2', 'S3')",
    "update stock set price = price + 0.25 where symbol = 'S2'",
    "select symbol, qty from stock where qty >= 0 and symbol = 'S3'",
    "select symbol, price from stock where symbol = 'S4'",
    "delete stock where symbol = 'S999'",
])

POINT_SELECT = "select symbol, price, qty from stock where symbol = 'S777'"

TABLE_ROWS = 2000

#: The planner pair's workloads: a point select, a three-table join
#: (where greedy ordering + hash joins replace the legacy cross
#: product), and a grouped aggregate over AGG_ROWS rows.
JOIN_SELECT = (
    "select s.symbol, q.bid, o.n from stock s, quotes q, orders o "
    "where s.symbol = q.symbol and q.symbol = o.symbol and s.qty > 2")
AGG_SELECT = (
    "select symbol, count(*), sum(qty), avg(price) from stock "
    "where qty >= 0 group by symbol")
JOIN_ROWS = (48, 48, 12)  # stock, quotes, orders
AGG_ROWS = 10_000


def _cached_stack(enabled: bool):
    """A direct stack, plan cache forced on/off, stock indexed + seeded."""
    server, conn = direct_stack()
    server.plan_cache.enabled = enabled
    server.plan_cache.clear()
    conn.execute("create index idx_symbol on stock (symbol)")
    for i in range(8):
        conn.execute(f"insert stock values ('S{i}', {i}.0, {i})")
    return server, conn


def _scan_stack(indexed: bool):
    """A direct stack with a populated table, optionally indexed."""
    server, conn = direct_stack()
    if indexed:
        conn.execute("create index idx_symbol on stock (symbol)")
    batch = "\n".join(
        f"insert stock values ('S{i}', {i % 97}.0, {i})"
        for i in range(TABLE_ROWS))
    conn.execute(batch)
    conn.execute(POINT_SELECT)  # build the index outside the timed loop
    return server, conn


def _join_stack(planner: bool):
    """A direct stack with three unindexed join tables, planner on/off."""
    server, conn = direct_stack()
    server.planner_enabled = planner
    conn.execute(
        "create table quotes (symbol varchar(10) not null, bid float null)")
    conn.execute(
        "create table orders (symbol varchar(10) not null, n int null)")
    stock_rows, quote_rows, order_rows = JOIN_ROWS
    conn.execute("\n".join(
        f"insert stock values ('S{i % 16}', {i}.0, {i % 7})"
        for i in range(stock_rows)))
    conn.execute("\n".join(
        f"insert quotes values ('S{i % 16}', {i}.25)"
        for i in range(quote_rows)))
    conn.execute("\n".join(
        f"insert orders values ('S{i % 16}', {i})"
        for i in range(order_rows)))
    conn.execute(JOIN_SELECT)  # warm: parse + (when on) the one plan miss
    return server, conn


def _agg_stack(planner: bool):
    """A direct stack with AGG_ROWS stock rows, planner on/off."""
    server, conn = direct_stack()
    server.planner_enabled = planner
    for start in range(0, AGG_ROWS, 1000):
        conn.execute("\n".join(
            f"insert stock values ('S{i % 23}', {i % 89}.0, {i % 11})"
            for i in range(start, start + 1000)))
    conn.execute(AGG_SELECT)
    return server, conn


def _point_stack(planner: bool):
    """The unindexed point-select stack with the planner on/off."""
    server, conn = _scan_stack(indexed=False)
    server.planner_enabled = planner
    conn.execute(POINT_SELECT)
    return server, conn


def _coalesced_stack():
    """An agent stack with two primitive events on (stock, insert)."""
    server, agent, conn = agent_stack()
    conn.execute(
        "create trigger t_a on stock for insert event evA as print 'a'")
    conn.execute(
        "create trigger t_b on stock for insert event evB as print 'b'")
    return server, agent, conn


def _rule_firing_stack():
    """An agent stack with a composite rule whose action joins contexts.

    Every ``^`` detection makes the action handler emit the sysContext
    refresh + procedure call — the generated, rule-origin hot path the
    parameter-slot keying exists for.
    """
    server, agent, conn = agent_stack()
    conn.execute(
        "create trigger t_add on stock for insert event hpAdd as print 'a'")
    conn.execute(
        "create trigger t_del on stock for delete event hpDel as print 'd'")
    conn.execute(
        "create trigger t_pair\n"
        "event hpPair = hpDel ^ hpAdd\n"
        "RECENT\n"
        "as\n"
        "select symbol from stock.inserted")
    return server, agent, conn


def _fire_rule(conn, state=[0]):
    """One insert+delete pair — raises both primitives, fires the rule."""
    state[0] += 1
    conn.execute(f"insert stock values ('R{state[0]}', 1.0, {state[0]})")
    conn.execute(f"delete stock where symbol = 'R{state[0]}'")


def test_hotpath_series(benchmark):
    server_off, conn_off = _cached_stack(enabled=False)
    server_on, conn_on = _cached_stack(enabled=True)
    server_scan, conn_scan = _scan_stack(indexed=False)
    server_idx, conn_idx = _scan_stack(indexed=True)
    server_act, agent, conn_act = _coalesced_stack()
    server_rule, agent_rule, conn_rule = _rule_firing_stack()
    _server_pt_legacy, conn_pt_legacy = _point_stack(planner=False)
    _server_pt_plan, conn_pt_plan = _point_stack(planner=True)
    _server_join_legacy, conn_join_legacy = _join_stack(planner=False)
    server_join_plan, conn_join_plan = _join_stack(planner=True)
    _server_agg_legacy, conn_agg_legacy = _agg_stack(planner=False)
    _server_agg_plan, conn_agg_plan = _agg_stack(planner=True)

    conn_on.execute(HOT_BATCH)  # warm: the one unavoidable miss
    _fire_rule(conn_rule)  # warm: the refresh/proc batches' first miss

    series = {
        "1 repeated batch, plan cache off": measure_ms(
            conn_off.execute, 300, HOT_BATCH),
        "2 repeated batch, plan cache on": measure_ms(
            conn_on.execute, 300, HOT_BATCH),
        "3 point select, full scan": measure_ms(
            conn_scan.execute, 200, POINT_SELECT),
        "4 point select, indexed": measure_ms(
            conn_idx.execute, 200, POINT_SELECT),
        "5 active insert, 2 events coalesced": measure_ms(
            conn_act.execute, 200, "insert stock values ('X', 1.0, 1)"),
        "6 composite rule firing, slotted refresh": measure_ms(
            _fire_rule, 100, conn_rule),
        "7 point select, legacy walker": measure_ms(
            conn_pt_legacy.execute, 150, POINT_SELECT),
        "8 point select, planned DAG": measure_ms(
            conn_pt_plan.execute, 150, POINT_SELECT),
        "9 three-table join, legacy walker": measure_ms(
            conn_join_legacy.execute, 40, JOIN_SELECT),
        "10 three-table join, planned DAG": measure_ms(
            conn_join_plan.execute, 40, JOIN_SELECT),
        "11 aggregate 10k rows, legacy walker": measure_ms(
            conn_agg_legacy.execute, 15, AGG_SELECT),
        "12 aggregate 10k rows, planned DAG": measure_ms(
            conn_agg_plan.execute, 15, AGG_SELECT),
    }

    off_p50 = summarize(series["1 repeated batch, plan cache off"]).p50
    on_p50 = summarize(series["2 repeated batch, plan cache on"]).p50
    scan_p50 = summarize(series["3 point select, full scan"]).p50
    idx_p50 = summarize(series["4 point select, indexed"]).p50
    join_legacy_p50 = summarize(
        series["9 three-table join, legacy walker"]).p50
    join_plan_p50 = summarize(
        series["10 three-table join, planned DAG"]).p50

    rows = [latency_row(label, samples) for label, samples in series.items()]
    print_series("E-PERF2 hot-path overhaul", rows, LATENCY_HEADERS)
    print(f"\n[plan cache]  off p50 {off_p50:.3f}ms / on p50 {on_p50:.3f}ms "
          f"= {off_p50 / on_p50:.2f}x speedup "
          f"(hit rate {server_on.plan_cache.hit_rate:.3f})")
    print(f"[index scan]  full {scan_p50:.3f}ms / indexed {idx_p50:.3f}ms "
          f"= {scan_p50 / idx_p50:.2f}x speedup "
          f"({server_idx.index_scans} indexed scans)")
    print(f"[coalescing]  {agent.notifier.coalesced_payloads} payloads "
          f"carried {agent.notifier.coalesced_events} events")
    rule_origins = server_rule.plan_cache.stats()["origins"]
    rule_hit_rate = rule_origins.get("rule", {}).get("hit_rate", 0.0)
    print(f"[rule origin] cache hit rate {rule_hit_rate:.3f} "
          f"({rule_origins})")
    planner_stats = server_join_plan.plan_cache.stats()
    print(f"[planner]     join legacy p50 {join_legacy_p50:.3f}ms / "
          f"planned p50 {join_plan_p50:.3f}ms = "
          f"{join_legacy_p50 / join_plan_p50:.2f}x speedup "
          f"(plan memo {planner_stats['plan_hits']} hits / "
          f"{planner_stats['plan_misses']} misses)")

    write_bench_json("hotpath", series, extra={
        "plan_cache": {
            "off": server_off.plan_cache.stats(),
            "on": server_on.plan_cache.stats(),
            "speedup_p50": round(off_p50 / on_p50, 4),
            "rule_origin": rule_origins,
        },
        "index": {
            "scan_p50_ms": round(scan_p50, 4),
            "indexed_p50_ms": round(idx_p50, 4),
            "index_scans": server_idx.index_scans,
            "speedup_p50": round(scan_p50 / idx_p50, 4),
        },
        "coalescing": {
            "payloads": agent.notifier.coalesced_payloads,
            "events": agent.notifier.coalesced_events,
            "received": agent.notifier.received,
        },
        "planner": {
            "join_legacy_p50_ms": round(join_legacy_p50, 4),
            "join_planned_p50_ms": round(join_plan_p50, 4),
            "speedup_p50": round(join_legacy_p50 / join_plan_p50, 4),
            "plan_hits": planner_stats["plan_hits"],
            "plan_misses": planner_stats["plan_misses"],
        },
    })

    # Sanity (the hard >= 1.3x gate lives in tools/check_hotpath.py,
    # where CI can tune it for noisy runners):
    assert server_on.plan_cache.hit_rate > 0.9
    assert server_off.plan_cache.hits == 0
    # The parameter-slot keying of the generated sysContext refresh must
    # keep rule-origin SQL as cacheable as client-origin SQL (it sat
    # near 0.45 when occurrence numbers were inlined as literals).
    assert rule_hit_rate > 0.9, rule_origins
    assert idx_p50 < scan_p50
    assert agent.notifier.coalesced_events == 2 * agent.notifier.coalesced_payloads
    # The cached-plan hit path skips parse AND plan: after the warm-up
    # miss every timed join execution must hit the plan memo.
    assert planner_stats["plan_hits"] >= 40, planner_stats
    assert planner_stats["plan_misses"] <= 2, planner_stats
    assert join_plan_p50 < join_legacy_p50
    benchmark(lambda: None)


def test_cached_batch(benchmark):
    _server, conn = _cached_stack(enabled=True)
    conn.execute(HOT_BATCH)
    benchmark(conn.execute, HOT_BATCH)


def test_uncached_batch(benchmark):
    _server, conn = _cached_stack(enabled=False)
    benchmark(conn.execute, HOT_BATCH)


def test_indexed_point_select(benchmark):
    _server, conn = _scan_stack(indexed=True)
    benchmark(conn.execute, POINT_SELECT)
