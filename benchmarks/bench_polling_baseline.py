"""E-PERF2: the Polling alternative vs the ECA Agent.

Quantifies the paper's qualitative dismissal of polling (Section 1):

- *Detection latency*: the poller only notices a change at the next
  poll, so mean latency ~ interval/2 and worst case ~ interval; the
  agent detects at the triggering statement itself (latency ~ 0).
- *Wasted work*: the poller re-scans every watched table on every poll
  even when nothing changed; the agent does nothing while idle.

Expected shape: polling work grows with table size x poll count while
the agent's grows only with the number of actual events — the classic
crossover that motivates active databases.
"""

from _helpers import agent_stack, direct_stack, print_series

from repro.baselines import PollingMonitor


def test_poll_cycle_on_large_table(benchmark):
    server, conn = direct_stack()
    for index in range(500):
        conn.execute(f"insert stock values ('S{index}', 1.0, 1)")
    monitor = PollingMonitor(server, ["stock"], "sentineldb", "sharma")
    monitor.prime()
    benchmark(monitor.poll)


def test_agent_detection_on_large_table(benchmark):
    _server, _agent, conn = agent_stack()
    conn.execute(
        "create trigger t on stock for insert event e as print 'hit'")
    for index in range(500):
        conn.execute(f"insert stock values ('S{index}', 1.0, 1)")
    # Detection cost is just the (active) statement itself.
    benchmark(conn.execute, "insert stock values ('NEW', 1.0, 1)")


def test_idle_cost_series(benchmark):
    """Figure series: cost of *nothing happening* for both designs."""
    rows = []
    for table_size in (100, 400, 1600):
        server, conn = direct_stack()
        for index in range(table_size):
            conn.execute(f"insert stock values ('S{index}', 1.0, 1)")
        monitor = PollingMonitor(server, ["stock"], "sentineldb", "sharma")
        monitor.prime()
        scanned_before = monitor.rows_scanned
        for _ in range(10):
            monitor.poll()
        rows.append((table_size,
                     monitor.rows_scanned - scanned_before,
                     0))
    print_series(
        "E-PERF2 idle cost for 10 quiet intervals",
        rows, ("table rows", "poller rows scanned", "agent rows scanned"))
    # Shape: poller idle work is linear in table size, agent's is zero.
    assert rows[-1][1] > rows[0][1] > 0
    benchmark(lambda: None)


def test_detection_latency_series(benchmark):
    """Figure series: statements until detection (event-time units).

    Using the statement stream as the clock: the poller checks every
    ``interval`` statements, so a change waits interval/2 on average;
    the agent's latency is 0 statements by construction.
    """
    rows = []
    for interval in (2, 8, 32):
        server, conn = direct_stack()
        monitor = PollingMonitor(server, ["stock"], "sentineldb", "sharma")
        monitor.prime()
        latencies = []
        pending_since = None
        for step in range(1, 129):
            if step % 3 == 1:  # a change happens
                conn.execute(f"insert stock values ('X{step}', 1.0, 1)")
                if pending_since is None:
                    pending_since = step
            if step % interval == 0:  # a poll happens
                if monitor.poll() and pending_since is not None:
                    latencies.append(step - pending_since)
                    pending_since = None
        mean_latency = sum(latencies) / len(latencies)
        rows.append((interval, f"{mean_latency:.2f}", 0))
    print_series(
        "E-PERF2 detection latency (statements) vs poll interval",
        rows, ("poll interval", "poller mean latency", "agent latency"))
    # Shape: latency grows with the interval; the agent's is identically 0.
    assert float(rows[-1][1]) > float(rows[0][1])
    benchmark(lambda: None)
