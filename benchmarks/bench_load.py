"""E-CONC: the multi-session load harness (docs/CONCURRENCY.md §6).

Drives thousands of simulated clients through one gateway worker pool
and measures end-to-end command latency (p50/p95/p99) and throughput:

1/2. **Closed loop** — every client keeps exactly one command in
     flight (submit, wait, resubmit); two workloads, the paper's stock
     example and a network-management application (nodes, links,
     alarms), both with live ECA rules so a slice of the stream takes
     the active (exclusive-gate) path.
3.   **Open loop** — commands arrive on a fixed seeded schedule
     regardless of completions; latency is measured from *scheduled*
     arrival to completion, so queueing delay is visible.
4/5. **Worker scaling** — the service-latency profile (each command
     holds a session for a 2ms ``waitfor delay`` plus a point select)
     run with 1 worker and with ``LOAD_WORKERS`` workers.  Sleeps
     release the GIL and point selects take shared locks, so the pool
     must deliver real parallel speedup; ``tools/check_load.py`` gates
     the ratio (default floor 2x) and the closed-loop throughput.

The artifact ``BENCH_load.json`` records all latency series plus
throughput, the engine's lock-manager counters, and the session
registry totals.  Knobs (env): ``LOAD_CLIENTS`` (default 1000),
``LOAD_WORKERS`` (8), ``LOAD_OPS`` (ops per client, 2),
``LOAD_DRIVERS`` (driver threads, 8), ``LOAD_RATE`` (open-loop
arrivals/s, 1500).
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque

from _helpers import (
    LATENCY_HEADERS,
    latency_row,
    print_series,
    write_bench_json,
)
from repro.agent import EcaAgent
from repro.led import ManualClock
from repro.sqlengine import SqlServer

CLIENTS = int(os.environ.get("LOAD_CLIENTS", "1000"))
WORKERS = int(os.environ.get("LOAD_WORKERS", "8"))
OPS_PER_CLIENT = int(os.environ.get("LOAD_OPS", "2"))
DRIVER_THREADS = int(os.environ.get("LOAD_DRIVERS", "8"))
OPEN_LOOP_RATE = float(os.environ.get("LOAD_RATE", "1500"))

USER = "sharma"
DATABASE = "sentineldb"

#: tables per workload group — clients hash onto groups so disjoint
#: groups never contend on a table lock
GROUPS = 8

#: service-latency profile: per-command hold time (seconds)
SERVICE_DELAY = 0.002
SERVICE_CLIENTS = 64
SERVICE_OPS = 4


# ---------------------------------------------------------------------------
# workloads


def _stock_stack(workers: int):
    """Agent + schema for the paper's stock example, per-group tables.

    ``stock_active`` carries a live primitive rule, so inserts into it
    exercise the full active path (native trigger, notification, LED,
    action) under load; the per-group tables stay trigger-free and take
    the fine-grained locking path.
    """
    server = SqlServer(default_database=DATABASE)
    agent = EcaAgent(server, clock=ManualClock(), channel="sync",
                     workers=workers)
    # Metrics on: the load series report queue-wait (time a command sat
    # on its session queue before a worker dequeued it) per profile.
    agent.metrics.enabled = True
    conn = agent.connect(user=USER, database=DATABASE)
    for group in range(GROUPS):
        conn.execute(
            f"create table stock_g{group} (symbol varchar(10) not null, "
            "price float null, qty int null)")
        for row in range(4):
            conn.execute(
                f"insert stock_g{group} values ('S{row}', {row}.0, {row})")
    conn.execute(
        "create table stock_active (symbol varchar(10) not null, "
        "price float null, qty int null)")
    conn.execute(
        "create trigger t_load_stk on stock_active for insert\n"
        "event loadStk\n"
        "as print 'loadStk'")
    return server, agent


def _stock_command(client: int, op: int) -> str:
    group = client % GROUPS
    row = (client + op) % 4
    kind = (client * 31 + op * 7) % 20
    if kind == 0:  # ~5%: raise the primitive event (active path)
        return f"insert stock_active values ('A{client}', 1.0, {op})"
    if kind < 7:  # ~30%: point update on the client's group table
        return (f"update stock_g{group} set price = price + 0.25 "
                f"where symbol = 'S{row}'")
    return (f"select symbol, price, qty from stock_g{group} "
            f"where symbol = 'S{row}'")


def _netmgmt_stack(workers: int):
    """Agent + schema for a network-management workload: per-group link
    tables polled and updated by operators, and an ``alarm`` feed with a
    live rule on insert (the situation-monitoring pattern the paper's
    Section 7 applications describe)."""
    server = SqlServer(default_database=DATABASE)
    agent = EcaAgent(server, clock=ManualClock(), channel="sync",
                     workers=workers)
    agent.metrics.enabled = True
    conn = agent.connect(user=USER, database=DATABASE)
    for group in range(GROUPS):
        conn.execute(
            f"create table link_g{group} (link_id int not null, "
            "status varchar(10) null, util int null)")
        for row in range(4):
            conn.execute(
                f"insert link_g{group} values ({row}, 'up', {row * 10})")
    conn.execute(
        "create table alarm (alarm_id int not null, "
        "severity varchar(10) null)")
    conn.execute(
        "create trigger t_link_alarm on alarm for insert\n"
        "event linkAlarm\n"
        "as print 'linkAlarm'")
    return server, agent


def _netmgmt_command(client: int, op: int) -> str:
    group = client % GROUPS
    row = (client + op) % 4
    kind = (client * 17 + op * 5) % 20
    if kind == 0:  # ~5%: raise an alarm (active path)
        return f"insert alarm values ({client}, 'major')"
    if kind < 7:  # ~30%: operator status update
        return (f"update link_g{group} set util = util + 1 "
                f"where link_id = {row}")
    return (f"select link_id, status, util from link_g{group} "
            f"where link_id = {row}")


def _service_stack(workers: int):
    """Trigger-free per-group tables for the service-latency profile."""
    server = SqlServer(default_database=DATABASE)
    agent = EcaAgent(server, clock=ManualClock(), channel="sync",
                     workers=workers)
    agent.metrics.enabled = True
    conn = agent.connect(user=USER, database=DATABASE)
    for group in range(GROUPS):
        conn.execute(
            f"create table svc_g{group} (k int not null, v int null)")
        conn.execute(f"insert svc_g{group} values (1, {group})")
    return server, agent


def _service_command(client: int, op: int) -> str:
    group = client % GROUPS
    return (f'waitfor delay "0:0:{SERVICE_DELAY:.3f}"\n'
            f"select v from svc_g{group} where k = 1")


# ---------------------------------------------------------------------------
# load generators


def run_closed_loop(agent, clients: int, ops_per_client: int, command_for,
                    driver_threads: int = DRIVER_THREADS):
    """Closed-loop load: each simulated client keeps exactly one command
    in flight, multiplexed over ``driver_threads`` driver threads.

    Returns ``(elapsed_seconds, latencies_ms)``; latency is measured
    from submit to completion, so queueing behind the worker pool is
    part of every sample (that is the point of a load test).
    """
    gateway = agent.gateway
    sessions = [gateway.open_session(USER, DATABASE)
                for _ in range(clients)]
    shards = [sessions[i::driver_threads] for i in range(driver_threads)]
    shards = [s for s in shards if s]
    all_latencies: list[list[float]] = [[] for _ in shards]
    start_barrier = threading.Barrier(len(shards) + 1)

    def drive(shard, latencies):
        start_barrier.wait()
        pending = deque()
        for session in shard:
            pending.append((session, 0, time.perf_counter(),
                            gateway.submit_for(
                                session,
                                command_for(session.session_id, 0))))
        while pending:
            session, op, t0, future = pending.popleft()
            future.result()
            latencies.append((time.perf_counter() - t0) * 1e3)
            next_op = op + 1
            if next_op < ops_per_client:
                client = session.session_id
                pending.append((session, next_op, time.perf_counter(),
                                gateway.submit_for(
                                    session,
                                    command_for(client, next_op))))

    threads = [threading.Thread(target=drive, args=(shard, lat),
                                name=f"load-driver-{i}", daemon=True)
               for i, (shard, lat) in enumerate(zip(shards, all_latencies))]
    for thread in threads:
        thread.start()
    start_barrier.wait()
    started = time.perf_counter()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - started
    latencies = [sample for chunk in all_latencies for sample in chunk]
    return elapsed, latencies


def run_open_loop(agent, clients: int, total_ops: int, rate: float,
                  command_for):
    """Open-loop load: one command per scheduled arrival instant,
    submitted whether or not earlier commands completed.

    Latency is completion minus *scheduled* arrival — a late submission
    (the generator falling behind) still charges the delay to the
    command, the standard open-loop convention.  Returns
    ``(elapsed_seconds, latencies_ms)``.
    """
    gateway = agent.gateway
    sessions = [gateway.open_session(USER, DATABASE)
                for _ in range(clients)]
    completions: dict[int, float] = {}
    done = threading.Event()
    remaining = [total_ops]
    lock = threading.Lock()
    origin = time.perf_counter()

    def finished(index: int):
        def callback(_future):
            completions[index] = time.perf_counter() - origin
            with lock:
                remaining[0] -= 1
                if not remaining[0]:
                    done.set()
        return callback

    for index in range(total_ops):
        due = index / rate
        now = time.perf_counter() - origin
        if due > now:
            time.sleep(due - now)
        session = sessions[index % len(sessions)]
        client = session.session_id
        future = gateway.submit_for(
            session, command_for(client, index // len(sessions)))
        future.add_done_callback(finished(index))
    done.wait(timeout=120)
    elapsed = time.perf_counter() - origin
    latencies = [(completions[i] - i / rate) * 1e3
                 for i in range(total_ops) if i in completions]
    return elapsed, latencies


# ---------------------------------------------------------------------------
# the bench


def _queue_wait_summary(agent) -> dict:
    """The agent's queue-wait histogram as {count, p50_ms, p95_ms} —
    read before ``agent.close()``, which detaches the registry."""
    family = agent.metrics.get("agent_queue_wait_seconds")
    if family is None:
        return {"count": 0, "p50_ms": 0.0, "p95_ms": 0.0}
    summary = family.summary()
    return {
        "count": summary.count,
        "p50_ms": round(summary.p50 * 1e3, 4),
        "p95_ms": round(summary.p95 * 1e3, 4),
    }


def _closed_series(label, stack_builder, command_for, results, series):
    server, agent = stack_builder(WORKERS)
    try:
        elapsed, latencies = run_closed_loop(
            agent, CLIENTS, OPS_PER_CLIENT, command_for)
        ops = len(latencies)
        results[label] = {
            "clients": CLIENTS,
            "workers": WORKERS,
            "ops": ops,
            "seconds": round(elapsed, 4),
            "throughput": round(ops / elapsed, 2),
            "lock_stats": server.lock_manager.stats(),
            "plan_cache_hit_rate": round(server.plan_cache.hit_rate, 4),
            "queue_wait": _queue_wait_summary(agent),
        }
        series[label] = latencies
        idle = all(s["queued"] == 0
                   for s in agent.gateway.session_snapshots())
        assert idle, "sessions still queued after closed-loop drain"
    finally:
        agent.close()
    return results[label]


def _scaling_series(workers: int, series):
    server, agent = _service_stack(workers)
    try:
        elapsed, latencies = run_closed_loop(
            agent, SERVICE_CLIENTS, SERVICE_OPS, _service_command,
            driver_threads=min(DRIVER_THREADS, SERVICE_CLIENTS))
        label = f"service-latency profile, {workers} worker(s)"
        series[label] = latencies
        return {
            "workers": workers,
            "ops": len(latencies),
            "seconds": round(elapsed, 4),
            "throughput": round(len(latencies) / elapsed, 2),
            "queue_wait": _queue_wait_summary(agent),
        }
    finally:
        agent.close()


def test_load_series(benchmark):
    series: dict[str, list[float]] = {}
    results: dict[str, dict] = {}

    closed_stock = _closed_series(
        "closed-loop stock workload", _stock_stack, _stock_command,
        results, series)
    closed_net = _closed_series(
        "closed-loop network-management workload", _netmgmt_stack,
        _netmgmt_command, results, series)

    server, agent = _stock_stack(WORKERS)
    try:
        open_ops = min(CLIENTS * OPS_PER_CLIENT, 1500)
        elapsed, latencies = run_open_loop(
            agent, CLIENTS, open_ops, OPEN_LOOP_RATE, _stock_command)
        series["open-loop stock workload"] = latencies
        results["open-loop stock workload"] = {
            "clients": CLIENTS,
            "workers": WORKERS,
            "offered_rate": OPEN_LOOP_RATE,
            "ops": len(latencies),
            "seconds": round(elapsed, 4),
            "throughput": round(len(latencies) / elapsed, 2),
            "queue_wait": _queue_wait_summary(agent),
        }
        assert len(latencies) == open_ops, "open-loop commands lost"
    finally:
        agent.close()

    single = _scaling_series(1, series)
    pooled = _scaling_series(WORKERS, series)
    ratio = pooled["throughput"] / single["throughput"]

    rows = [latency_row(label, samples)
            for label, samples in series.items()]
    print_series("E-CONC multi-session load", rows, LATENCY_HEADERS)
    for label, result in results.items():
        wait = result["queue_wait"]
        print(f"[{label}]  {result['ops']} ops in {result['seconds']}s "
              f"= {result['throughput']} ops/s; queue-wait "
              f"p50={wait['p50_ms']}ms p95={wait['p95_ms']}ms "
              f"({wait['count']} samples)")
    print(f"[scaling]  {single['throughput']} ops/s @1 worker vs "
          f"{pooled['throughput']} ops/s @{WORKERS} workers "
          f"= {ratio:.2f}x")

    write_bench_json("load", series, extra={"load": {
        "clients": CLIENTS,
        "workers": WORKERS,
        "ops_per_client": OPS_PER_CLIENT,
        "closed_stock": closed_stock,
        "closed_netmgmt": closed_net,
        "open_stock": results["open-loop stock workload"],
        "scaling": {
            "profile": (f"waitfor delay {SERVICE_DELAY * 1e3:.0f}ms + "
                        "point select, per-group tables"),
            "single": single,
            "pooled": pooled,
            "ratio": round(ratio, 4),
        },
    }})

    # Sanity only — the hard floors live in tools/check_load.py where CI
    # can tune them for noisy runners:
    assert closed_stock["lock_stats"]["shared_batches"] > 0
    assert closed_stock["lock_stats"]["exclusive_batches"] > 0
    assert ratio > 1.0
    benchmark(lambda: None)


def test_closed_loop_smoke(benchmark):
    """A tiny closed-loop run as a plain benchmark sample."""
    server, agent = _stock_stack(2)
    try:
        benchmark(run_closed_loop, agent, 16, 1, _stock_command, 2)
    finally:
        agent.close()
