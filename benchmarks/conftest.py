"""Make the benchmarks directory importable (for _helpers) and register
the ``--stage-breakdown`` option: when given, agent benches enable the
observability layer and print per-stage latency tables alongside their
headline numbers (costing a little instrumentation overhead)."""

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(__file__))


def pytest_addoption(parser):
    parser.addoption(
        "--stage-breakdown", action="store_true", default=False,
        help="collect agent metrics during benches and print per-stage "
             "latency breakdowns (adds instrumentation overhead)")


@pytest.fixture
def stage_breakdown(request) -> bool:
    """True when ``--stage-breakdown`` was passed on the command line."""
    return request.config.getoption("--stage-breakdown")
