"""E-PERF1: total mediator overhead decomposition (Section 6 concern).

Breaks the active-statement cost into its layers: engine execution,
gateway routing, generated-trigger bookkeeping, notification transport,
LED detection, and action execution — the quantified version of the
paper's "communication ... based on the socket ... efficiency will be
affected".  A fifth series re-runs the composite stack with the full
observability plane on (stats + trace + provenance journal) and exports
its telemetry snapshot to ``BENCH_telemetry.jsonl`` so CI archives one
real artifact per run; ``tools/check_overhead.py`` guards the ratio
between series 4 and 5.

A sixth series measures the *health plane* alone (stats + per-session/
per-rule accounting + the slow-op flight recorder armed at 0ms — its
worst case, capturing every command) with trace and provenance off;
``tools/check_overhead.py`` gates it against series 4 under the same
``OBS_OVERHEAD_RATIO`` ceiling.  The series also cross-checks the
histogram estimator: the gateway's ``agent_command_seconds`` p50 for
pass-through commands must agree with the bench's wall-clock p50 within
one histogram bucket width.

A seventh series measures *tracing alone* (spans + per-command trace
contexts + the pinned trace store; stats, provenance, and the health
extras off) — the marginal cost of a ``trace next <N>`` sampling window
on a production stack; ``tools/check_trace.py`` gates it against
series 4 under the same ``OBS_OVERHEAD_RATIO`` ceiling.
"""

import math
import os
import statistics

from _helpers import (
    LATENCY_HEADERS,
    agent_stack,
    direct_stack,
    example_1_stack,
    example_2_stack,
    latency_row,
    measure_ms,
    print_series,
    print_stage_breakdown,
    write_bench_json,
)
from repro.obs import ProvenanceJournal, TelemetryExporter, bucket_bounds

INSERT = "insert stock values ('X', 1.0, 1)"

TELEMETRY_PATH = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_telemetry.jsonl")


def _samples(conn, sql=INSERT, n=200) -> list[float]:
    return measure_ms(conn.execute, n, sql)


def _observed_stack():
    """The Example 2 stack with every observability sink enabled and a
    telemetry exporter attached."""
    server, agent, conn = example_2_stack(
        journal=ProvenanceJournal(enabled=True),
        exporter=TelemetryExporter(TELEMETRY_PATH, max_bytes=0),
    )
    agent.metrics.enabled = True
    agent.trace.enabled = True
    return server, agent, conn


def _health_stack():
    """The Example 2 stack with only the health plane hot: stats on,
    accounting on (the default), slow-op capture armed at 0ms so every
    command records — trace and provenance stay off."""
    server, agent, conn = example_2_stack()
    agent.metrics.enabled = True
    conn.execute("set agent slowlog 0")
    return server, agent, conn


def _traced_stack():
    """The Example 2 stack with *only* tracing on: every command mints a
    trace context, records its span tree, and pins it into the trace
    store — exactly what a sampled command pays under ``trace next``."""
    server, agent, conn = example_2_stack()
    agent.trace.enabled = True
    return server, agent, conn


def _command_p50_ms(agent, kind: str) -> float:
    """The gateway latency histogram's p50 for one command kind, in ms."""
    for family in agent.metrics.families():
        if family.name == "agent_command_seconds":
            return family.labels(kind).quantile(50) * 1e3
    raise AssertionError("agent_command_seconds histogram not registered")


def test_layer_decomposition_series(benchmark, stage_breakdown):
    s0, direct = direct_stack()
    s1, _a1, gateway_only = agent_stack()
    s2, a2, with_event = example_1_stack()
    s3, _a3, with_composite = example_2_stack()
    s4, a4, with_obs = _observed_stack()
    s5, a5, with_health = _health_stack()
    s6, _a6, with_tracing = _traced_stack()
    with_composite.execute("delete stock")  # keep an AND window open
    with_obs.execute("delete stock")
    with_health.execute("delete stock")
    with_tracing.execute("delete stock")

    if stage_breakdown:
        a2.metrics.enabled = True

    series = {
        "1 engine insert (direct)": _samples(direct),
        "2 + gateway routing": _samples(gateway_only),
        "3 + event machinery (Example 1)": _samples(with_event),
        "4 + composite detection (Example 2)": _samples(with_composite),
        "5 + observability on (stats+trace+provenance)": _samples(with_obs),
        "6 + health plane (accounting+slowlog+stats)": _samples(with_health),
        "7 + trace context (sampled commands)": _samples(with_tracing),
    }
    servers = {
        "1 engine insert (direct)": s0,
        "2 + gateway routing": s1,
        "3 + event machinery (Example 1)": s2,
        "4 + composite detection (Example 2)": s3,
        "5 + observability on (stats+trace+provenance)": s4,
        "6 + health plane (accounting+slowlog+stats)": s5,
        "7 + trace context (sampled commands)": s6,
    }
    hit_rates = {
        label: server.plan_cache.stats()["hit_rate"]
        for label, server in servers.items()
    }
    base = statistics.mean(series["1 engine insert (direct)"])
    routed = statistics.mean(series["2 + gateway routing"])
    evented = statistics.mean(series["3 + event machinery (Example 1)"])

    rows = [latency_row(label, samples) + (
        f"{statistics.mean(samples) / base:.2f}x",
        f"{hit_rates[label]:.3f}")
        for label, samples in series.items()]
    print_series("E-PERF1 mediator overhead decomposition",
                 rows, LATENCY_HEADERS + ("vs direct", "cache_hit"))
    # Estimator cross-check: the gateway histogram's pass-through p50
    # must agree with the wall-clock p50 within one bucket width.
    health_samples = series["6 + health plane (accounting+slowlog+stats)"]
    wall_p50_ms = statistics.median(health_samples)
    hist_p50_ms = _command_p50_ms(a5, "passthrough")
    lo, hi = bucket_bounds(wall_p50_ms / 1e3)
    width_ms = (hi - lo) * 1e3 if math.isfinite(hi) else lo * 1e3
    print(f"\n[p50 agreement] wall={wall_p50_ms:.4f}ms "
          f"hist={hist_p50_ms:.4f}ms bucket_width={width_ms:.4f}ms")

    write_bench_json("overhead", series,
                     extra={"plan_cache_hit_rate": hit_rates,
                            "p50_agreement": {
                                "wall_p50_ms": wall_p50_ms,
                                "hist_p50_ms": hist_p50_ms,
                                "bucket_width_ms": width_ms}})
    telemetry_lines = a4.export_telemetry(label="bench_overhead")
    print(f"\n[telemetry] {telemetry_lines} lines -> {TELEMETRY_PATH}")
    if stage_breakdown:
        print_stage_breakdown("E-PERF1 (Example 1 stack)", a2.metrics)
    # Shape: each layer adds cost.  Routing now includes the always-on
    # accounting plane (one OpContext frame + four note hooks + a locked
    # fold per command, ~5-10us) — significant against a bare ~15us
    # engine insert, noise against the real Example 2 baseline, which is
    # what tools/check_overhead.py gates under OBS_OVERHEAD_RATIO.
    assert routed / base < 3.0
    assert evented > routed
    assert telemetry_lines > 0
    assert abs(hist_p50_ms - wall_p50_ms) <= width_ms
    benchmark(lambda: None)


def test_direct_insert(benchmark):
    _server, conn = direct_stack()
    benchmark(conn.execute, INSERT)


def test_gateway_insert_no_rules(benchmark):
    _server, _agent, conn = agent_stack()
    benchmark(conn.execute, INSERT)


def test_full_active_insert(benchmark):
    _server, _agent, conn = example_1_stack()
    benchmark(conn.execute, INSERT)
