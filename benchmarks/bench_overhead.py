"""E-PERF1: total mediator overhead decomposition (Section 6 concern).

Breaks the active-statement cost into its layers: engine execution,
gateway routing, generated-trigger bookkeeping, notification transport,
LED detection, and action execution — the quantified version of the
paper's "communication ... based on the socket ... efficiency will be
affected".
"""

import statistics

from _helpers import (
    LATENCY_HEADERS,
    agent_stack,
    direct_stack,
    example_1_stack,
    example_2_stack,
    latency_row,
    measure_ms,
    print_series,
    print_stage_breakdown,
    write_bench_json,
)

INSERT = "insert stock values ('X', 1.0, 1)"


def _samples(conn, sql=INSERT, n=200) -> list[float]:
    return measure_ms(conn.execute, n, sql)


def test_layer_decomposition_series(benchmark, stage_breakdown):
    _s0, direct = direct_stack()
    _s1, _a1, gateway_only = agent_stack()
    _s2, a2, with_event = example_1_stack()
    _s3, _a3, with_composite = example_2_stack()
    with_composite.execute("delete stock")  # keep an AND window open

    if stage_breakdown:
        a2.metrics.enabled = True

    series = {
        "1 engine insert (direct)": _samples(direct),
        "2 + gateway routing": _samples(gateway_only),
        "3 + event machinery (Example 1)": _samples(with_event),
        "4 + composite detection (Example 2)": _samples(with_composite),
    }
    base = statistics.mean(series["1 engine insert (direct)"])
    routed = statistics.mean(series["2 + gateway routing"])
    evented = statistics.mean(series["3 + event machinery (Example 1)"])

    rows = [latency_row(label, samples) + (
        f"{statistics.mean(samples) / base:.2f}x",)
        for label, samples in series.items()]
    print_series("E-PERF1 mediator overhead decomposition",
                 rows, LATENCY_HEADERS + ("vs direct",))
    write_bench_json("overhead", series)
    if stage_breakdown:
        print_stage_breakdown("E-PERF1 (Example 1 stack)", a2.metrics)
    # Shape: each layer adds cost; routing alone is nearly free.
    assert routed / base < 1.5
    assert evented > routed
    benchmark(lambda: None)


def test_direct_insert(benchmark):
    _server, conn = direct_stack()
    benchmark(conn.execute, INSERT)


def test_gateway_insert_no_rules(benchmark):
    _server, _agent, conn = agent_stack()
    benchmark(conn.execute, INSERT)


def test_full_active_insert(benchmark):
    _server, _agent, conn = example_1_stack()
    benchmark(conn.execute, INSERT)
