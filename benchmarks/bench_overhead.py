"""E-PERF1: total mediator overhead decomposition (Section 6 concern).

Breaks the active-statement cost into its layers: engine execution,
gateway routing, generated-trigger bookkeeping, notification transport,
LED detection, and action execution — the quantified version of the
paper's "communication ... based on the socket ... efficiency will be
affected".
"""

import time

from _helpers import (
    agent_stack,
    direct_stack,
    example_1_stack,
    example_2_stack,
    print_series,
)

INSERT = "insert stock values ('X', 1.0, 1)"


def _cost(conn, sql=INSERT, n=200) -> float:
    start = time.perf_counter()
    for _ in range(n):
        conn.execute(sql)
    return (time.perf_counter() - start) / n * 1e3


def test_layer_decomposition_series(benchmark):
    _s0, direct = direct_stack()
    _s1, _a1, gateway_only = agent_stack()
    _s2, _a2, with_event = example_1_stack()
    _s3, _a3, with_composite = example_2_stack()
    with_composite.execute("delete stock")  # keep an AND window open

    base = _cost(direct)
    routed = _cost(gateway_only)
    evented = _cost(with_event)
    composed = _cost(with_composite)

    rows = [
        ("1 engine insert (direct)", f"{base:.3f}", "1.00x"),
        ("2 + gateway routing", f"{routed:.3f}", f"{routed / base:.2f}x"),
        ("3 + event machinery (Example 1)", f"{evented:.3f}",
         f"{evented / base:.2f}x"),
        ("4 + composite detection (Example 2)", f"{composed:.3f}",
         f"{composed / base:.2f}x"),
    ]
    print_series("E-PERF1 mediator overhead decomposition",
                 rows, ("layer", "ms/insert", "vs direct"))
    # Shape: each layer adds cost; routing alone is nearly free.
    assert routed / base < 1.5
    assert evented > routed
    benchmark(lambda: None)


def test_direct_insert(benchmark):
    _server, conn = direct_stack()
    benchmark(conn.execute, INSERT)


def test_gateway_insert_no_rules(benchmark):
    _server, _agent, conn = agent_stack()
    benchmark(conn.execute, INSERT)


def test_full_active_insert(benchmark):
    _server, _agent, conn = example_1_stack()
    benchmark(conn.execute, INSERT)
