"""Shared builders for the benchmark suite.

Each bench constructs an isolated stack so runs never interfere.  All
stacks use the synchronous notification channel and a manual clock: the
numbers then measure computation, not sleeping.
"""

from __future__ import annotations

import json
import os
import time

from repro.agent import EcaAgent
from repro.led import LocalEventDetector, ManualClock
from repro.obs import summarize
from repro.sqlengine import SqlServer, connect

STOCK_DDL = (
    "create table stock ("
    "symbol varchar(10) not null, price float null, qty int null)"
)

EXAMPLE_1 = (
    "create trigger t_addStk on stock for insert\n"
    "event addStk\n"
    "as print ' trigger t_addStk on primitive event addStk occurs'"
)

EXAMPLE_2_DEL = (
    "create trigger t_delStk on stock for delete\n"
    "event delStk\n"
    "as print 'delStk'"
)

EXAMPLE_2_AND = (
    "create trigger t_and\n"
    "event addDel = delStk ^ addStk\n"
    "RECENT\n"
    "as\n"
    "print 'trigger t_and on composite event addDel'\n"
    "select symbol, price from stock.inserted"
)


def fresh_server() -> SqlServer:
    return SqlServer(default_database="sentineldb")


def direct_stack():
    """(server, direct connection) with the stock table created."""
    server = fresh_server()
    conn = connect(server, user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)
    return server, conn


def agent_stack(**agent_kwargs):
    """(server, agent, mediated connection) with the stock table created."""
    server = fresh_server()
    agent = EcaAgent(server, clock=ManualClock(), **agent_kwargs)
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)
    return server, agent, conn


def example_1_stack(**agent_kwargs):
    server, agent, conn = agent_stack(**agent_kwargs)
    conn.execute(EXAMPLE_1)
    return server, agent, conn


def example_2_stack(**agent_kwargs):
    server, agent, conn = agent_stack(**agent_kwargs)
    conn.execute(EXAMPLE_1)
    conn.execute(EXAMPLE_2_DEL)
    conn.execute(EXAMPLE_2_AND)
    return server, agent, conn


def fresh_led() -> LocalEventDetector:
    return LocalEventDetector(clock=ManualClock())


def measure_ms(fn, n: int, *args) -> list[float]:
    """Call ``fn(*args)`` ``n`` times; per-call wall time in milliseconds."""
    samples = []
    for _ in range(n):
        start = time.perf_counter()
        fn(*args)
        samples.append((time.perf_counter() - start) * 1e3)
    return samples


def latency_row(label: str, samples_ms: list[float]) -> tuple:
    """(label, mean, median, p95, p99, max) row — all in milliseconds.

    Reuses the observability layer's histogram summary so benches and
    ``show agent stats`` report identical statistics.
    """
    s = summarize(samples_ms)
    return (label, f"{s.mean:.3f}", f"{s.p50:.3f}", f"{s.p95:.3f}",
            f"{s.p99:.3f}", f"{s.max:.3f}")


LATENCY_HEADERS = ("series", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
                   "max_ms")


def write_bench_json(name: str, series: dict[str, list[float]],
                     extra: dict | None = None) -> str:
    """Write ``BENCH_<name>.json`` capturing full latency summaries
    (mean/median/p95/p99/max) per series, next to the repo root."""
    payload = {"bench": name, "series": {}}
    for label, samples_ms in series.items():
        payload["series"][label] = summarize(samples_ms).as_dict()
    if extra:
        payload.update(extra)
    path = os.path.join(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        f"BENCH_{name}.json")
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    return path


def stage_breakdown_rows(metrics) -> list[tuple]:
    """Per-stage latency rows from an agent's metrics registry
    (one row per labeled histogram child), for ``--stage-breakdown``."""
    from repro.obs import HistogramSummary

    rows = []
    for family in metrics.families():
        for labels, metric in family.children():
            value = metric.value()
            if not isinstance(value, HistogramSummary):
                continue
            rendered = ",".join(f"{k}={v}" for k, v in labels.items())
            label = f"{family.name}{{{rendered}}}" if rendered else family.name
            rows.append((label, value.count, f"{value.mean * 1e3:.3f}",
                         f"{value.p50 * 1e3:.3f}", f"{value.p95 * 1e3:.3f}",
                         f"{value.p99 * 1e3:.3f}", f"{value.max * 1e3:.3f}"))
    return rows


STAGE_HEADERS = ("stage", "count", "mean_ms", "p50_ms", "p95_ms", "p99_ms",
                 "max_ms")


def print_stage_breakdown(title: str, metrics) -> None:
    """Print the per-stage latency table collected by an agent's metrics."""
    rows = stage_breakdown_rows(metrics)
    if rows:
        print_series(f"{title} — stage breakdown", rows, STAGE_HEADERS)


def print_series(title: str, rows: list[tuple], headers: tuple) -> None:
    """Print a small aligned table (the 'figure series' of each bench)."""
    rendered = [tuple(str(value) for value in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    print(f"\n[{title}]")
    print("  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rendered:
        print("  " + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
