"""Shared builders for the benchmark suite.

Each bench constructs an isolated stack so runs never interfere.  All
stacks use the synchronous notification channel and a manual clock: the
numbers then measure computation, not sleeping.
"""

from __future__ import annotations

from repro.agent import EcaAgent
from repro.led import LocalEventDetector, ManualClock
from repro.sqlengine import SqlServer, connect

STOCK_DDL = (
    "create table stock ("
    "symbol varchar(10) not null, price float null, qty int null)"
)

EXAMPLE_1 = (
    "create trigger t_addStk on stock for insert\n"
    "event addStk\n"
    "as print ' trigger t_addStk on primitive event addStk occurs'"
)

EXAMPLE_2_DEL = (
    "create trigger t_delStk on stock for delete\n"
    "event delStk\n"
    "as print 'delStk'"
)

EXAMPLE_2_AND = (
    "create trigger t_and\n"
    "event addDel = delStk ^ addStk\n"
    "RECENT\n"
    "as\n"
    "print 'trigger t_and on composite event addDel'\n"
    "select symbol, price from stock.inserted"
)


def fresh_server() -> SqlServer:
    return SqlServer(default_database="sentineldb")


def direct_stack():
    """(server, direct connection) with the stock table created."""
    server = fresh_server()
    conn = connect(server, user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)
    return server, conn


def agent_stack(**agent_kwargs):
    """(server, agent, mediated connection) with the stock table created."""
    server = fresh_server()
    agent = EcaAgent(server, clock=ManualClock(), **agent_kwargs)
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute(STOCK_DDL)
    return server, agent, conn


def example_1_stack(**agent_kwargs):
    server, agent, conn = agent_stack(**agent_kwargs)
    conn.execute(EXAMPLE_1)
    return server, agent, conn


def example_2_stack(**agent_kwargs):
    server, agent, conn = agent_stack(**agent_kwargs)
    conn.execute(EXAMPLE_1)
    conn.execute(EXAMPLE_2_DEL)
    conn.execute(EXAMPLE_2_AND)
    return server, agent, conn


def fresh_led() -> LocalEventDetector:
    return LocalEventDetector(clock=ManualClock())


def print_series(title: str, rows: list[tuple], headers: tuple) -> None:
    """Print a small aligned table (the 'figure series' of each bench)."""
    rendered = [tuple(str(value) for value in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    print(f"\n[{title}]")
    print("  " + "  ".join(h.ljust(widths[i]) for i, h in enumerate(headers)))
    for row in rendered:
        print("  " + "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
