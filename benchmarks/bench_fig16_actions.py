"""E-FIG16: the Action Handler — inline vs thread-per-action cost.

Expected shape: the detached (thread-per-action, the paper's design)
path adds thread-spawn latency per action but removes the action from
the client's critical path; the inline path is cheapest end-to-end.
"""

import time

from _helpers import agent_stack, print_series, print_stage_breakdown


def _with_rule(coupling: str):
    _server, agent, conn = agent_stack()
    conn.execute(
        "create trigger tp on stock for insert event ev as print 'p'")
    conn.execute(
        f"create trigger tr event ev {coupling} as "
        "insert dbo.sysContext values ('probe', 'RECENT', 0)")
    # give the secondary rule a real server-side action target
    return agent, conn


def test_immediate_action_cycle(benchmark):
    agent, conn = _with_rule("IMMEDIATE")
    benchmark(conn.execute, "insert stock values ('X', 1.0, 1)")


def test_detached_action_cycle(benchmark):
    agent, conn = _with_rule("DETACHED")

    def fire():
        conn.execute("insert stock values ('X', 1.0, 1)")
        agent.action_handler.join_detached()

    # Fixed rounds: unbounded calibration would spawn thousands of
    # concurrent worker threads.
    benchmark.pedantic(fire, rounds=30, iterations=1)


def test_client_latency_with_detached_vs_immediate(benchmark,
                                                   stage_breakdown):
    """Figure series: what the *client* waits for under each coupling."""

    def client_cost(coupling, n=100):
        agent, conn = _with_rule(coupling)
        if stage_breakdown:
            agent.metrics.enabled = True
        start = time.perf_counter()
        for _ in range(n):
            conn.execute("insert stock values ('X', 1.0, 1)")
        client = (time.perf_counter() - start) / n * 1e3
        agent.action_handler.join_detached()
        # IMMEDIATE primitive rules run inline inside the native trigger,
        # so count completed actions by their observable effect.
        done = agent.persistent_manager.execute(
            "sentineldb",
            "select count(*) from sysContext where tableName = 'probe'"
        ).last.scalar()
        if stage_breakdown:
            print_stage_breakdown(f"E-FIG16 {coupling}", agent.metrics)
        return client, done

    immediate_ms, immediate_done = client_cost("IMMEDIATE")
    detached_ms, detached_done = client_cost("DETACHED")
    assert immediate_done == detached_done == 100
    print_series(
        "E-FIG16 client-visible latency per coupling",
        [
            ("IMMEDIATE (inline)", f"{immediate_ms:.3f}"),
            ("DETACHED (thread per action)", f"{detached_ms:.3f}"),
        ],
        ("coupling", "ms/stmt (client)"),
    )
    benchmark(lambda: None)
