"""E-FIG13/14 / Example 2: the composite pipeline under load.

Measures Example 2's full path (two primitive events, AND detection in
the LED, sysContext refresh, Figure 14 context-processing procedure) on
the paper's stock workload, and reports the generated procedure so the
Figure 14 structure is regenerated on every bench run.
"""

from _helpers import example_2_stack, print_series

from repro.workloads import StockWorkload


def test_generated_procedure_report(benchmark):
    server, _agent, _conn = example_2_stack()
    db = server.catalog.get_database("sentineldb")
    proc = db.get_procedure("sharma", "t_and__Proc")
    print("\n[E-FIG14 generated stored procedure for Example 2]")
    for line in proc.source.splitlines():
        print("   ", line)
    assert "/* context processing */" in proc.source
    assert "/* action function */" in proc.source
    benchmark(lambda: None)


def test_composite_fire_cycle(benchmark):
    _server, _agent, conn = example_2_stack()
    conn.execute("insert stock values ('SEED', 1.0, 1)")

    def cycle():
        conn.execute("delete stock")                         # delStk
        conn.execute("insert stock values ('SEED', 1.0, 1)")  # addStk -> AND

    benchmark(cycle)


def test_mixed_workload_through_example_2(benchmark):
    _server, agent, conn = example_2_stack()
    workload = StockWorkload()
    operations = workload.operations(300)

    def run():
        for sql in operations:
            conn.execute(sql)
        return len(agent.action_handler.action_log)

    fired = benchmark.pedantic(run, rounds=3, iterations=1)
    assert fired > 0


def test_composite_fire_counts_report(benchmark):
    _server, agent, conn = example_2_stack()
    workload = StockWorkload()
    for sql in workload.operations(300):
        conn.execute(sql)
    fired = len([r for r in agent.action_handler.action_log
                 if r.trigger_internal.endswith("t_and")])
    notified = agent.notifier.received
    print_series(
        "E-FIG13/14 composite pipeline on a 300-op stock workload",
        [
            ("notifications received", notified),
            ("addDel (AND) firings", fired),
            ("actions errored", len([
                r for r in agent.action_handler.action_log if r.error])),
        ],
        ("metric", "count"),
    )
    assert fired > 0
    benchmark(lambda: None)
