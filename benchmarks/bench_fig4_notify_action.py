"""E-FIG4: the event-notification-and-action control flow.

Measures the end-to-end cost of one triggering statement as rule
machinery is added: bare insert, insert + primitive rule, insert
completing a composite event (notification -> LED -> sysContext ->
action procedure).  Expected shape: monotonically increasing cost, with
the composite path dominated by the context-processing SQL.
"""

from _helpers import agent_stack, example_1_stack, example_2_stack, print_series
import time


def test_insert_no_rules(benchmark):
    _server, _agent, conn = agent_stack()
    benchmark(conn.execute, "insert stock values ('X', 1.0, 1)")


def test_insert_with_primitive_rule(benchmark):
    _server, _agent, conn = example_1_stack()
    benchmark(conn.execute, "insert stock values ('X', 1.0, 1)")


def test_insert_completing_composite(benchmark):
    _server, _agent, conn = example_2_stack()

    def fire():
        conn.execute("delete stock")                       # initiator
        conn.execute("insert stock values ('X', 1.0, 1)")  # terminator

    benchmark(fire)


def test_notify_action_series(benchmark):
    """Figure series: statement cost as the active pipeline lengthens."""

    def clock(conn, sql, n=150):
        start = time.perf_counter()
        for _ in range(n):
            conn.execute(sql)
        return (time.perf_counter() - start) / n * 1e3

    _s1, _a1, bare = agent_stack()
    _s2, _a2, primitive = example_1_stack()
    _s3, _a3, composite = example_2_stack()
    composite.execute("delete stock")  # open a window once

    insert_sql = "insert stock values ('X', 1.0, 1)"
    rows = [
        ("bare insert", f"{clock(bare, insert_sql):.3f}"),
        ("insert + primitive rule", f"{clock(primitive, insert_sql):.3f}"),
        ("insert completing composite", f"{clock(composite, insert_sql):.3f}"),
    ]
    print_series(
        "E-FIG4 notification/action pipeline cost",
        rows, ("statement", "ms/stmt"))
    benchmark(lambda: None)
