"""E-FIG15: notification channel cost — in-process vs threaded vs UDP.

The paper (Section 6) worries that "the communication between ECA Agent
and SQL Server is based on the socket ... system efficiency will be
affected".  This bench quantifies exactly that: the same notification
stream through the synchronous in-process channel, the queued channel,
and a real localhost UDP socket pair.

Expected shape: sync < threaded < UDP per message, with UDP costing
microseconds (the paper's design is sound at LAN scale).
"""

import time

from _helpers import print_series

from repro.agent import SynchronousChannel, ThreadedChannel, UdpChannel

PAYLOAD = "sharma stock insert begin sentineldb.sharma.addStk 42"


def _drive(channel, count: int, burst: int = 50) -> float:
    """Send ``count`` messages in drained bursts.

    Bursts are drained before the next begins: blasting thousands of
    datagrams into a UDP socket faster than the listener drains them
    overflows the kernel buffer and drops messages — a realistic
    property of the paper's transport that the bench must pace around.
    """
    received = []
    channel.attach(received.append)
    channel.start()
    try:
        start = time.perf_counter()
        sent = 0
        while sent < count:
            chunk = min(burst, count - sent)
            for _ in range(chunk):
                channel.send("127.0.0.1", getattr(channel, "port", 0), PAYLOAD)
            sent += chunk
            assert channel.drain(timeout=10.0)
        elapsed = time.perf_counter() - start
    finally:
        channel.stop()
    assert len(received) == count
    return elapsed / count


def test_synchronous_channel(benchmark):
    channel = SynchronousChannel()
    channel.attach(lambda payload: None)
    benchmark(channel.send, "127.0.0.1", 0, PAYLOAD)


def test_threaded_channel(benchmark):
    channel = ThreadedChannel()
    channel.attach(lambda payload: None)
    channel.start()
    try:
        benchmark(channel.send, "127.0.0.1", 0, PAYLOAD)
        channel.drain(timeout=10.0)
    finally:
        channel.stop()


def test_udp_channel(benchmark):
    channel = UdpChannel(port=0)
    channel.attach(lambda payload: None)
    channel.start()
    try:
        benchmark(channel.send, "127.0.0.1", channel.port, PAYLOAD)
        channel.drain(timeout=10.0)
    finally:
        channel.stop()


def test_channel_comparison_series(benchmark):
    rows = []
    for name, channel in (
        ("sync (in-process)", SynchronousChannel()),
        ("threaded (queue)", ThreadedChannel()),
        ("udp (real socket)", UdpChannel(port=0)),
    ):
        cost = _drive(channel, 2000)
        rows.append((name, f"{cost * 1e6:.2f}"))
    print_series("E-FIG15 notification delivery cost", rows,
                 ("channel", "us/message"))
    benchmark(lambda: None)
