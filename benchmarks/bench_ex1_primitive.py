"""E-FIG11 / Example 1: the primitive-trigger machinery under load.

Regenerates the Figure 11 artifact list and measures the overhead the
generated native trigger adds to an insert: snapshotting, vNo
bookkeeping, notification, and the inline action procedure.

Expected shape: the active insert costs a small multiple of the passive
insert (the paper's mediator bets that this tax is acceptable); the
generated-object list matches Figure 11 exactly.
"""

import time

from _helpers import agent_stack, example_1_stack, print_series

from repro.workloads import StockWorkload


def test_generated_artifact_report(benchmark):
    server, agent, _conn = example_1_stack()
    db = server.catalog.get_database("sentineldb")
    artifacts = [
        ("snapshot table", "sharma.stock_inserted",
         str(db.get_table("sharma", "stock_inserted") is not None)),
        ("version table", "sharma.addStk_Version",
         str(db.get_table("sharma", "addStk_Version") is not None)),
        ("action procedure", "sharma.t_addStk__Proc",
         str(db.get_procedure("sharma", "t_addStk__Proc") is not None)),
        ("native trigger", "sharma.ECA_stock_insert",
         str(db.get_trigger("sharma", "ECA_stock_insert") is not None)),
        ("SysPrimitiveEvent row", "addStk", str(
            agent.persistent_manager.execute(
                "sentineldb",
                "select count(*) from SysPrimitiveEvent").last.scalar() == 1)),
    ]
    print_series("E-FIG11 generated objects (Example 1)", artifacts,
                 ("artifact", "name", "present"))
    assert all(present == "True" for _a, _n, present in artifacts)
    benchmark(lambda: None)


def test_passive_insert(benchmark):
    _server, _agent, conn = agent_stack()
    workload = StockWorkload()
    benchmark(lambda: conn.execute(workload.insert_sql()))


def test_active_insert_with_event(benchmark):
    _server, _agent, conn = example_1_stack()
    workload = StockWorkload()
    benchmark(lambda: conn.execute(workload.insert_sql()))


def test_example_1_overhead_series(benchmark):
    """Figure series: passive vs active insert and the activity tax."""

    def clock(conn, n=200):
        workload = StockWorkload()
        start = time.perf_counter()
        for _ in range(n):
            conn.execute(workload.insert_sql())
        return (time.perf_counter() - start) / n * 1e3

    _s1, _a1, passive = agent_stack()
    _s2, _a2, active = example_1_stack()
    passive_ms = clock(passive)
    active_ms = clock(active)
    print_series(
        "E-FIG11 active-insert tax",
        [
            ("passive insert", f"{passive_ms:.3f}"),
            ("active insert (event + trigger)", f"{active_ms:.3f}"),
            ("ratio", f"{active_ms / passive_ms:.2f}x"),
        ],
        ("path", "ms/insert"),
    )
    benchmark(lambda: None)
