"""E-FIG5/6/7: the system tables — layout report and persistence cost."""

import itertools

from _helpers import agent_stack, print_series

from repro.agent.persistence import (
    SYS_COMPOSITE_EVENT_LAYOUT,
    SYS_CONTEXT_LAYOUT,
    SYS_ECA_TRIGGER_LAYOUT,
    SYS_PRIMITIVE_EVENT_LAYOUT,
)

_counter = itertools.count()


def test_system_table_layout_report(benchmark):
    """Regenerates the Figure 5/6/7/17 schema listings."""
    for figure, name, layout in (
        ("Figure 5", "SysPrimitiveEvent", SYS_PRIMITIVE_EVENT_LAYOUT),
        ("Figure 6", "SysCompositeEvent", SYS_COMPOSITE_EVENT_LAYOUT),
        ("Figure 7(+)", "SysEcaTrigger", SYS_ECA_TRIGGER_LAYOUT),
        ("Figure 17", "sysContext", SYS_CONTEXT_LAYOUT),
    ):
        rows = [
            (col, type_name if length is None else f"{type_name}({length})",
             "NULL" if nullable else "not null")
            for col, type_name, length, nullable in layout
        ]
        print_series(f"{figure}: {name}", rows,
                     ("Column_name", "Type", "Nulls"))
    benchmark(lambda: None)


def test_persist_primitive_event(benchmark):
    _server, agent, _conn = agent_stack()
    agent.persistent_manager.ensure_system_tables("sentineldb")

    from repro.agent.model import PrimitiveEventDef

    def persist():
        index = next(_counter)
        agent.persistent_manager.persist_primitive(PrimitiveEventDef(
            db_name="sentineldb", user_name="sharma",
            event_name=f"ev{index}", table_owner="sharma",
            table_name="stock", operation="insert"))

    benchmark(persist)


def test_load_definitions(benchmark):
    _server, agent, conn = agent_stack()
    for index in range(50):
        conn.execute(
            f"create trigger lt{index} on stock for insert event le{index} "
            f"as print 'x'")

    pm = agent.persistent_manager

    def load():
        primitives = pm.load_primitives("sentineldb")
        triggers = pm.load_triggers("sentineldb")
        return len(primitives), len(triggers)

    counts = benchmark(load)
    assert counts == (50, 50)


def test_current_v_no_lookup(benchmark):
    _server, agent, conn = agent_stack()
    conn.execute(
        "create trigger t on stock for insert event e as print 'x'")
    conn.execute("insert stock values ('A', 1, 1)")
    value = benchmark(
        agent.persistent_manager.current_v_no,
        "sentineldb", "sentineldb.sharma.e")
    assert value == 1
