"""E-SITES: sharded-GED scaling and cross-site detection latency.

Two series, both on the sharded deployment layer (``repro.ged``):

1. **Aggregate primitive throughput** for 1, 2, and 3 sites under the
   shared-nothing makespan model: the same total workload is partitioned
   across the sites' shards and each site's slice is timed separately —
   in a real deployment the sites run in parallel, so the aggregate rate
   is ``W_total / max_i(T_i)`` (the makespan is the slowest site).  The
   in-process transport would otherwise serialize all sites onto this
   one thread and hide the scaling the sharding exists to buy.
   ``tools/check_sites.py`` gates the 3-site ratio (default floor 2x).

2. **Cross-site composite latency** — p50/p95 of completing a
   cross-site CHRONICLE SEQ: the constituent datagram leaves site A's
   forwarding rule, crosses the transport, is sequenced + journaled at
   the router, and fires the global rule at the owning shard.

Artifact: ``BENCH_sites.json``.  Knobs (env): ``SITES_OPS`` (total
primitive raises per scaling run, default 3000), ``SITES_PAIRS``
(cross-site SEQ completions sampled, default 400).
"""

from __future__ import annotations

import gc
import os
import time
from types import SimpleNamespace

from _helpers import (
    LATENCY_HEADERS,
    latency_row,
    print_series,
    write_bench_json,
)
from repro.ged import ShardedGed
from repro.led import Context, Coupling, LocalEventDetector

TOTAL_OPS = int(os.environ.get("SITES_OPS", "3000"))
PAIRS = int(os.environ.get("SITES_PAIRS", "400"))

SITE_COUNTS = (1, 2, 3)


def _make_site():
    led = LocalEventDetector()
    led.define_primitive("e1")
    led.define_primitive("e2")
    return SimpleNamespace(led=led, trace=None, recover=lambda: {})


def _build(n_sites: int):
    """A sharded GED with per-site composites so every routed primitive
    does real Snoop work on its home shard (import, route, detect,
    fire) without cross-site subscriptions coupling the slices."""
    ged = ShardedGed()
    sites = {}
    for index in range(n_sites):
        name = f"s{index}"
        sites[name] = _make_site()
        ged.add_site(name, sites[name])
        ged.import_event(name, "e1")
        ged.import_event(name, "e2")
        ged.define_global_event(
            f"G_{name}", f"(e1::{name} OR e2::{name})", owner=name)
        ged.add_global_rule(f"r_{name}", f"G_{name}",
                            context=Context.RECENT,
                            coupling=Coupling.IMMEDIATE)
    return ged, sites


def scaling_point(n_sites: int, total_ops: int, repeats: int = 3) -> dict:
    """One shared-nothing makespan measurement for ``n_sites``.

    The makespan (max over the per-site slice times) amplifies any
    one-off stall, so each point is measured ``repeats`` times on fresh
    stacks and the best makespan wins; the collector is paused around
    the timed loops for the same reason."""
    per_site = total_ops // n_sites
    warmup = 50
    best = None
    for _ in range(repeats):
        ged, sites = _build(n_sites)
        site_seconds = {}
        for name, agent in sites.items():
            for op in range(warmup):
                agent.led.raise_event("e1", {"vNo": op})
            gc_was_on = gc.isenabled()
            gc.disable()
            try:
                start = time.perf_counter()
                for op in range(per_site):
                    agent.led.raise_event(
                        "e1" if op % 2 else "e2", {"vNo": op})
                site_seconds[name] = time.perf_counter() - start
            finally:
                if gc_was_on:
                    gc.enable()
        makespan = max(site_seconds.values())
        routed = sum(ged.routed_by_site.values())
        assert routed == (per_site + warmup) * n_sites
        assert len(ged.firings) == routed  # every raise fired its rule
        if best is None or makespan < best["makespan_s"]:
            best = {
                "sites": n_sites,
                "ops": per_site * n_sites,
                "makespan_s": round(makespan, 6),
                "throughput": round(per_site * n_sites / makespan, 1),
                "per_site_s": {name: round(s, 6)
                               for name, s in site_seconds.items()},
            }
    return best


def cross_site_samples(pairs: int) -> list[float]:
    """Per-completion latency (ms) of a cross-site CHRONICLE SEQ: the
    first constituent is pre-raised; the timed call raises the second,
    which crosses the transport and fires the global rule."""
    ged = ShardedGed()
    a, b = _make_site(), _make_site()
    ged.add_site("alpha", a)
    ged.add_site("beta", b)
    ged.import_event("alpha", "e1")
    ged.import_event("beta", "e2")
    ged.define_global_event("X", "(e1::alpha SEQ e2::beta)")
    ged.add_global_rule("rx", "X", context=Context.CHRONICLE,
                        coupling=Coupling.IMMEDIATE)
    samples = []
    for pair in range(pairs):
        a.led.raise_event("e1", {"vNo": pair})
        start = time.perf_counter()
        b.led.raise_event("e2", {"vNo": pair})
        samples.append((time.perf_counter() - start) * 1e3)
    assert len(ged.firings) == pairs
    return samples


def test_sites_series(benchmark):
    points = {n: scaling_point(n, TOTAL_OPS) for n in SITE_COUNTS}
    base = points[SITE_COUNTS[0]]["throughput"]
    rows = []
    for n, point in points.items():
        ratio = point["throughput"] / base
        point["ratio_vs_1"] = round(ratio, 4)
        rows.append((f"{n} site(s)", point["ops"],
                     f"{point['makespan_s'] * 1e3:.1f}",
                     f"{point['throughput']:.0f}", f"{ratio:.2f}x"))
    print_series("sharded GED primitive throughput (makespan model)",
                 rows, ("deployment", "ops", "makespan_ms",
                        "agg_ops_per_s", "vs_1_site"))

    seq_ms = cross_site_samples(PAIRS)
    print_series("cross-site SEQ completion latency",
                 [latency_row("datagram->route->journal->fire", seq_ms)],
                 LATENCY_HEADERS)

    write_bench_json("sites", {"cross_site_seq_ms": seq_ms}, extra={
        "sites": {
            "total_ops": TOTAL_OPS,
            "scaling": {str(n): point for n, point in points.items()},
            "cross_site_pairs": PAIRS,
        },
    })
    # Hard floors live in tools/check_sites.py; sanity only here.
    assert points[3]["ratio_vs_1"] > 1.0
    benchmark(lambda: None)


def test_cross_site_smoke(benchmark):
    """One cross-site completion as a plain benchmark sample."""
    benchmark(cross_site_samples, 4)
