"""E-FIG17: parameter-context cost through the full stack.

Runs the same insert/delete stream against the Example 2 composite in
each of the four contexts and reports firings and per-statement cost.

Expected shape: CONTINUOUS fires most (one per open initiator),
CUMULATIVE fires least but moves the most parameter rows per firing;
per-statement costs stay within the same order of magnitude.
"""

import time

from _helpers import agent_stack, print_series

from repro.workloads import StockWorkload


def _stack(context: str):
    _server, agent, conn = agent_stack()
    conn.execute(
        "create trigger t_add on stock for insert event addStk as print 'a'")
    conn.execute(
        "create trigger t_del on stock for delete event delStk as print 'd'")
    conn.execute(
        f"create trigger tc event comp = addStk AND delStk {context} as "
        "select symbol from stock.inserted")
    return agent, conn


def _run(agent, conn, operations):
    for sql in operations:
        conn.execute(sql)
    firings = [r for r in agent.action_handler.action_log
               if r.trigger_internal.endswith("tc")]
    rows_delivered = sum(r.row_sets for r in firings)
    return len(firings), rows_delivered


def test_recent_context(benchmark):
    agent, conn = _stack("RECENT")
    operations = StockWorkload().operations(120)
    benchmark.pedantic(lambda: _run(agent, conn, operations),
                       rounds=3, iterations=1)


def test_cumulative_context(benchmark):
    agent, conn = _stack("CUMULATIVE")
    operations = StockWorkload().operations(120)
    benchmark.pedantic(lambda: _run(agent, conn, operations),
                       rounds=3, iterations=1)


def test_context_comparison_series(benchmark):
    rows = []
    for context in ("RECENT", "CHRONICLE", "CONTINUOUS", "CUMULATIVE"):
        agent, conn = _stack(context)
        operations = StockWorkload().operations(200)
        start = time.perf_counter()
        firings, _rows = _run(agent, conn, operations)
        elapsed = (time.perf_counter() - start) / len(operations) * 1e3
        rows.append((context, firings, f"{elapsed:.3f}"))
    print_series(
        "E-FIG17 contexts on a 200-op stock workload",
        rows, ("context", "firings", "ms/stmt"))
    # Shape: CONTINUOUS >= RECENT >= CUMULATIVE in firing count.
    by_context = {name: firings for name, firings, _cost in rows}
    assert by_context["CONTINUOUS"] >= by_context["CUMULATIVE"]
    benchmark(lambda: None)
