"""E-PERF3: raw LED scaling — throughput vs rules, depth, and context.

Expected shape: per-event cost grows with the number of composite events
sharing the raised primitives and with expression depth; contexts differ
by bounded constant factors (CUMULATIVE buffering is the cheapest per
raise, CONTINUOUS the most expensive when many windows stay open).
"""

import time

from _helpers import fresh_led, print_series

from repro.led import Context
from repro.workloads import EcaWorkload


def _throughput(workload: EcaWorkload, events: int = 2000,
                context: str = "RECENT") -> float:
    led = fresh_led()
    workload.install(led, context=context)
    stream = workload.event_stream(events)
    start = time.perf_counter()
    for name in stream:
        led.clock.advance(1)
        led.raise_event(name)
    return events / (time.perf_counter() - start)


def test_raise_through_small_graph(benchmark):
    led = fresh_led()
    EcaWorkload(n_primitives=5, n_composites=5).install(led)
    led.clock.advance(1)
    benchmark(led.raise_event, "ev_p0")


def test_raise_through_large_graph(benchmark):
    led = fresh_led()
    EcaWorkload(n_primitives=10, n_composites=100).install(led)
    led.clock.advance(1)
    benchmark(led.raise_event, "ev_p0")


def test_scaling_with_rule_count_series(benchmark):
    rows = []
    for composites in (10, 40, 160):
        workload = EcaWorkload(n_primitives=8, n_composites=composites,
                               expression_depth=2)
        rows.append((composites, f"{_throughput(workload):,.0f}"))
    print_series("E-PERF3 throughput vs composite-event count",
                 rows, ("composites", "events/sec"))
    benchmark(lambda: None)


def test_scaling_with_expression_depth_series(benchmark):
    rows = []
    for depth in (1, 3, 5):
        workload = EcaWorkload(n_primitives=8, n_composites=20,
                               expression_depth=depth)
        rows.append((depth, f"{_throughput(workload):,.0f}"))
    print_series("E-PERF3 throughput vs expression depth",
                 rows, ("depth", "events/sec"))
    benchmark(lambda: None)


def test_scaling_per_context_series(benchmark):
    rows = []
    for context in Context:
        workload = EcaWorkload(n_primitives=8, n_composites=20,
                               expression_depth=2)
        rows.append((context.value,
                     f"{_throughput(workload, context=context.value):,.0f}"))
    print_series("E-PERF3 throughput per parameter context",
                 rows, ("context", "events/sec"))
    benchmark(lambda: None)
