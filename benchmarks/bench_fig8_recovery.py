"""E-FIG8: persistent manager recovery — restart cost vs rule-base size.

Expected shape: recovery time grows roughly linearly with the number of
persisted rules, and a recovered agent behaves identically to the
original (spot-checked after each timing run).
"""

import time

from _helpers import agent_stack, print_series, write_bench_json

from repro.agent import EcaAgent
from repro.led import ManualClock


def _populate(conn, rules: int) -> None:
    for index in range(rules):
        conn.execute(
            f"create trigger rt{index} on stock for insert event re{index} "
            f"as print 'r{index}'")


def test_recover_small_rule_base(benchmark):
    server, agent, conn = agent_stack()
    _populate(conn, 10)
    agent.close()

    def recover():
        fresh = EcaAgent(server, clock=ManualClock())
        fresh.close()
        return fresh

    fresh = benchmark(recover)
    assert len(fresh.eca_triggers) == 10


def test_recovery_scaling_series(benchmark):
    """Figure series: recovery time as the rule base grows.

    Also writes ``BENCH_fig8_recovery.json`` (uploaded by the CI chaos
    job) with full latency summaries per rule-base size, plus a
    ``repair`` series measuring recovery over a torn rule — the
    fault-hardening path exercised by tests/agent/test_chaos_faults.py.
    """
    rows = []
    series: dict[str, list[float]] = {}
    for rules in (5, 20, 80):
        samples = []
        for _ in range(3):
            server, agent, conn = agent_stack()
            _populate(conn, rules)
            agent.close()
            start = time.perf_counter()
            fresh = EcaAgent(server, clock=ManualClock())
            samples.append((time.perf_counter() - start) * 1e3)
            assert len(fresh.eca_triggers) == rules
            # Spot check: a recovered rule still fires.
            probe = fresh.connect(user="sharma", database="sentineldb")
            result = probe.execute("insert stock values ('Z', 1, 1)")
            assert "r0" in result.messages
            fresh.close()
        series[f"rules_{rules}"] = samples
        rows.append((rules, f"{min(samples):.2f}"))

    # Repair series: same 20-rule base plus one orphan SysEcaTrigger row
    # (a create that "crashed" between its two inserts).
    samples = []
    for _ in range(3):
        server, agent, conn = agent_stack()
        _populate(conn, 20)
        pm = agent.persistent_manager
        pm.execute("sentineldb", (
            "insert SysEcaTrigger values ('sentineldb', 'sharma', 'torn', "
            "'sentineldb.sharma.torn__Proc', getdate(), "
            "'sentineldb.sharma.re0', 'IMMEDIATE', 'RECENT', 1)"))
        agent.close()
        start = time.perf_counter()
        fresh = EcaAgent(server, clock=ManualClock())
        samples.append((time.perf_counter() - start) * 1e3)
        assert len(fresh.eca_triggers) == 20
        fresh.close()
    series["repair_20_rules_1_orphan"] = samples

    print_series("E-FIG8 recovery time vs rule-base size", rows,
                 ("rules", "ms"))
    write_bench_json("fig8_recovery", series)
    benchmark(lambda: None)
