"""E-FIG8: persistent manager recovery — restart cost vs rule-base size.

Expected shape: recovery time grows roughly linearly with the number of
persisted rules, and a recovered agent behaves identically to the
original (spot-checked after each timing run).
"""

import time

from _helpers import agent_stack, print_series

from repro.agent import EcaAgent
from repro.led import ManualClock


def _populate(conn, rules: int) -> None:
    for index in range(rules):
        conn.execute(
            f"create trigger rt{index} on stock for insert event re{index} "
            f"as print 'r{index}'")


def test_recover_small_rule_base(benchmark):
    server, agent, conn = agent_stack()
    _populate(conn, 10)
    agent.close()

    def recover():
        fresh = EcaAgent(server, clock=ManualClock())
        fresh.close()
        return fresh

    fresh = benchmark(recover)
    assert len(fresh.eca_triggers) == 10


def test_recovery_scaling_series(benchmark):
    """Figure series: recovery time as the rule base grows."""
    rows = []
    for rules in (5, 20, 80):
        server, agent, conn = agent_stack()
        _populate(conn, rules)
        agent.close()
        start = time.perf_counter()
        fresh = EcaAgent(server, clock=ManualClock())
        elapsed = (time.perf_counter() - start) * 1e3
        assert len(fresh.eca_triggers) == rules
        # Spot check: a recovered rule still fires.
        probe = fresh.connect(user="sharma", database="sentineldb")
        result = probe.execute("insert stock values ('Z', 1, 1)")
        assert "r0" in result.messages
        fresh.close()
        rows.append((rules, f"{elapsed:.2f}"))
    print_series("E-FIG8 recovery time vs rule-base size", rows,
                 ("rules", "ms"))
    benchmark(lambda: None)
