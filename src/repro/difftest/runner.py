"""Execute one scenario three ways and collect comparison surfaces.

The three executions of a :class:`~repro.difftest.scenario.Scenario`:

1. :func:`run_stack` — the full gateway/agent/LED stack over a live
   :class:`~repro.sqlengine.SqlServer`, with the plan cache on or off
   and an optional seeded fault plan;
2. :func:`run_reference` — the paper-literal reference interpreter fed
   the primitive-occurrence stream the scenario's triggers notify;
3. :func:`run_baselines` — a passive shadow replay cross-checked by the
   :mod:`repro.baselines` polling monitor and embedded situation client.

A fourth execution, :func:`run_interleaved`, replays the same statement
stream through N concurrent gateway sessions over a worker pool while
preserving the serial global schedule; its :class:`StackRun` must match
the serial one exactly.

Each returns a plain observation dataclass; :mod:`repro.difftest.compare`
diffs them.  All names in observations are *short* (the last segment of
the agent's internal dotted names), so the stack and the reference are
directly comparable.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field

from repro.agent import EcaAgent
from repro.baselines.embedded import EmbeddedSituationClient
from repro.baselines.polling import PollingMonitor
from repro.ged import ShardedGed
from repro.sqlengine import SqlServer, connect

from .reference import MultiSiteReference, ReferenceDetector
from .scenario import (
    AUDIT_DDL,
    DATABASE,
    MultiSiteScenario,
    Scenario,
    TABLE_DDL,
    USER,
)

#: Detections are compared as (event, context, constituent-seq-tuple);
#: firings add the rule name and coupling mode.
Detection = tuple[str, str | None, tuple[int, ...]]
Firing = tuple[str, str, str, str, tuple[int, ...]]


def _short(name: str) -> str:
    """``difftest.dbo.c0`` -> ``c0`` (already-short names pass through)."""
    return name.rsplit(".", 1)[-1]


@dataclass
class StackRun:
    """Observation of one full-stack execution."""

    primitives: list[tuple[str, int]] = field(default_factory=list)
    detections: list[Detection] = field(default_factory=list)
    firings: list[Firing] = field(default_factory=list)
    audit: Counter = field(default_factory=Counter)
    tables: dict[str, list[tuple]] = field(default_factory=dict)
    #: (statement index, message) for statements the gateway degraded
    degraded: list[tuple[int, str]] = field(default_factory=list)
    faults_injected: int = 0
    notifications_dropped: int = 0


@dataclass
class ReferenceRun:
    """Observation of the reference-interpreter execution."""

    primitives: list[tuple[str, int]] = field(default_factory=list)
    detections: list[Detection] = field(default_factory=list)
    firings: list[Firing] = field(default_factory=list)
    audit: Counter = field(default_factory=Counter)


@dataclass
class BaselineRun:
    """Observation of the passive shadow replay + baseline oracles."""

    tables: dict[str, list[tuple]] = field(default_factory=dict)
    #: every change the polling monitor inferred, in poll order
    polling_changes: list[tuple[str, str, tuple]] = field(
        default_factory=list)
    #: final row count each embedded check reported, per table
    embedded_counts: dict[str, int] = field(default_factory=dict)


@dataclass
class ScenarioRun:
    """All observations of one scenario execution."""

    stack: StackRun
    reference: ReferenceRun
    baseline: BaselineRun


def _read_rows(conn, table: str) -> list[tuple]:
    result = conn.execute(f"select * from {table}")
    rows = result.last.rows if result.last else []
    return sorted(tuple(row) for row in rows)


def run_stack(scenario: Scenario, *, plan_cache: bool = True,
              planner: bool = True, faults=None) -> StackRun:
    """Execute the scenario on the full gateway/agent/LED stack.

    ``planner`` selects the execution engine axis: the cost-based DAG
    executor (default) or the legacy AST walker it must be
    indistinguishable from.  ``faults`` is an optional
    :class:`~repro.faults.FaultPlan` (or injector) applied to the
    *statement stream only* — the injector is disarmed while tables and
    rules are created, so every chaos run starts from an identical
    installed rule set and the seeded schedule is counted from the first
    streamed statement.  The stream keeps going after degraded commands
    so chaos runs observe the agent's graceful-degradation contract.
    """
    server = SqlServer(default_database=DATABASE)
    server.plan_cache.enabled = bool(plan_cache)
    server.planner_enabled = bool(planner)
    agent = EcaAgent(server, channel="sync", faults=faults)
    run = StackRun()
    try:
        agent.faults.armed = False
        conn = agent.connect(user=USER, database=DATABASE)
        for table in scenario.tables:
            conn.execute(TABLE_DDL.format(name=table))
        conn.execute(AUDIT_DDL)
        for spec in scenario.primitives:
            conn.execute(spec.to_sql())
        for rule in scenario.rules:
            conn.execute(rule.to_sql())
        log = agent.start_detection_log()
        agent.faults.armed = True
        for index, statement in enumerate(scenario.statements):
            result = conn.execute(statement.sql)
            for message in result.messages:
                if message.startswith("Agent error:"):
                    run.degraded.append((index, message))
        agent.faults.armed = False
        agent.stop_detection_log()

        composites = set(scenario.composite_events())
        for name, context, occurrence in log:
            short = _short(name)
            if context is None:
                run.primitives.append((short, occurrence.seq))
            elif short in composites:
                run.detections.append((
                    short, context.value,
                    tuple(occ.seq for occ in occurrence.flatten())))
        for firing in agent.firing_history():
            run.firings.append((
                _short(firing.rule_name), _short(firing.event_name),
                firing.context.value, firing.coupling.value,
                tuple(occ.seq for occ in firing.occurrence.flatten())))
        audit_result = conn.execute("select * from audit")
        rows = audit_result.last.rows if audit_result.last else []
        run.audit = Counter(row[0] for row in rows)
        for table in scenario.tables:
            run.tables[table] = _read_rows(conn, table)
        run.faults_injected = agent.faults.injected_count
        run.notifications_dropped = agent.notifier.dropped
    finally:
        agent.close()
    return run


def run_interleaved(scenario: Scenario, *, clients: int = 4,
                    workers: int = 4, seed: int = 0,
                    plan_cache: bool = True,
                    planner: bool = True) -> StackRun:
    """Execute the scenario through ``clients`` concurrent gateway
    sessions backed by a ``workers``-thread pool.

    Statements keep their scenario order but each is issued by a
    seeded-randomly chosen client session, with at most one command in
    flight at a time — so the *global* schedule matches the serial
    :func:`run_stack` schedule while the execution path exercises the
    session registry, the worker pool, the engine's fine-grained batch
    locking, and per-session accounting attribution.  The observation
    must be indistinguishable from the serial run's
    (:func:`~repro.difftest.compare.compare_stack_runs`).
    """
    import random

    server = SqlServer(default_database=DATABASE)
    server.plan_cache.enabled = bool(plan_cache)
    server.planner_enabled = bool(planner)
    agent = EcaAgent(server, channel="sync", workers=workers)
    run = StackRun()
    rng = random.Random(seed)
    try:
        conns = [agent.connect(user=USER, database=DATABASE)
                 for _ in range(max(1, clients))]
        setup = conns[0]
        for table in scenario.tables:
            setup.execute(TABLE_DDL.format(name=table))
        setup.execute(AUDIT_DDL)
        for spec in scenario.primitives:
            setup.execute(spec.to_sql())
        for rule in scenario.rules:
            setup.execute(rule.to_sql())
        log = agent.start_detection_log()
        for index, statement in enumerate(scenario.statements):
            conn = conns[rng.randrange(len(conns))]
            result = conn.execute(statement.sql)
            for message in result.messages:
                if message.startswith("Agent error:"):
                    run.degraded.append((index, message))
        agent.stop_detection_log()

        composites = set(scenario.composite_events())
        for name, context, occurrence in log:
            short = _short(name)
            if context is None:
                run.primitives.append((short, occurrence.seq))
            elif short in composites:
                run.detections.append((
                    short, context.value,
                    tuple(occ.seq for occ in occurrence.flatten())))
        for firing in agent.firing_history():
            run.firings.append((
                _short(firing.rule_name), _short(firing.event_name),
                firing.context.value, firing.coupling.value,
                tuple(occ.seq for occ in firing.occurrence.flatten())))
        audit_result = setup.execute("select * from audit")
        rows = audit_result.last.rows if audit_result.last else []
        run.audit = Counter(row[0] for row in rows)
        for table in scenario.tables:
            run.tables[table] = _read_rows(setup, table)
        run.faults_injected = agent.faults.injected_count
        run.notifications_dropped = agent.notifier.dropped
    finally:
        agent.close()
    return run


def run_reference(scenario: Scenario) -> ReferenceRun:
    """Execute the scenario on the reference Snoop interpreter.

    The primitive-occurrence stream is derived from the scenario alone:
    each statement raises the events registered on its (table,
    operation), in trigger-creation order — exactly the segment order of
    the stack's coalesced notification datagram.  DEFERRED rules flush
    at statement end (no open transactions in generated streams).
    """
    ref = ReferenceDetector()
    audit_rules = {rule.trigger for rule in scenario.rules}
    for spec in scenario.primitives:
        ref.define_primitive(spec.event)
        if spec.coupling != "IMMEDIATE":
            # IMMEDIATE primitive rules run inline inside the native
            # trigger (no LED rule); every other coupling is LED-managed.
            ref.add_rule(spec.trigger, spec.event,
                         context="RECENT", coupling=spec.coupling)
    for rule in scenario.rules:
        if rule.expression is not None:
            ref.define_composite(rule.event, rule.expression)
        ref.add_rule(rule.trigger, rule.event, context=rule.context,
                     coupling=rule.coupling, priority=rule.priority)
    for statement in scenario.statements:
        for event in scenario.raises_for(statement):
            ref.raise_event(event)
        ref.flush_deferred()

    run = ReferenceRun()
    composites = set(scenario.composite_events())
    for detection in ref.detections:
        if detection.context is None:
            run.primitives.append(
                (detection.event_name, detection.occurrence.seqs()[0]))
        elif detection.event_name in composites:
            run.detections.append((
                detection.event_name, detection.context,
                detection.occurrence.seqs()))
    for firing in ref.firings:
        run.firings.append((
            firing.rule_name, firing.event_name, firing.context,
            firing.coupling, firing.occurrence.seqs()))
        if firing.rule_name in audit_rules:
            run.audit[firing.rule_name] += 1
    return run


def run_baselines(scenario: Scenario) -> BaselineRun:
    """Replay the DML stream on a passive shadow server, watched by the
    polling and embedded-situation baseline oracles."""
    shadow = SqlServer(default_database=DATABASE)
    conn = connect(shadow, user=USER, database=DATABASE)
    for table in scenario.tables:
        conn.execute(TABLE_DDL.format(name=table))
    run = BaselineRun()
    counts: dict[str, list[int]] = {table: [] for table in scenario.tables}
    client = EmbeddedSituationClient(conn)
    for table in scenario.tables:
        client.add_check(
            table, f"select count(*) from {table}",
            lambda rows, table=table: counts[table].append(rows[0][0]))
    monitor = PollingMonitor(
        shadow, list(scenario.tables), DATABASE, USER)
    monitor.prime()
    for statement in scenario.statements:
        client.execute(statement.sql)
        for change in monitor.poll():
            run.polling_changes.append(
                (change.table, change.kind, tuple(change.row)))
    for table in scenario.tables:
        run.tables[table] = _read_rows(conn, table)
        run.embedded_counts[table] = counts[table][-1] if counts[table] else 0
    return run


# ---------------------------------------------------------------------------
# multi-site runs (the sharded-GED differential surface)


@dataclass
class MultiSiteRun:
    """Observation of one multi-site execution (stack or reference).

    The comparison surfaces are deployment-shape independent: the global
    primitive stream is one totally ordered list, while detections and
    firings are grouped per event / per rule — cross-event interleaving
    legitimately differs between a sharded and a single-coordinator
    layout (and between stack and composer), but the per-class history
    may not.
    """

    #: (shortened qualified name, global seq, vNo), in global order
    primitives: list[tuple[str, int, int]] = field(default_factory=list)
    #: event -> [(context, constituent seqs)] in detection order
    detections: dict[str, list[tuple]] = field(default_factory=dict)
    #: rule -> [(event, context, coupling, constituent seqs)]
    firings: dict[str, list[tuple]] = field(default_factory=dict)
    audit: Counter = field(default_factory=Counter)
    #: informational only — never compared across deployment shapes
    partition: dict[str, tuple[str, ...]] = field(default_factory=dict)


def run_multisite_stack(scenario: MultiSiteScenario, *,
                        sharded: bool = True) -> MultiSiteRun:
    """Execute a multi-site scenario on real agents under a GED.

    One :class:`~repro.agent.EcaAgent` (own server, sync channel) per
    site, joined into a :class:`~repro.ged.ShardedGed`; every site
    primitive is imported and every global rule installed at the GED.
    ``sharded`` selects the deployment shape: the consistent-hash ring
    or the degenerate single-coordinator layout — the sharding layer
    must be semantically invisible between the two.
    """
    ged = ShardedGed(sharded=sharded)
    agents: dict[str, EcaAgent] = {}
    run = MultiSiteRun()
    try:
        conns = {}
        for site in scenario.sites:
            server = SqlServer(default_database=DATABASE)
            agent = EcaAgent(server, channel="sync")
            agents[site] = agent
            ged.add_site(site, agent)
            conn = agent.connect(user=USER, database=DATABASE)
            conns[site] = conn
            for table in scenario.tables:
                conn.execute(TABLE_DDL.format(name=table))
        for spec in scenario.primitives:
            conns[spec.site].execute(spec.to_sql())
            ged.import_event(spec.site, f"{DATABASE}.{USER}.{spec.event}")
        for rule in scenario.rules:
            if rule.expression is not None:
                ged.define_global_event(rule.event, rule.expression)
            ged.add_global_rule(rule.trigger, rule.event,
                                context=rule.context,
                                coupling=rule.coupling,
                                priority=rule.priority)
        ged.start_detection_logs()
        for statement in scenario.statements:
            conns[statement.site].execute(statement.sql)
            ged.flush_deferred()
        logs = ged.stop_detection_logs()

        composites = set(scenario.composite_events())
        for entry in ged.journal:
            run.primitives.append((
                _short(entry.name), entry.gseq,
                entry.occurrence.params.get("vNo")))
        for _site, log in logs:
            for name, context, occurrence in log:
                if context is None or name not in composites:
                    continue
                run.detections.setdefault(name, []).append((
                    context.value,
                    tuple(occ.seq for occ in occurrence.flatten())))
        for firing in ged.firings:
            run.firings.setdefault(firing.rule_name, []).append((
                firing.event_name, firing.context.value,
                firing.coupling.value,
                tuple(occ.seq for occ in firing.occurrence.flatten())))
        run.audit = Counter(f.rule_name for f in ged.firings)
        run.partition = ged.partition_map()
    finally:
        ged.close()
        for agent in agents.values():
            agent.close()
    return run


def run_multisite_reference(scenario: MultiSiteScenario) -> MultiSiteRun:
    """Execute a multi-site scenario on the paper-literal twin.

    Per-site reference Snoops interpret the local streams; the global
    composer re-detects the qualified stream.  The composer's sequence
    numbers align one-for-one with the GED router's ``gseq``, so the
    observation diffs directly against :func:`run_multisite_stack`.
    """
    twin = MultiSiteReference(scenario.sites)
    for spec in scenario.primitives:
        twin.define_site_primitive(spec.site, spec.event)
        twin.import_event(spec.site, spec.event, spec.qualified)
    for rule in scenario.rules:
        if rule.expression is not None:
            twin.define_global_event(rule.event, rule.expression)
        twin.add_global_rule(rule.trigger, rule.event,
                             context=rule.context, coupling=rule.coupling,
                             priority=rule.priority)
    for statement in scenario.statements:
        for event in scenario.raises_for(statement):
            twin.raise_site_event(statement.site, event)
        twin.flush_deferred()

    run = MultiSiteRun()
    composites = set(scenario.composite_events())
    for qualified, seq, v_no in twin.primitives:
        run.primitives.append((_short(qualified), seq, v_no))
    for detection in twin.composer.detections:
        if detection.context is None or detection.event_name not in composites:
            continue
        run.detections.setdefault(detection.event_name, []).append((
            detection.context, detection.occurrence.seqs()))
    for firing in twin.composer.firings:
        run.firings.setdefault(firing.rule_name, []).append((
            firing.event_name, firing.context, firing.coupling,
            firing.occurrence.seqs()))
    run.audit = Counter(f.rule_name for f in twin.composer.firings)
    return run


def run_scenario(scenario: Scenario, *, plan_cache: bool = True,
                 faults=None) -> ScenarioRun:
    """Run all three executions of one scenario."""
    return ScenarioRun(
        stack=run_stack(scenario, plan_cache=plan_cache, faults=faults),
        reference=run_reference(scenario),
        baseline=run_baselines(scenario),
    )
