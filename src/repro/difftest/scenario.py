"""Seeded differential-test scenarios: rules + DML, SQL + JSON forms.

A :class:`Scenario` is the unit the harness runs, shrinks, and persists:
monitored tables, primitive-event triggers, composite-event rules (with
full parameter-context coverage), and a DML statement stream.  Every
scenario is generated from a single seed via :func:`generate_scenario`
and serialises losslessly to JSON, which is the format of the regression
corpus under ``tests/difftest/corpus/``.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace

from repro.workloads.generators import (
    DmlStatement,
    PARAMETER_CONTEXTS,
    random_dml_stream,
    random_rule_set,
)

#: Identity every scenario runs under; all generated object names are
#: lowercase, so LED-internal names (``difftest.dbo.<name>``) sort the
#: same as the short names the reference interpreter uses.
DATABASE = "difftest"
USER = "dbo"

#: Schema of every monitored table.
TABLE_DDL = "create table {name} (k int not null, v int null)"

#: The audit table collects composite-rule action effects; it has no
#: triggers of its own, so actions never feed back into detection.
AUDIT_DDL = "create table audit (rule varchar(40) not null, n int null)"


@dataclass(frozen=True)
class PrimitiveSpec:
    """One primitive event: a trigger on ``(table, operation)``.

    ``coupling`` decides the execution path: IMMEDIATE primitive rules
    are *inline* (the generated native trigger executes the action
    procedure directly, bypassing the LED), DEFERRED ones become LED
    rules flushed at statement end — both paths are exercised.
    """

    event: str
    table: str
    operation: str
    coupling: str = "IMMEDIATE"

    @property
    def trigger(self) -> str:
        return f"t_{self.event}"

    def to_sql(self) -> str:
        return (f"create trigger {self.trigger} on {self.table} "
                f"for {self.operation} event {self.event} "
                f"{self.coupling} as print '{self.event}'")


@dataclass(frozen=True)
class RuleSpec:
    """One composite-event rule.

    The first rule naming an event carries its Snoop ``expression``;
    extra rules on an already-defined event leave it ``None``.  Every
    rule's action is one audit insert tagged with the trigger name, so
    final table state reflects the firing multiset.
    """

    trigger: str
    event: str
    expression: str | None
    context: str
    coupling: str
    priority: int

    def to_sql(self) -> str:
        event_clause = f"event {self.event}"
        if self.expression is not None:
            event_clause += f" = {self.expression}"
        return (f"create trigger {self.trigger} {event_clause} "
                f"{self.coupling} {self.context} {self.priority} "
                f"as insert audit values ('{self.trigger}', 0)")


@dataclass(frozen=True)
class Scenario:
    """One complete differential-test scenario."""

    seed: int
    tables: tuple[str, ...]
    primitives: tuple[PrimitiveSpec, ...]
    rules: tuple[RuleSpec, ...]
    statements: tuple[DmlStatement, ...]

    def composite_events(self) -> list[str]:
        """Names of the composite events this scenario defines."""
        return [rule.event for rule in self.rules
                if rule.expression is not None]

    def contexts_covered(self) -> set[str]:
        return {rule.context for rule in self.rules}

    def raises_for(self, statement: DmlStatement) -> list[str]:
        """The primitive events one statement notifies, in registration
        (trigger-creation) order — the coalesced datagram's segment
        order."""
        return [p.event for p in self.primitives
                if (p.table, p.operation) ==
                (statement.table, statement.operation)]

    def describe(self) -> str:
        return (f"scenario seed={self.seed}: {len(self.tables)} tables, "
                f"{len(self.primitives)} primitive events, "
                f"{len(self.rules)} rules, "
                f"{len(self.statements)} statements")

    # -- serialization (the corpus format) ------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "tables": list(self.tables),
            "primitives": [asdict(p) for p in self.primitives],
            "rules": [asdict(r) for r in self.rules],
            "statements": [asdict(s) for s in self.statements],
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        payload = json.loads(text)
        return cls(
            seed=payload["seed"],
            tables=tuple(payload["tables"]),
            primitives=tuple(
                PrimitiveSpec(**p) for p in payload["primitives"]),
            rules=tuple(RuleSpec(**r) for r in payload["rules"]),
            statements=tuple(
                DmlStatement(**s) for s in payload["statements"]),
        )

    def with_statements(self, statements) -> "Scenario":
        return replace(self, statements=tuple(statements))

    def with_rules(self, rules) -> "Scenario":
        return replace(self, rules=tuple(rules))

    def with_primitives(self, primitives) -> "Scenario":
        return replace(self, primitives=tuple(primitives))


def generate_scenario(seed: int, *, n_tables: int = 2,
                      n_primitives: int = 5, n_composites: int = 5,
                      n_extra_rules: int = 2,
                      n_statements: int = 30) -> Scenario:
    """Generate the seeded scenario for one differential run.

    ``n_composites`` must be at least four so the cycled contexts cover
    every Snoop parameter context (:data:`PARAMETER_CONTEXTS`).
    """
    if n_composites < len(PARAMETER_CONTEXTS):
        raise ValueError("need at least four composites for full "
                         "parameter-context coverage")
    rng = random.Random(seed)
    tables = tuple(f"t{i}" for i in range(n_tables))
    operations = ("insert", "update", "delete")
    primitives = tuple(
        PrimitiveSpec(
            event=f"p{i}",
            table=rng.choice(tables),
            operation=rng.choice(operations),
            coupling=rng.choice(("IMMEDIATE", "DEFERRED")),
        )
        for i in range(n_primitives)
    )
    rules: list[RuleSpec] = []
    composites = random_rule_set(
        rng, [p.event for p in primitives], n_composites)
    for spec in composites:
        rules.append(RuleSpec(
            trigger=f"trg_{spec.event}",
            event=spec.event,
            expression=spec.expression,
            context=spec.context,
            coupling=spec.coupling,
            priority=spec.priority,
        ))
    for index in range(n_extra_rules):
        target = rng.choice(composites)
        rules.append(RuleSpec(
            trigger=f"xr{index}_{target.event}",
            event=target.event,
            expression=None,
            context=rng.choice(PARAMETER_CONTEXTS),
            coupling=rng.choice(("IMMEDIATE", "DEFERRED")),
            priority=rng.choice([1, 1, 2]),
        ))
    statements = tuple(random_dml_stream(rng, list(tables), n_statements))
    return Scenario(
        seed=seed,
        tables=tables,
        primitives=primitives,
        rules=tuple(rules),
        statements=statements,
    )
