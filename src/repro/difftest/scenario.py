"""Seeded differential-test scenarios: rules + DML, SQL + JSON forms.

A :class:`Scenario` is the unit the harness runs, shrinks, and persists:
monitored tables, primitive-event triggers, composite-event rules (with
full parameter-context coverage), and a DML statement stream.  Every
scenario is generated from a single seed via :func:`generate_scenario`
and serialises losslessly to JSON, which is the format of the regression
corpus under ``tests/difftest/corpus/``.
"""

from __future__ import annotations

import json
import random
from dataclasses import asdict, dataclass, field, replace

from repro.workloads.generators import (
    DmlStatement,
    PARAMETER_CONTEXTS,
    random_dml_stream,
    random_rule_set,
)

#: Identity every scenario runs under; all generated object names are
#: lowercase, so LED-internal names (``difftest.dbo.<name>``) sort the
#: same as the short names the reference interpreter uses.
DATABASE = "difftest"
USER = "dbo"

#: Schema of every monitored table.
TABLE_DDL = "create table {name} (k int not null, v int null)"

#: The audit table collects composite-rule action effects; it has no
#: triggers of its own, so actions never feed back into detection.
AUDIT_DDL = "create table audit (rule varchar(40) not null, n int null)"


@dataclass(frozen=True)
class PrimitiveSpec:
    """One primitive event: a trigger on ``(table, operation)``.

    ``coupling`` decides the execution path: IMMEDIATE primitive rules
    are *inline* (the generated native trigger executes the action
    procedure directly, bypassing the LED), DEFERRED ones become LED
    rules flushed at statement end — both paths are exercised.
    """

    event: str
    table: str
    operation: str
    coupling: str = "IMMEDIATE"

    @property
    def trigger(self) -> str:
        return f"t_{self.event}"

    def to_sql(self) -> str:
        return (f"create trigger {self.trigger} on {self.table} "
                f"for {self.operation} event {self.event} "
                f"{self.coupling} as print '{self.event}'")


@dataclass(frozen=True)
class RuleSpec:
    """One composite-event rule.

    The first rule naming an event carries its Snoop ``expression``;
    extra rules on an already-defined event leave it ``None``.  Every
    rule's action is one audit insert tagged with the trigger name, so
    final table state reflects the firing multiset.
    """

    trigger: str
    event: str
    expression: str | None
    context: str
    coupling: str
    priority: int

    def to_sql(self) -> str:
        event_clause = f"event {self.event}"
        if self.expression is not None:
            event_clause += f" = {self.expression}"
        return (f"create trigger {self.trigger} {event_clause} "
                f"{self.coupling} {self.context} {self.priority} "
                f"as insert audit values ('{self.trigger}', 0)")


@dataclass(frozen=True)
class Scenario:
    """One complete differential-test scenario."""

    seed: int
    tables: tuple[str, ...]
    primitives: tuple[PrimitiveSpec, ...]
    rules: tuple[RuleSpec, ...]
    statements: tuple[DmlStatement, ...]

    def composite_events(self) -> list[str]:
        """Names of the composite events this scenario defines."""
        return [rule.event for rule in self.rules
                if rule.expression is not None]

    def contexts_covered(self) -> set[str]:
        return {rule.context for rule in self.rules}

    def raises_for(self, statement: DmlStatement) -> list[str]:
        """The primitive events one statement notifies, in registration
        (trigger-creation) order — the coalesced datagram's segment
        order."""
        return [p.event for p in self.primitives
                if (p.table, p.operation) ==
                (statement.table, statement.operation)]

    def describe(self) -> str:
        return (f"scenario seed={self.seed}: {len(self.tables)} tables, "
                f"{len(self.primitives)} primitive events, "
                f"{len(self.rules)} rules, "
                f"{len(self.statements)} statements")

    # -- serialization (the corpus format) ------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "tables": list(self.tables),
            "primitives": [asdict(p) for p in self.primitives],
            "rules": [asdict(r) for r in self.rules],
            "statements": [asdict(s) for s in self.statements],
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "Scenario":
        payload = json.loads(text)
        return cls(
            seed=payload["seed"],
            tables=tuple(payload["tables"]),
            primitives=tuple(
                PrimitiveSpec(**p) for p in payload["primitives"]),
            rules=tuple(RuleSpec(**r) for r in payload["rules"]),
            statements=tuple(
                DmlStatement(**s) for s in payload["statements"]),
        )

    def with_statements(self, statements) -> "Scenario":
        return replace(self, statements=tuple(statements))

    def with_rules(self, rules) -> "Scenario":
        return replace(self, rules=tuple(rules))

    def with_primitives(self, primitives) -> "Scenario":
        return replace(self, primitives=tuple(primitives))


# ---------------------------------------------------------------------------
# multi-site scenarios (the sharded-GED differential surface)


def qualified_leaf(event: str, site: str) -> str:
    """Internal qualified name of a site primitive in the global scope.

    Matches what :meth:`repro.ged.ShardedGed.import_event` produces for
    a trigger-registered event: ``difftest.dbo.<event>::<site>`` —
    Snoop's ``Eventname::AppId`` form over the agent's internal dotted
    name.
    """
    return f"{DATABASE}.{USER}.{event}::{site}"


@dataclass(frozen=True)
class SitePrimitiveSpec:
    """One primitive event at one site: a trigger on ``(table, operation)``.

    Event names are globally unique across sites (``p0``, ``p1``, ...)
    so shortened qualified names never collide.  Site primitives are
    always IMMEDIATE — the GED forwarding rule must run inline so the
    cross-site occurrence order equals the statement order.
    """

    site: str
    event: str
    table: str
    operation: str

    @property
    def trigger(self) -> str:
        return f"t_{self.event}"

    @property
    def qualified(self) -> str:
        """The event's qualified name in the global scope."""
        return qualified_leaf(self.event, self.site)

    def to_sql(self) -> str:
        return (f"create trigger {self.trigger} on {self.table} "
                f"for {self.operation} event {self.event} "
                f"IMMEDIATE as print '{self.event}'")


@dataclass(frozen=True)
class GlobalRuleSpec:
    """One global (cross-site) composite-event rule.

    Installed through the :class:`~repro.ged.ShardedGed` API rather than
    SQL (global rules live at the GED, not at any one site).  The first
    rule naming a global event carries its Snoop ``expression`` over
    qualified leaf names; extra rules leave it ``None``.
    """

    trigger: str
    event: str
    expression: str | None
    context: str
    coupling: str
    priority: int


@dataclass(frozen=True)
class SiteStatement:
    """One DML statement executed at a specific site."""

    site: str
    table: str
    operation: str
    sql: str


@dataclass(frozen=True)
class MultiSiteScenario:
    """One complete multi-site differential-test scenario.

    Every site runs its own agent over its own server with the same
    table schema; the statement stream is a seeded global interleaving
    of per-site DML.  Global rules compose qualified site events at the
    (sharded or single-coordinator) GED.
    """

    seed: int
    sites: tuple[str, ...]
    tables: tuple[str, ...]
    primitives: tuple[SitePrimitiveSpec, ...]
    rules: tuple[GlobalRuleSpec, ...]
    statements: tuple[SiteStatement, ...]

    def composite_events(self) -> list[str]:
        """Names of the global composite events this scenario defines."""
        return [rule.event for rule in self.rules
                if rule.expression is not None]

    def raises_for(self, statement: SiteStatement) -> list[str]:
        """The primitive events one statement notifies at its site, in
        trigger-creation order."""
        return [p.event for p in self.primitives
                if p.site == statement.site
                and (p.table, p.operation) ==
                (statement.table, statement.operation)]

    def describe(self) -> str:
        return (f"multisite scenario seed={self.seed}: "
                f"{len(self.sites)} sites, "
                f"{len(self.primitives)} site primitives, "
                f"{len(self.rules)} global rules, "
                f"{len(self.statements)} statements")

    # -- serialization (the corpus format) ------------------------------

    def to_json(self) -> str:
        return json.dumps({
            "seed": self.seed,
            "sites": list(self.sites),
            "tables": list(self.tables),
            "primitives": [asdict(p) for p in self.primitives],
            "rules": [asdict(r) for r in self.rules],
            "statements": [asdict(s) for s in self.statements],
        }, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "MultiSiteScenario":
        payload = json.loads(text)
        return cls(
            seed=payload["seed"],
            sites=tuple(payload["sites"]),
            tables=tuple(payload["tables"]),
            primitives=tuple(
                SitePrimitiveSpec(**p) for p in payload["primitives"]),
            rules=tuple(GlobalRuleSpec(**r) for r in payload["rules"]),
            statements=tuple(
                SiteStatement(**s) for s in payload["statements"]),
        )

    def with_statements(self, statements) -> "MultiSiteScenario":
        return replace(self, statements=tuple(statements))

    def with_rules(self, rules) -> "MultiSiteScenario":
        return replace(self, rules=tuple(rules))

    def with_primitives(self, primitives) -> "MultiSiteScenario":
        return replace(self, primitives=tuple(primitives))


def generate_multisite_scenario(seed: int, *, n_sites: int | None = None,
                                per_site_primitives: int = 2,
                                n_composites: int = 5,
                                n_extra_rules: int = 1,
                                n_statements: int = 36) -> MultiSiteScenario:
    """Generate the seeded multi-site scenario for one differential run.

    2–4 sites (seed-chosen unless pinned), globally unique primitive
    names, and global composites whose leaves are guaranteed to span at
    least two sites.  The first composite is always a CHRONICLE
    cross-site SEQ — the exact shape the ``seq-chronicle-newest``
    planted mutation corrupts, so the mutation-liveness check stays
    sensitive at every seed.  The remaining composites cycle through all
    four parameter contexts.
    """
    rng = random.Random(seed)
    if n_sites is None:
        n_sites = rng.choice([2, 3, 3, 4])
    sites = tuple(f"s{i}" for i in range(n_sites))
    tables = ("t0", "t1")
    operations = ("insert", "update", "delete")
    primitives: list[SitePrimitiveSpec] = []
    counter = 0
    for site in sites:
        for _ in range(per_site_primitives):
            primitives.append(SitePrimitiveSpec(
                site=site,
                event=f"p{counter}",
                table=rng.choice(tables),
                operation=rng.choice(operations),
            ))
            counter += 1
    by_site = {site: [p for p in primitives if p.site == site]
               for site in sites}

    def cross_site_pair() -> tuple[SitePrimitiveSpec, SitePrimitiveSpec]:
        first, second = rng.sample(sites, 2)
        return rng.choice(by_site[first]), rng.choice(by_site[second])

    rules: list[GlobalRuleSpec] = []
    for index in range(n_composites):
        a, b = cross_site_pair()
        if index == 0:
            expression = f"({a.qualified} SEQ {b.qualified})"
            context = "CHRONICLE"
        else:
            roll = rng.random()
            if roll < 0.4:
                expression = f"({a.qualified} SEQ {b.qualified})"
            elif roll < 0.7:
                expression = f"({a.qualified} AND {b.qualified})"
            elif roll < 0.85:
                closer = rng.choice(primitives)
                expression = (f"A*({a.qualified}, {b.qualified}, "
                              f"{closer.qualified})")
            else:
                other = rng.choice(primitives)
                expression = (f"(({a.qualified} OR {other.qualified}) "
                              f"SEQ {b.qualified})")
            context = PARAMETER_CONTEXTS[(index - 1) % len(PARAMETER_CONTEXTS)]
        rules.append(GlobalRuleSpec(
            trigger=f"gr{index}",
            event=f"g{index}",
            expression=expression,
            context=context,
            coupling=rng.choice(("IMMEDIATE", "DEFERRED")),
            priority=rng.choice([1, 1, 2]),
        ))
    defining = list(rules)
    for index in range(n_extra_rules):
        target = rng.choice(defining)
        rules.append(GlobalRuleSpec(
            trigger=f"gx{index}_{target.event}",
            event=target.event,
            expression=None,
            context=rng.choice(PARAMETER_CONTEXTS),
            coupling=rng.choice(("IMMEDIATE", "DEFERRED")),
            priority=1,
        ))
    streams = {
        site: list(random_dml_stream(
            rng, list(tables), max(1, n_statements // n_sites)))
        for site in sites
    }
    bag = [site for site in sites for _ in streams[site]]
    rng.shuffle(bag)
    statements = []
    for site in bag:
        statement = streams[site].pop(0)
        statements.append(SiteStatement(
            site=site, table=statement.table,
            operation=statement.operation, sql=statement.sql))
    return MultiSiteScenario(
        seed=seed,
        sites=sites,
        tables=tables,
        primitives=tuple(primitives),
        rules=tuple(rules),
        statements=tuple(statements),
    )


def generate_scenario(seed: int, *, n_tables: int = 2,
                      n_primitives: int = 5, n_composites: int = 5,
                      n_extra_rules: int = 2,
                      n_statements: int = 30) -> Scenario:
    """Generate the seeded scenario for one differential run.

    ``n_composites`` must be at least four so the cycled contexts cover
    every Snoop parameter context (:data:`PARAMETER_CONTEXTS`).
    """
    if n_composites < len(PARAMETER_CONTEXTS):
        raise ValueError("need at least four composites for full "
                         "parameter-context coverage")
    rng = random.Random(seed)
    tables = tuple(f"t{i}" for i in range(n_tables))
    operations = ("insert", "update", "delete")
    primitives = tuple(
        PrimitiveSpec(
            event=f"p{i}",
            table=rng.choice(tables),
            operation=rng.choice(operations),
            coupling=rng.choice(("IMMEDIATE", "DEFERRED")),
        )
        for i in range(n_primitives)
    )
    rules: list[RuleSpec] = []
    composites = random_rule_set(
        rng, [p.event for p in primitives], n_composites)
    for spec in composites:
        rules.append(RuleSpec(
            trigger=f"trg_{spec.event}",
            event=spec.event,
            expression=spec.expression,
            context=spec.context,
            coupling=spec.coupling,
            priority=spec.priority,
        ))
    for index in range(n_extra_rules):
        target = rng.choice(composites)
        rules.append(RuleSpec(
            trigger=f"xr{index}_{target.event}",
            event=target.event,
            expression=None,
            context=rng.choice(PARAMETER_CONTEXTS),
            coupling=rng.choice(("IMMEDIATE", "DEFERRED")),
            priority=rng.choice([1, 1, 2]),
        ))
    statements = tuple(random_dml_stream(rng, list(tables), n_statements))
    return Scenario(
        seed=seed,
        tables=tables,
        primitives=primitives,
        rules=tuple(rules),
        statements=statements,
    )
