"""Intentional LED semantics bugs for harness self-checks.

A differential harness that never fires is worse than none: these named
mutations patch one precise Snoop-semantics bug into the production LED
so CI can prove the harness both *catches* the divergence and *shrinks*
it to a small corpus reproduction (``tools/check_difftest.py
--mutate <name>``; documented in docs/TESTING.md).

Each mutation returns a zero-argument restore callable; always restore
in a ``finally`` — the patch is process-global.
"""

from __future__ import annotations

from typing import Callable

from repro.led import operators
from repro.led.rules import Context


def _mutate_seq_chronicle_newest() -> Callable[[], None]:
    """CHRONICLE SEQ pairs the *newest* initiator instead of the oldest.

    The kind of bug an event-graph optimisation could introduce: FIFO
    pairing silently becomes LIFO.  RECENT behaviour is identical when
    only one initiator is open, so only multi-initiator CHRONICLE
    windows expose it.
    """
    original = operators.SeqNode.process

    def mutated(self, role, occurrence, context):
        if role == operators.RIGHT and context is Context.CHRONICLE:
            state = self.state(context)
            candidates = [left for left in state[operators.LEFT]
                          if left.before(occurrence)]
            if not candidates:
                return
            partner = candidates[-1]          # BUG: should be [0]
            state[operators.LEFT].remove(partner)
            self.emit(self._compose([partner, occurrence]), context)
            return
        original(self, role, occurrence, context)

    operators.SeqNode.process = mutated

    def restore() -> None:
        operators.SeqNode.process = original

    return restore


def _mutate_and_cumulative_pair_only() -> Callable[[], None]:
    """CUMULATIVE AND forgets its accumulated occurrences.

    The detection carries only the closing pair instead of everything
    accumulated since the previous detection — accumulation state is
    still consumed, so the firing *count* stays right and only the
    constituent parameters betray the bug.
    """
    original = operators.AndNode.process

    def mutated(self, role, occurrence, context):
        if context is Context.CUMULATIVE:
            state = self.state(context)
            other = state[operators.RIGHT if role == operators.LEFT
                          else operators.LEFT]
            if other:
                partner = other[-1]           # BUG: drops accumulation
                state[operators.LEFT] = []
                state[operators.RIGHT] = []
                self.emit(self._compose([partner, occurrence]), context)
            else:
                state[role].append(occurrence)
            return
        original(self, role, occurrence, context)

    operators.AndNode.process = mutated

    def restore() -> None:
        operators.AndNode.process = original

    return restore


def _mutate_recent_consumes_initiator() -> Callable[[], None]:
    """RECENT SEQ consumes its initiator on detection.

    RECENT must *retain* the most recent initiator for later
    terminators; consuming it suppresses every detection after the
    first within one initiator window.
    """
    original = operators.SeqNode.process

    def mutated(self, role, occurrence, context):
        if role == operators.RIGHT and context is Context.RECENT:
            state = self.state(context)
            candidates = [left for left in state[operators.LEFT]
                          if left.before(occurrence)]
            if not candidates:
                return
            partner = candidates[-1]
            state[operators.LEFT].remove(partner)   # BUG: must retain
            self.emit(self._compose([partner, occurrence]), context)
            return
        original(self, role, occurrence, context)

    operators.SeqNode.process = mutated

    def restore() -> None:
        operators.SeqNode.process = original

    return restore


#: Registry of named mutations; each value arms the bug and returns the
#: restore callable.
MUTATIONS: dict[str, Callable[[], Callable[[], None]]] = {
    "seq-chronicle-newest": _mutate_seq_chronicle_newest,
    "and-cumulative-pair-only": _mutate_and_cumulative_pair_only,
    "seq-recent-consumes": _mutate_recent_consumes_initiator,
}


def apply_mutation(name: str) -> Callable[[], None]:
    """Arm a named mutation; returns the restore callable."""
    try:
        factory = MUTATIONS[name]
    except KeyError:
        raise KeyError(
            f"unknown mutation {name!r}; choose from "
            f"{sorted(MUTATIONS)}") from None
    return factory()
