"""Chaos differential runs: seeded fault schedules over scenarios.

Layering a :class:`~repro.faults.FaultPlan` over a differential run
splits the contract in two (match-or-fail-loudly; nothing silent):

- *semantics-preserving* schedules (latency-only faults, transient
  raises absorbed by the retry policies) must still match every oracle
  exactly — a divergence is a real bug;
- *lossy* schedules (dropped notifications, dropped raises, degraded
  commands) may diverge from the oracle, but only **loudly**: the
  injector must show the fault fired (or a command visibly degraded),
  and the two stack configurations (plan cache on/off) must still agree
  with each other, since the cache must be semantically invisible under
  any schedule.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.faults import (
    FaultPlan,
    POINT_ACTION_RUN,
    POINT_GATEWAY_PROCESS,
    POINT_LED_RAISE,
    POINT_NOTIFIER_DECODE,
)

from .compare import Divergence, compare_runs, compare_stack_runs
from .runner import run_reference, run_stack
from .scenario import Scenario

#: (name, lossy?, spec-builder) catalogue of chaos fault templates.
#: Preserving entries must be absorbed by the pipeline's retry/latency
#: tolerance; lossy entries visibly lose or refuse work.
_CATALOGUE = (
    ("gateway-latency", False,
     lambda rng: dict(point=POINT_GATEWAY_PROCESS, kind="latency",
                      latency=0.0, after=rng.randrange(3), times=3)),
    ("action-latency", False,
     lambda rng: dict(point=POINT_ACTION_RUN, kind="latency",
                      latency=0.0, after=rng.randrange(3), times=3)),
    ("notifier-transient-raise", False,
     lambda rng: dict(point=POINT_NOTIFIER_DECODE, kind="raise",
                      after=rng.randrange(5), times=1)),
    ("notifier-drop", True,
     lambda rng: dict(point=POINT_NOTIFIER_DECODE, kind="drop",
                      after=rng.randrange(8), times=1)),
    ("led-raise-drop", True,
     lambda rng: dict(point=POINT_LED_RAISE, kind="drop",
                      after=rng.randrange(8), times=1)),
    ("gateway-degrade", True,
     lambda rng: dict(point=POINT_GATEWAY_PROCESS, kind="raise",
                      after=rng.randrange(8), times=1, match="insert")),
)


@dataclass
class ChaosSchedule:
    """One seeded chaos schedule: which templates were armed."""

    seed: int
    names: list[str]
    lossy: bool

    def build_plan(self) -> FaultPlan:
        """A fresh :class:`FaultPlan` for this schedule (each stack run
        gets its own injector; same seed, same firing pattern)."""
        rng = random.Random(self.seed)
        chosen = {name for name in self.names}
        plan = FaultPlan(seed=self.seed)
        for name, _, build in _CATALOGUE:
            kwargs = build(rng)       # always draw: keeps rng aligned
            if name in chosen:
                plan.inject(**kwargs)
        return plan


def random_chaos_schedule(seed: int) -> ChaosSchedule:
    """Pick one or two fault templates from the catalogue, seeded."""
    rng = random.Random(seed)
    count = rng.choice((1, 1, 2))
    picks = rng.sample(range(len(_CATALOGUE)), count)
    names = [_CATALOGUE[i][0] for i in sorted(picks)]
    lossy = any(_CATALOGUE[i][1] for i in sorted(picks))
    return ChaosSchedule(seed=seed, names=names, lossy=lossy)


@dataclass
class ChaosReport:
    """Outcome of one chaos differential run."""

    schedule: ChaosSchedule
    divergences: list[Divergence] = field(default_factory=list)
    faults_injected: int = 0
    notifications_dropped: int = 0
    commands_degraded: int = 0

    @property
    def clean(self) -> bool:
        return not self.divergences


def run_chaos(scenario: Scenario, chaos_seed: int) -> ChaosReport:
    """One chaos differential run of a scenario.

    Executes the stack twice (plan cache on and off) under identical
    seeded fault schedules and applies the match-or-fail-loudly
    contract described in the module docstring.
    """
    schedule = random_chaos_schedule(chaos_seed)
    on = run_stack(scenario, plan_cache=True, faults=schedule.build_plan())
    off = run_stack(scenario, plan_cache=False,
                    faults=schedule.build_plan())
    report = ChaosReport(
        schedule=schedule,
        faults_injected=on.faults_injected,
        notifications_dropped=on.notifications_dropped,
        commands_degraded=len(on.degraded),
    )
    # The plan cache must be invisible under any schedule.
    report.divergences.extend(compare_stack_runs(on, off))
    reference = run_reference(scenario)
    oracle_divergences = compare_runs(scenario, on, reference)
    if not schedule.lossy:
        # Preserving schedules must match the oracle exactly.
        report.divergences.extend(oracle_divergences)
    elif oracle_divergences:
        # Lossy schedules may diverge — but never silently: demand
        # visible fault evidence for the loss.
        loud = (on.faults_injected > 0 or on.notifications_dropped > 0
                or on.degraded)
        if not loud:
            report.divergences.append(Divergence(
                "silent-divergence",
                f"outputs diverge from the oracle under schedule "
                f"{schedule.names} but no fault fired"))
            report.divergences.extend(oracle_divergences)
    return report
