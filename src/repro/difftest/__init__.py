"""Differential testing harness for the ECA agent's Snoop semantics.

Cross-checks three independent executions of the same seeded scenario —
the full gateway/agent/LED stack, the reference Snoop interpreter
(:mod:`repro.difftest.reference`), and the :mod:`repro.baselines`
polling/embedded oracles — then shrinks any divergence to a minimal
reproduction and replays it forever from ``tests/difftest/corpus/``.
A chaos mode layers seeded fault schedules and plan-cache on/off over
the same scenarios, asserting match-or-fail-loudly.

The multi-site twin extends the same discipline to the sharded GED:
seeded 2–4 site scenarios (:func:`generate_multisite_scenario`) run on
real per-site agents under a :class:`~repro.ged.ShardedGed` in both
deployment shapes (sharded and single-coordinator) and are diffed
against :class:`MultiSiteReference` — per-site reference Snoops plus a
global composer sharing no code with the GED.
"""

from .chaos import ChaosReport, ChaosSchedule, run_chaos
from .compare import (
    Divergence,
    compare_multisite_runs,
    compare_multisite_stack_runs,
    compare_runs,
    compare_stack_runs,
    render_report,
)
from .mutations import MUTATIONS, apply_mutation
from .reference import (
    MultiSiteReference,
    ReferenceDetector,
    ReferenceError,
)
from .runner import (
    MultiSiteRun,
    run_baselines,
    run_interleaved,
    run_multisite_reference,
    run_multisite_stack,
    run_reference,
    run_scenario,
    run_stack,
)
from .scenario import (
    GlobalRuleSpec,
    MultiSiteScenario,
    Scenario,
    SitePrimitiveSpec,
    SiteStatement,
    generate_multisite_scenario,
    generate_scenario,
)
from .shrink import (
    load_corpus,
    load_multisite_corpus,
    shrink_multisite_scenario,
    shrink_scenario,
    write_corpus,
)

__all__ = [
    "ChaosReport",
    "ChaosSchedule",
    "Divergence",
    "GlobalRuleSpec",
    "MUTATIONS",
    "MultiSiteReference",
    "MultiSiteRun",
    "MultiSiteScenario",
    "ReferenceDetector",
    "ReferenceError",
    "Scenario",
    "SitePrimitiveSpec",
    "SiteStatement",
    "apply_mutation",
    "compare_multisite_runs",
    "compare_multisite_stack_runs",
    "compare_runs",
    "compare_stack_runs",
    "generate_multisite_scenario",
    "generate_scenario",
    "load_corpus",
    "load_multisite_corpus",
    "render_report",
    "run_baselines",
    "run_chaos",
    "run_interleaved",
    "run_multisite_reference",
    "run_multisite_stack",
    "run_reference",
    "run_scenario",
    "run_stack",
    "shrink_multisite_scenario",
    "shrink_scenario",
    "write_corpus",
]
