"""Differential testing harness for the ECA agent's Snoop semantics.

Cross-checks three independent executions of the same seeded scenario —
the full gateway/agent/LED stack, the reference Snoop interpreter
(:mod:`repro.difftest.reference`), and the :mod:`repro.baselines`
polling/embedded oracles — then shrinks any divergence to a minimal
reproduction and replays it forever from ``tests/difftest/corpus/``.
A chaos mode layers seeded fault schedules and plan-cache on/off over
the same scenarios, asserting match-or-fail-loudly.
"""

from .chaos import ChaosReport, ChaosSchedule, run_chaos
from .compare import (
    Divergence,
    compare_runs,
    compare_stack_runs,
    render_report,
)
from .mutations import MUTATIONS, apply_mutation
from .reference import ReferenceDetector, ReferenceError
from .runner import (
    run_baselines,
    run_interleaved,
    run_reference,
    run_scenario,
    run_stack,
)
from .scenario import Scenario, generate_scenario
from .shrink import (
    load_corpus,
    shrink_scenario,
    write_corpus,
)

__all__ = [
    "ChaosReport",
    "ChaosSchedule",
    "Divergence",
    "MUTATIONS",
    "ReferenceDetector",
    "ReferenceError",
    "Scenario",
    "apply_mutation",
    "compare_runs",
    "compare_stack_runs",
    "generate_scenario",
    "load_corpus",
    "render_report",
    "run_baselines",
    "run_chaos",
    "run_interleaved",
    "run_reference",
    "run_scenario",
    "run_stack",
    "shrink_scenario",
    "write_corpus",
]
