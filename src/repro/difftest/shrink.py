"""Minimise a diverging scenario to a small reproduction.

Delta-debugging over the failing ``(rule set, statement stream)`` pair:
ddmin on the DML stream, then greedy pruning of rules and primitive
events (respecting expression references), repeated to a fixpoint.  The
``still_fails`` predicate re-runs the harness on each candidate, so the
result is the smallest scenario the search finds that *still diverges*.
Minimised scenarios are written to ``tests/difftest/corpus/`` as JSON
regression files that ``tests/difftest/test_corpus.py`` replays forever.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Callable

from repro.snoop.ast import EventExpr, EventName
from repro.snoop.parser import parse_event_expression

from .scenario import Scenario

#: Cap on harness re-runs during one shrink (each is three executions).
DEFAULT_BUDGET = 400


def _leaf_names(expression: str) -> set[str]:
    """Event names referenced by a Snoop expression."""
    names: set[str] = set()

    def walk(node: EventExpr) -> None:
        if isinstance(node, EventName):
            names.add(node.name)
            return
        for attr in vars(node).values():
            if isinstance(attr, EventExpr):
                walk(attr)

    walk(parse_event_expression(expression))
    return names


class _Budget:
    def __init__(self, limit: int):
        self.limit = limit
        self.spent = 0

    def take(self) -> bool:
        if self.spent >= self.limit:
            return False
        self.spent += 1
        return True


def _ddmin_statements(scenario: Scenario,
                      still_fails: Callable[[Scenario], bool],
                      budget: _Budget) -> Scenario:
    """Classic ddmin over the statement stream."""
    statements = list(scenario.statements)
    granularity = 2
    while len(statements) >= 2 and granularity <= len(statements):
        chunk = max(1, len(statements) // granularity)
        reduced = False
        start = 0
        while start < len(statements):
            candidate_statements = (
                statements[:start] + statements[start + chunk:])
            if not budget.take():
                return scenario.with_statements(statements)
            candidate = scenario.with_statements(candidate_statements)
            if still_fails(candidate):
                statements = candidate_statements
                reduced = True
                # Re-test from the same offset at the same granularity.
            else:
                start += chunk
        if not reduced:
            if granularity >= len(statements):
                break
            granularity = min(len(statements), granularity * 2)
    return scenario.with_statements(statements)


def _prune_rules(scenario: Scenario,
                 still_fails: Callable[[Scenario], bool],
                 budget: _Budget) -> Scenario:
    """Greedily drop rules, last-defined first (extra rules fall before
    defining rules; a defining rule goes only when nothing references
    its event)."""
    rules = list(scenario.rules)
    for index in range(len(rules) - 1, -1, -1):
        rule = rules[index]
        if rule.expression is not None:
            others = [r for r in rules if r is not rule]
            referenced = any(r.event == rule.event for r in others)
            referenced = referenced or any(
                rule.event in _leaf_names(r.expression)
                for r in others if r.expression is not None)
            if referenced:
                continue
        if not budget.take():
            break
        candidate = scenario.with_rules(
            rules[:index] + rules[index + 1:])
        if still_fails(candidate):
            rules = list(candidate.rules)
    return scenario.with_rules(rules)


def _prune_primitives(scenario: Scenario,
                      still_fails: Callable[[Scenario], bool],
                      budget: _Budget) -> Scenario:
    """Drop primitive events no remaining composite expression needs."""
    primitives = list(scenario.primitives)
    needed: set[str] = set()
    for rule in scenario.rules:
        if rule.expression is not None:
            needed |= _leaf_names(rule.expression)
    for index in range(len(primitives) - 1, -1, -1):
        if primitives[index].event in needed:
            continue
        if not budget.take():
            break
        candidate = scenario.with_primitives(
            primitives[:index] + primitives[index + 1:])
        if still_fails(candidate):
            primitives = list(candidate.primitives)
    return scenario.with_primitives(primitives)


def shrink_scenario(scenario: Scenario,
                    still_fails: Callable[[Scenario], bool],
                    budget: int = DEFAULT_BUDGET) -> Scenario:
    """Minimise a diverging scenario.

    ``still_fails`` must return True while the candidate still exhibits
    the divergence.  The original scenario is returned unchanged if the
    predicate rejects it (not reproducible — never "shrink" into a
    different bug).
    """
    tracker = _Budget(budget)
    if not still_fails(scenario):
        return scenario
    current = scenario
    while True:
        before = (len(current.statements), len(current.rules),
                  len(current.primitives))
        current = _ddmin_statements(current, still_fails, tracker)
        current = _prune_rules(current, still_fails, tracker)
        current = _prune_primitives(current, still_fails, tracker)
        after = (len(current.statements), len(current.rules),
                 len(current.primitives))
        if after == before or tracker.spent >= tracker.limit:
            return current


def _prune_multisite_primitives(scenario, still_fails, budget: _Budget):
    """Drop site primitives no remaining global expression needs.

    The multi-site analogue of :func:`_prune_primitives`: global
    expressions reference *qualified* leaf names, so the needed-set is
    matched against each spec's ``qualified`` property."""
    primitives = list(scenario.primitives)
    needed: set[str] = set()
    for rule in scenario.rules:
        if rule.expression is not None:
            needed |= _leaf_names(rule.expression)
    for index in range(len(primitives) - 1, -1, -1):
        if primitives[index].qualified in needed:
            continue
        if not budget.take():
            break
        candidate = scenario.with_primitives(
            primitives[:index] + primitives[index + 1:])
        if still_fails(candidate):
            primitives = list(candidate.primitives)
    return scenario.with_primitives(primitives)


def shrink_multisite_scenario(scenario, still_fails,
                              budget: int = DEFAULT_BUDGET):
    """Minimise a diverging multi-site scenario.

    Same fixpoint loop as :func:`shrink_scenario` — ddmin on the global
    statement interleaving, then rule and site-primitive pruning — over
    a :class:`~repro.difftest.scenario.MultiSiteScenario`.  (Sites
    themselves are not pruned: an unused site is just an idle agent, and
    keeping the site list stable keeps the reproduction's partition
    deterministic.)
    """
    tracker = _Budget(budget)
    if not still_fails(scenario):
        return scenario
    current = scenario
    while True:
        before = (len(current.statements), len(current.rules),
                  len(current.primitives))
        current = _ddmin_statements(current, still_fails, tracker)
        current = _prune_rules(current, still_fails, tracker)
        current = _prune_multisite_primitives(current, still_fails, tracker)
        after = (len(current.statements), len(current.rules),
                 len(current.primitives))
        if after == before or tracker.spent >= tracker.limit:
            return current


def load_multisite_corpus(directory: str | Path):
    """All multi-site corpus scenarios in a directory, sorted by name.

    The multi-site corpus lives in its own subdirectory
    (``tests/difftest/corpus/multisite/``) so the single-site replay
    never tries to parse a multi-site file."""
    from .scenario import MultiSiteScenario

    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [(path, MultiSiteScenario.from_json(path.read_text()))
            for path in sorted(directory.glob("*.json"))]


def corpus_filename(scenario: Scenario) -> str:
    """Deterministic corpus file name: seed + content digest."""
    digest = hashlib.sha256(
        scenario.to_json().encode()).hexdigest()[:8]
    return f"seed{scenario.seed}_{digest}.json"


def write_corpus(scenario: Scenario, directory: str | Path) -> Path:
    """Persist a minimised scenario as a corpus regression file."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / corpus_filename(scenario)
    path.write_text(scenario.to_json() + "\n")
    return path


def load_corpus(directory: str | Path) -> list[tuple[Path, Scenario]]:
    """All corpus scenarios in a directory, sorted by file name."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [(path, Scenario.from_json(path.read_text()))
            for path in sorted(directory.glob("*.json"))]
