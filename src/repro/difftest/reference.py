"""Reference interpreter for Snoop composite-event semantics.

A second, independent implementation of the paper's Section 2 event
algebra used as the oracle of the differential-testing harness.  It is
deliberately small and direct: every parameter context is implemented as
a literal transcription of its definition (Chakravarthy et al., *Snoop*;
paper Section 2.1/2.2), with none of the production concerns of
:mod:`repro.led` — no locks, no observability hooks, no timers, no
incremental optimisation.  The only code shared with the production
detector is the Snoop *parser* (:mod:`repro.snoop`), i.e. the syntax
front end; all detection state machines here are separate.

Scope: the non-temporal operators ``OR``, ``AND``, ``SEQ``, ``NOT``,
``A`` and ``A*``.  The temporal operators (``P``, ``P*``, ``PLUS``)
need a clock and are exercised by the dedicated LED temporal suite
instead (``tests/led/test_temporal.py``); asking this interpreter for
one raises :class:`ReferenceError`.

The four parameter contexts, as implemented here (paper Section 2.2):

RECENT
    A terminator pairs with the *most recent* initiator; initiators are
    never consumed, only displaced by a newer occurrence of their event.
CHRONICLE
    Initiator/terminator pairs form in FIFO order; the oldest initiator
    pairs and is consumed.
CONTINUOUS
    Every open initiator window is terminated separately: one detection
    per open initiator, all of them consumed.
CUMULATIVE
    All occurrences accumulated since the previous detection combine
    into a single detection and are consumed together.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field

from repro.snoop.ast import (
    And,
    Aperiodic,
    AperiodicStar,
    EventExpr,
    EventName,
    Not,
    Or,
    Seq,
)
from repro.snoop.parser import parse_event_expression

#: Parameter contexts in canonical (enum-definition) order; plain strings
#: so the interpreter never imports :mod:`repro.led`.
CONTEXTS = ("RECENT", "CHRONICLE", "CONTINUOUS", "CUMULATIVE")

#: Coupling modes the reference models.  DETACHED actions run on worker
#: threads in the real stack and are excluded from differential runs.
COUPLINGS = ("IMMEDIATE", "DEFERRED")


class ReferenceError(Exception):
    """Definition error in the reference interpreter."""


@dataclass(frozen=True)
class RefOccurrence:
    """One event occurrence in the reference model.

    ``start``/``end`` are ``(time, seq)`` pairs spanning the occurrence
    interval; ``prims`` holds the ``(time, seq, name)`` triples of the
    primitive constituents in chronological order — exactly the
    parameters a Snoop context collects.
    """

    event_name: str
    start: tuple[float, int]
    end: tuple[float, int]
    prims: tuple[tuple[float, int, str], ...]

    def before(self, other: "RefOccurrence") -> bool:
        """Interval order: this occurrence ends before the other starts."""
        return self.end < other.start

    def seqs(self) -> tuple[int, ...]:
        """Sequence numbers of the primitive constituents."""
        return tuple(seq for _, seq, _ in self.prims)


def ref_primitive(name: str, time: float, seq: int) -> RefOccurrence:
    """A primitive occurrence: a point interval, its own constituent."""
    point = (time, seq)
    return RefOccurrence(name, point, point, ((time, seq, name),))


def ref_compose(name: str, parts: list[RefOccurrence]) -> RefOccurrence:
    """Combine part occurrences into a composite occurrence of ``name``.

    The interval spans all parts; constituents are the parts' primitives
    sorted chronologically (ties keep encounter order, which cannot
    happen for distinct primitives since ``seq`` is unique).
    """
    prims = [prim for part in parts for prim in part.prims]
    prims.sort(key=lambda prim: (prim[0], prim[1]))
    return RefOccurrence(
        name,
        min(part.start for part in parts),
        max(part.end for part in parts),
        tuple(prims),
    )


@dataclass(frozen=True)
class RefRule:
    """An ECA rule attached to an event in the reference model."""

    name: str
    event_name: str
    context: str
    coupling: str
    priority: int = 1


@dataclass(frozen=True)
class RefDetection:
    """A recorded detection: ``context`` is ``None`` for primitives."""

    event_name: str
    context: str | None
    occurrence: RefOccurrence


@dataclass(frozen=True)
class RefFiring:
    """A recorded rule firing (the reference runs no real actions)."""

    rule_name: str
    event_name: str
    context: str
    coupling: str
    occurrence: RefOccurrence


# ---------------------------------------------------------------------------
# graph nodes

#: When one occurrence feeds several roles of a parent, terminator-like
#: roles close existing windows before initiator-like roles open new ones.
_ROLE_ORDER = {"terminator": 0, "right": 1, "middle": 2, "left": 3,
               "initiator": 4}


class _Node:
    """Base node: context activation and upward propagation."""

    def __init__(self, interp: "ReferenceDetector", name: str):
        self.interp = interp
        self.name = name
        self.parents: list[tuple["_Node", str]] = []
        self.active: list[str] = []

    def children(self) -> list["_Node"]:
        return []

    def attach(self, parent: "_Node", role: str) -> None:
        self.parents.append((parent, role))
        self.parents.sort(key=lambda entry: _ROLE_ORDER.get(entry[1], 5))
        for context in parent.active:
            self.activate(context)

    def activate(self, context: str) -> None:
        if context in self.active:
            return
        self.active.append(context)
        self.active.sort(key=CONTEXTS.index)
        for child in self.children():
            child.activate(context)

    def emit(self, occurrence: RefOccurrence, context: str) -> None:
        """Publish a detection: record it, fire rules, feed parents."""
        self.interp._note(self.name, context, occurrence)
        self.interp._dispatch(self.name, occurrence, context)
        for parent, role in self.parents:
            if context in parent.active:
                parent.process(role, occurrence, context)

    def process(self, role: str, occurrence: RefOccurrence,
                context: str) -> None:
        raise NotImplementedError


class _PrimitiveNode(_Node):
    """A leaf event raised from the explicit occurrence stream."""

    def on_raise(self, occurrence: RefOccurrence) -> None:
        self.interp._dispatch(self.name, occurrence, None)
        for parent, role in self.parents:
            for context in CONTEXTS:
                if context in parent.active:
                    parent.process(role, occurrence, context)


class _OperatorNode(_Node):
    """Base for operator nodes: per-context state, role-keyed children."""

    def __init__(self, interp, name, children: dict[str, _Node]):
        super().__init__(interp, name)
        self._children = children
        self._state: dict[str, object] = {}
        for role, child in children.items():
            child.attach(self, role)

    def children(self) -> list[_Node]:
        return list(self._children.values())

    def state(self, context: str):
        if context not in self._state:
            self._state[context] = self._new_state()
        return self._state[context]

    def _new_state(self):
        raise NotImplementedError


class _OrNode(_OperatorNode):
    """``E1 OR E2``: either constituent occurs — stateless relabeling,
    identical in every context (a disjunction never pairs occurrences)."""

    def _new_state(self):
        return None

    def process(self, role, occurrence, context):
        self.emit(ref_compose(self.name, [occurrence]), context)


class _AndNode(_OperatorNode):
    """``E1 AND E2``: both constituents, in either order.

    Either side initiates; the other side's arrival terminates.  State is
    the pending unpaired occurrences of each side.
    """

    def _new_state(self):
        return {"left": [], "right": []}

    def process(self, role, occurrence, context):
        state = self.state(context)
        mine, other = state[role], state["right" if role == "left" else "left"]
        if context == "RECENT":
            # Pair with the other side's most recent occurrence (kept, not
            # consumed); this occurrence becomes its side's most recent.
            if other:
                self.emit(ref_compose(self.name, [other[-1], occurrence]),
                          context)
            state[role] = [occurrence]
        elif context == "CHRONICLE":
            # FIFO pairing: the oldest waiting partner is consumed.
            if other:
                self.emit(ref_compose(self.name, [other.pop(0), occurrence]),
                          context)
            else:
                mine.append(occurrence)
        elif context == "CONTINUOUS":
            # Terminate every open window of the other side, one detection
            # per partner, all consumed.
            if other:
                partners, other[:] = list(other), []
                for partner in partners:
                    self.emit(
                        ref_compose(self.name, [partner, occurrence]), context)
            else:
                mine.append(occurrence)
        else:  # CUMULATIVE
            # Everything accumulated on both sides joins one detection.
            if other:
                parts = state["left"] + state["right"] + [occurrence]
                state["left"], state["right"] = [], []
                self.emit(ref_compose(self.name, parts), context)
            else:
                mine.append(occurrence)


def _pair_initiators(initiators: list[RefOccurrence],
                     terminator: RefOccurrence, context: str):
    """Pair a terminator with the open initiators that precede it.

    Returns ``(groups, consumed)``: each group composes with the
    terminator into one detection; consumed initiators leave the open
    list.  This is the common initiator/terminator discipline of SEQ and
    NOT (paper Section 2.2):

    - RECENT: the most recent initiator pairs and is *retained*;
    - CHRONICLE: the oldest initiator pairs and is consumed;
    - CONTINUOUS: every initiator pairs separately, all consumed;
    - CUMULATIVE: all initiators pair together, all consumed.
    """
    candidates = [init for init in initiators if init.before(terminator)]
    if not candidates:
        return [], []
    if context == "RECENT":
        return [[candidates[-1]]], []
    if context == "CHRONICLE":
        return [[candidates[0]]], [candidates[0]]
    if context == "CONTINUOUS":
        return [[init] for init in candidates], list(candidates)
    return [candidates], list(candidates)  # CUMULATIVE


class _SeqNode(_OperatorNode):
    """``E1 SEQ E2``: E1 strictly before E2 in interval order."""

    def _new_state(self):
        return {"initiators": []}

    def process(self, role, occurrence, context):
        state = self.state(context)
        if role == "left":
            if context == "RECENT":
                state["initiators"] = [occurrence]
            else:
                state["initiators"].append(occurrence)
            return
        groups, consumed = _pair_initiators(
            state["initiators"], occurrence, context)
        for init in consumed:
            state["initiators"].remove(init)
        for group in groups:
            self.emit(ref_compose(self.name, group + [occurrence]), context)


class _NotNode(_OperatorNode):
    """``NOT(E1, E2, E3)``: E3 after E1 with no E2 inside the window.

    The forbidden middle event cancels every window it falls into; the
    terminator then pairs with surviving initiators exactly like SEQ.
    """

    def _new_state(self):
        return {"initiators": []}

    def process(self, role, occurrence, context):
        state = self.state(context)
        if role == "initiator":
            if context == "RECENT":
                state["initiators"] = [occurrence]
            else:
                state["initiators"].append(occurrence)
            return
        if role == "middle":
            state["initiators"] = [
                init for init in state["initiators"]
                if not init.before(occurrence)
            ]
            return
        groups, consumed = _pair_initiators(
            state["initiators"], occurrence, context)
        for init in consumed:
            state["initiators"].remove(init)
        for group in groups:
            self.emit(ref_compose(self.name, group + [occurrence]), context)


class _AperiodicNode(_OperatorNode):
    """``A(E1, E2, E3)``: signal each E2 inside an open E1..E3 window.

    The middle event terminates each *signal* (pairing per context, but
    nothing is consumed — the window stays open); the closing event only
    ends windows and never signals.
    """

    def _new_state(self):
        return {"initiators": []}

    def process(self, role, occurrence, context):
        state = self.state(context)
        if role == "initiator":
            if context == "RECENT":
                state["initiators"] = [occurrence]
            else:
                state["initiators"].append(occurrence)
            return
        if role == "middle":
            # A signal pairs per context but consumes nothing: the
            # window stays open for further signals.
            groups, _ = _pair_initiators(
                state["initiators"], occurrence, context)
            for group in groups:
                self.emit(
                    ref_compose(self.name, group + [occurrence]), context)
            return
        # Closing event: consume windows, no detection.
        _, consumed = _pair_initiators(
            state["initiators"], occurrence, context)
        if context == "RECENT":
            # RECENT retains at most one initiator; a closing event that
            # follows it empties the window list.
            if any(init.before(occurrence) for init in state["initiators"]):
                state["initiators"] = []
        else:
            for init in consumed:
                state["initiators"].remove(init)


class _AperiodicStarNode(_OperatorNode):
    """``A*(E1, E2, E3)``: accumulate E2s, fire once when E3 closes.

    Fires at the terminator even when no middle occurrence was collected
    (the accumulated set is then empty), matching Snoop.
    """

    def _new_state(self):
        return {"windows": []}

    def process(self, role, occurrence, context):
        state = self.state(context)
        windows = state["windows"]
        if role == "initiator":
            window = (occurrence, [])
            if context == "RECENT":
                state["windows"] = [window]
            else:
                windows.append(window)
            return
        if role == "middle":
            for initiator, collected in windows:
                if initiator.before(occurrence):
                    collected.append(occurrence)
            return
        candidates = [
            window for window in windows if window[0].before(occurrence)
        ]
        if not candidates:
            return
        if context == "RECENT":
            initiator, collected = candidates[-1]
            state["windows"] = []
            self.emit(ref_compose(
                self.name, [initiator, *collected, occurrence]), context)
        elif context == "CHRONICLE":
            window = candidates[0]
            windows.remove(window)
            self.emit(ref_compose(
                self.name, [window[0], *window[1], occurrence]), context)
        elif context == "CONTINUOUS":
            for window in candidates:
                windows.remove(window)
            for initiator, collected in candidates:
                self.emit(ref_compose(
                    self.name, [initiator, *collected, occurrence]), context)
        else:  # CUMULATIVE
            parts: list[RefOccurrence] = []
            for window in candidates:
                windows.remove(window)
                parts.append(window[0])
                parts.extend(window[1])
            parts.append(occurrence)
            self.emit(ref_compose(self.name, parts), context)


# ---------------------------------------------------------------------------
# the interpreter


class ReferenceDetector:
    """The reference oracle: event definitions, rules, explicit raises.

    Usage mirrors the LED's public surface so the differential runner can
    drive both identically::

        ref = ReferenceDetector()
        ref.define_primitive("addStk")
        ref.define_primitive("delStk")
        ref.define_composite("c", "addStk AND delStk")
        ref.add_rule("r", "c", context="RECENT", coupling="IMMEDIATE")
        ref.raise_event("addStk")
        ref.raise_event("delStk")
        ref.flush_deferred()
        ref.detections, ref.firings   # the comparison surfaces
    """

    def __init__(self) -> None:
        self.events: dict[str, _Node] = {}
        self.rules: dict[str, RefRule] = {}
        self._rules_by_event: dict[str, list[RefRule]] = {}
        self._deferred: list[tuple[RefRule, RefOccurrence, str]] = []
        self._seq = itertools.count(1)
        self._anon = itertools.count(1)
        #: every primitive raise (context ``None``) and composite
        #: detection, in propagation order
        self.detections: list[RefDetection] = []
        #: every rule firing, in execution order (deferred ones appear
        #: when flushed)
        self.firings: list[RefFiring] = []

    # -- definitions ----------------------------------------------------

    def define_primitive(self, name: str) -> None:
        if name in self.events:
            raise ReferenceError(f"event '{name}' already exists")
        self.events[name] = _PrimitiveNode(self, name)

    def define_composite(self, name: str,
                         expression: EventExpr | str) -> None:
        if name in self.events:
            raise ReferenceError(f"event '{name}' already exists")
        expr = (parse_event_expression(expression)
                if isinstance(expression, str) else expression)
        node = self._build(expr, top_name=name)
        if isinstance(node, _PrimitiveNode) or not isinstance(node, _OperatorNode):
            raise ReferenceError(
                f"expression for '{name}' must use at least one operator")
        self.events[name] = node

    def _build(self, expr: EventExpr, top_name: str | None = None) -> _Node:
        name = top_name or f"_refanon{next(self._anon)}"
        if isinstance(expr, EventName):
            node = self.events.get(expr.name)
            if node is None:
                raise ReferenceError(f"event '{expr.name}' is not defined")
            return node
        if isinstance(expr, Or):
            return _OrNode(self, name, {
                "left": self._build(expr.left),
                "right": self._build(expr.right)})
        if isinstance(expr, And):
            return _AndNode(self, name, {
                "left": self._build(expr.left),
                "right": self._build(expr.right)})
        if isinstance(expr, Seq):
            return _SeqNode(self, name, {
                "left": self._build(expr.left),
                "right": self._build(expr.right)})
        if isinstance(expr, Not):
            return _NotNode(self, name, {
                "initiator": self._build(expr.initiator),
                "middle": self._build(expr.event),
                "terminator": self._build(expr.terminator)})
        if isinstance(expr, Aperiodic):
            return _AperiodicNode(self, name, {
                "initiator": self._build(expr.initiator),
                "middle": self._build(expr.event),
                "terminator": self._build(expr.terminator)})
        if isinstance(expr, AperiodicStar):
            return _AperiodicStarNode(self, name, {
                "initiator": self._build(expr.initiator),
                "middle": self._build(expr.event),
                "terminator": self._build(expr.terminator)})
        raise ReferenceError(
            f"temporal operator {type(expr).__name__} is outside the "
            "differential-test scope (see tests/led/test_temporal.py)")

    def add_rule(self, name: str, event_name: str, *,
                 context: str = "RECENT", coupling: str = "IMMEDIATE",
                 priority: int = 1) -> None:
        if name in self.rules:
            raise ReferenceError(f"rule '{name}' already exists")
        node = self.events.get(event_name)
        if node is None:
            raise ReferenceError(f"event '{event_name}' is not defined")
        if context not in CONTEXTS:
            raise ReferenceError(f"unknown context {context!r}")
        if coupling not in COUPLINGS:
            raise ReferenceError(
                f"coupling {coupling!r} is outside the differential-test "
                "scope (DETACHED actions are asynchronous)")
        rule = RefRule(name, event_name, context, coupling, priority)
        self.rules[name] = rule
        bucket = self._rules_by_event.setdefault(event_name, [])
        bucket.append(rule)
        bucket.sort(key=lambda r: (-r.priority, r.name))
        node.activate(context)

    # -- the occurrence stream ------------------------------------------

    def raise_event(self, name: str, time: float = 0.0) -> RefOccurrence:
        """Raise one primitive occurrence at ``time``."""
        node = self.events.get(name)
        if node is None:
            raise ReferenceError(f"event '{name}' is not defined")
        if not isinstance(node, _PrimitiveNode):
            raise ReferenceError(f"'{name}' is a composite event")
        occurrence = ref_primitive(name, time, next(self._seq))
        self._note(name, None, occurrence)
        node.on_raise(occurrence)
        return occurrence

    def flush_deferred(self) -> None:
        """Fire queued DEFERRED rules, in queue order (statement end)."""
        queued, self._deferred = self._deferred, []
        for rule, occurrence, context in queued:
            self.firings.append(RefFiring(
                rule.name, rule.event_name, context, rule.coupling,
                occurrence))

    # -- recording ------------------------------------------------------

    def _note(self, event_name: str, context: str | None,
              occurrence: RefOccurrence) -> None:
        self.detections.append(RefDetection(event_name, context, occurrence))

    def _dispatch(self, event_name: str, occurrence: RefOccurrence,
                  context: str | None) -> None:
        for rule in self._rules_by_event.get(event_name, ()):
            if context is not None and rule.context != context:
                continue
            effective = context if context is not None else rule.context
            if rule.coupling == "IMMEDIATE":
                self.firings.append(RefFiring(
                    rule.name, rule.event_name, effective, rule.coupling,
                    occurrence))
            else:  # DEFERRED
                self._deferred.append((rule, occurrence, effective))


# ---------------------------------------------------------------------------
# the multi-site twin


class MultiSiteReference:
    """Paper-literal multi-site oracle: per-site Snoops plus a composer.

    The model of the sharded GED's semantics, sharing *no* code with
    :mod:`repro.ged`: one :class:`ReferenceDetector` per site interprets
    that site's local primitive stream, and a single *global composer*
    :class:`ReferenceDetector` re-raises every imported occurrence under
    its qualified name (``db.user.event::site``).  The composer's own
    raise counter plays the router's global sequence: raises arrive in
    exactly the global statement order, so its sequence numbers equal
    the GED's ``gseq`` one-for-one — which is what makes the comparison
    surfaces directly diffable.

    Occurrence numbers (``vNo``) are counted per ``(site, event)`` —
    the same per-primitive ordinal the agent's ``SysPrimitiveEvent``
    catalog row carries into each notification datagram.
    """

    def __init__(self, sites) -> None:
        #: per-site reference interpreters, keyed by site name
        self.sites: dict[str, ReferenceDetector] = {
            site: ReferenceDetector() for site in sites}
        #: the global composer over qualified primitive names
        self.composer = ReferenceDetector()
        self._qualified: dict[tuple[str, str], str] = {}
        self._vno: dict[tuple[str, str], int] = {}
        #: the global primitive stream: (qualified name, global seq, vNo)
        self.primitives: list[tuple[str, int, int]] = []

    def define_site_primitive(self, site: str, event: str) -> None:
        """Register a primitive event at one site's local interpreter."""
        self.sites[site].define_primitive(event)

    def import_event(self, site: str, event: str, qualified: str) -> None:
        """Import a site primitive into the composer under its
        qualified global name."""
        self.composer.define_primitive(qualified)
        self._qualified[(site, event)] = qualified

    def define_global_event(self, name: str, expression: str) -> None:
        """Define a global composite over qualified leaf names."""
        self.composer.define_composite(name, expression)

    def add_global_rule(self, name: str, event_name: str, *,
                        context: str = "RECENT",
                        coupling: str = "IMMEDIATE",
                        priority: int = 1) -> None:
        """Attach a global rule at the composer."""
        self.composer.add_rule(name, event_name, context=context,
                               coupling=coupling, priority=priority)

    def raise_site_event(self, site: str, event: str) -> RefOccurrence | None:
        """Raise one primitive at its site; propagate to the composer.

        Returns the composer's occurrence (``None`` when the event was
        never imported into the global scope).
        """
        self.sites[site].raise_event(event)
        qualified = self._qualified.get((site, event))
        if qualified is None:
            return None
        key = (site, event)
        self._vno[key] = self._vno.get(key, 0) + 1
        occurrence = self.composer.raise_event(qualified)
        self.primitives.append(
            (qualified, occurrence.seqs()[0], self._vno[key]))
        return occurrence

    def flush_deferred(self) -> None:
        """Statement end: flush the composer, then every site."""
        self.composer.flush_deferred()
        for detector in self.sites.values():
            detector.flush_deferred()
