"""Cross-check the three executions of a scenario.

Every check yields typed :class:`Divergence` records naming the first
mismatch, so a failing seed prints an actionable report before the
shrinker takes over.  The comparison surfaces, in checking order:

- ``primitive-stream``: the LED's primitive raises vs the raises the
  scenario's trigger registrations predict;
- ``detections``: named composite detections (event, context,
  constituent sequence numbers), in propagation order;
- ``firings``: rule firings (rule, event, context, coupling,
  constituents), in execution order — deferred ones at flush time;
- ``audit``: the firing multiset materialised by rule actions;
- ``tables``: monitored tables after the stream vs the passive shadow
  replay (the transparency property);
- ``polling`` / ``embedded``: the baseline oracles' views of the same
  final state.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from .runner import (
    BaselineRun,
    MultiSiteRun,
    ReferenceRun,
    ScenarioRun,
    StackRun,
)
from .scenario import Scenario


@dataclass(frozen=True)
class Divergence:
    """One cross-check failure."""

    kind: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.kind}] {self.detail}"


def _diff_sequences(kind: str, label_a: str, seq_a, label_b: str,
                    seq_b) -> Divergence | None:
    """First-mismatch diff of two ordered comparison surfaces."""
    if seq_a == seq_b:
        return None
    for index, (item_a, item_b) in enumerate(zip(seq_a, seq_b)):
        if item_a != item_b:
            return Divergence(kind, (
                f"first mismatch at index {index}: "
                f"{label_a} {item_a!r} vs {label_b} {item_b!r} "
                f"(lengths {len(seq_a)}/{len(seq_b)})"))
    shorter, longer = ((label_a, seq_a), (label_b, seq_b))
    if len(seq_a) > len(seq_b):
        shorter, longer = longer, shorter
    index = len(shorter[1])
    return Divergence(kind, (
        f"{shorter[0]} ends at {index} items; {longer[0]} continues "
        f"with {longer[1][index]!r} (lengths {len(seq_a)}/{len(seq_b)})"))


def compare_runs(scenario: Scenario, stack: StackRun,
                 reference: ReferenceRun,
                 baseline: BaselineRun | None = None) -> list[Divergence]:
    """All divergences between one stack run and the oracles."""
    divergences: list[Divergence] = []
    for kind, a, b in (
        ("primitive-stream", stack.primitives, reference.primitives),
        ("detections", stack.detections, reference.detections),
        ("firings", stack.firings, reference.firings),
    ):
        diff = _diff_sequences(kind, "stack", a, "reference", b)
        if diff is not None:
            divergences.append(diff)
    if stack.audit != reference.audit:
        divergences.append(Divergence("audit", (
            f"stack audit {dict(stack.audit)} vs predicted "
            f"{dict(reference.audit)}")))
    if baseline is not None:
        divergences.extend(_compare_baseline(scenario, stack, baseline))
    return divergences


def _compare_baseline(scenario: Scenario, stack: StackRun,
                      baseline: BaselineRun) -> list[Divergence]:
    divergences: list[Divergence] = []
    for table in scenario.tables:
        mine = stack.tables.get(table, [])
        shadow = baseline.tables.get(table, [])
        if mine != shadow:
            divergences.append(Divergence("tables", (
                f"table {table}: stack {mine} vs shadow replay {shadow} "
                "(active mediation is not transparent)")))
    # Polling oracle: accumulating its inferred change stream from an
    # empty start must land exactly on the shadow's final state.
    for table in scenario.tables:
        net: Counter = Counter()
        for changed_table, kind, row in baseline.polling_changes:
            if changed_table != table:
                continue
            if kind == "insert":
                net[row] += 1
            else:
                net[row] -= 1
        final = Counter(tuple(row) for row in baseline.tables.get(table, []))
        net = +net
        if net != final:
            divergences.append(Divergence("polling", (
                f"table {table}: polling-accumulated state {dict(net)} vs "
                f"final {dict(final)}")))
    for table, count in baseline.embedded_counts.items():
        expected = len(baseline.tables.get(table, []))
        if count != expected:
            divergences.append(Divergence("embedded", (
                f"table {table}: embedded check saw {count} rows, "
                f"final state has {expected}")))
    return divergences


def compare_stack_runs(a: StackRun, b: StackRun,
                       label_a: str = "cache-on",
                       label_b: str = "cache-off") -> list[Divergence]:
    """Two stack runs of the same scenario must be indistinguishable on
    every semantic surface (the plan cache / fault-free chaos contract)."""
    divergences: list[Divergence] = []
    for kind, seq_a, seq_b in (
        ("primitive-stream", a.primitives, b.primitives),
        ("detections", a.detections, b.detections),
        ("firings", a.firings, b.firings),
        ("degraded", a.degraded, b.degraded),
    ):
        diff = _diff_sequences(f"{kind}:{label_a}/{label_b}",
                               label_a, seq_a, label_b, seq_b)
        if diff is not None:
            divergences.append(diff)
    if a.audit != b.audit:
        divergences.append(Divergence(f"audit:{label_a}/{label_b}", (
            f"{label_a} {dict(a.audit)} vs {label_b} {dict(b.audit)}")))
    if a.tables != b.tables:
        divergences.append(Divergence(f"tables:{label_a}/{label_b}", (
            f"{label_a} {a.tables} vs {label_b} {b.tables}")))
    return divergences


def _compare_multisite(a: MultiSiteRun, b: MultiSiteRun, label_a: str,
                       label_b: str) -> list[Divergence]:
    """Shared multi-site surface diff: one global primitive stream,
    per-event detections, per-rule firings, and the firing multiset."""
    divergences: list[Divergence] = []
    diff = _diff_sequences(f"ms-primitive-stream:{label_a}/{label_b}",
                           label_a, a.primitives, label_b, b.primitives)
    if diff is not None:
        divergences.append(diff)
    for event in sorted(set(a.detections) | set(b.detections)):
        diff = _diff_sequences(
            f"ms-detections[{event}]:{label_a}/{label_b}", label_a,
            a.detections.get(event, []), label_b,
            b.detections.get(event, []))
        if diff is not None:
            divergences.append(diff)
    for rule in sorted(set(a.firings) | set(b.firings)):
        diff = _diff_sequences(
            f"ms-firings[{rule}]:{label_a}/{label_b}", label_a,
            a.firings.get(rule, []), label_b, b.firings.get(rule, []))
        if diff is not None:
            divergences.append(diff)
    if a.audit != b.audit:
        divergences.append(Divergence(
            f"ms-audit:{label_a}/{label_b}",
            f"{label_a} {dict(a.audit)} vs {label_b} {dict(b.audit)}"))
    return divergences


def compare_multisite_runs(stack: MultiSiteRun, reference: MultiSiteRun,
                           label: str = "stack") -> list[Divergence]:
    """All divergences between one multi-site stack run and the twin.

    The surfaces are deployment-shape independent (see
    :class:`~repro.difftest.runner.MultiSiteRun`), so the same check
    applies to the sharded and the single-coordinator shape.
    """
    return _compare_multisite(stack, reference, label, "reference")


def compare_multisite_stack_runs(a: MultiSiteRun, b: MultiSiteRun,
                                 label_a: str = "sharded",
                                 label_b: str = "single-site",
                                 ) -> list[Divergence]:
    """Two deployment shapes of the same multi-site scenario must be
    semantically indistinguishable (the sharding-invisibility contract).
    The partition map is deliberately not compared — it is the one
    surface that legitimately differs."""
    return _compare_multisite(a, b, label_a, label_b)


def render_report(scenario: Scenario,
                  divergences: list[Divergence]) -> str:
    """Human-readable divergence report for CLI/CI output."""
    lines = [scenario.describe()]
    lines += [f"  {divergence}" for divergence in divergences]
    return "\n".join(lines)
