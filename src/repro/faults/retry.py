"""Bounded retry with exponential backoff and a per-call time budget.

The resilience half of the robustness layer: :class:`RetryPolicy` wraps
the pipeline's two externally-observable side-effect paths — persistence
writes and notification delivery — so that *transient* failures (in this
repo, faults injected by :mod:`repro.faults.injector`; in the paper's
deployment, dropped connections to the SQL server) are absorbed instead
of surfacing to clients.

Retries are observable: each re-attempt increments the
``retries_attempted`` counter and each give-up increments
``retry_exhausted``, both labeled by operation, on whatever
:class:`~repro.obs.MetricsRegistry` the caller passes.  Metric lookups
happen only on the failure path, so a successful first attempt costs
nothing.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable

from .injector import FaultError, TransientFaultError

__all__ = ["RetryExhaustedError", "RetryPolicy"]


class RetryExhaustedError(FaultError):
    """Every allowed attempt failed (or the time budget ran out).

    Carries the last underlying error as ``last_error`` and the number of
    attempts made as ``attempts``; ``__cause__`` is also set so the chain
    shows up in tracebacks.
    """

    def __init__(self, operation: str, attempts: int,
                 last_error: BaseException):
        super().__init__(
            f"retry exhausted for {operation!r} after {attempts} "
            f"attempt{'s' if attempts != 1 else ''}: {last_error}")
        self.operation = operation
        self.attempts = attempts
        self.last_error = last_error


@dataclass
class RetryPolicy:
    """Bounded retries + exponential backoff + a total time budget.

    Args:
        max_attempts: total tries, including the first (1 = no retries).
        backoff: delay before the first retry, in seconds (0 = none —
            the deterministic default used in tests).
        multiplier: backoff growth factor per retry.
        timeout: total time budget across all attempts, in seconds;
            once exceeded, no further attempt starts and the call fails
            with :class:`RetryExhaustedError` (``None`` = unbounded).
        retry_on: exception types considered transient.
        sleeper / clock: injectable ``time.sleep`` / ``time.monotonic``
            substitutes, so tests control both time axes.
    """

    max_attempts: int = 3
    backoff: float = 0.0
    multiplier: float = 2.0
    timeout: float | None = None
    retry_on: tuple[type[BaseException], ...] = (TransientFaultError,)
    sleeper: Callable[[float], None] = field(default=time.sleep, repr=False)
    clock: Callable[[], float] = field(default=time.monotonic, repr=False)

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")

    def call(self, fn: Callable, *args, operation: str = "call",
             metrics=None,
             retry_if: Callable[[BaseException], bool] | None = None,
             **kwargs):
        """Run ``fn(*args, **kwargs)``, retrying transient failures.

        Non-transient exceptions propagate unchanged on the first raise.
        A transient failure is retried until the attempt or time budget
        is exhausted, then wrapped in :class:`RetryExhaustedError`.
        ``retry_if`` further restricts which transient exceptions are
        retried (e.g. only faults injected at one specific point).
        """
        start = self.clock()
        delay = self.backoff
        attempts = 0
        while True:
            attempts += 1
            try:
                return fn(*args, **kwargs)
            except self.retry_on as exc:
                if retry_if is not None and not retry_if(exc):
                    raise
                out_of_attempts = attempts >= self.max_attempts
                out_of_time = (
                    self.timeout is not None
                    and self.clock() - start >= self.timeout
                )
                if out_of_attempts or out_of_time:
                    if metrics is not None:
                        metrics.counter(
                            "retry_exhausted",
                            "Operations that failed every allowed retry",
                            ("operation",)).labels(operation).inc()
                    raise RetryExhaustedError(
                        operation, attempts, exc) from exc
                if metrics is not None:
                    metrics.counter(
                        "retries_attempted",
                        "Retries performed after transient failures",
                        ("operation",)).labels(operation).inc()
                if delay > 0:
                    self.sleeper(delay)
                    delay *= self.multiplier
