"""Deterministic, seedable fault injection for the ECA Agent pipeline.

The paper's reliability claim — the agent can crash and recover because
every event and rule is persisted in native system tables — is only a
claim until failures can be *produced on demand*.  This module provides
the harness: a :class:`FaultPlan` describes which faults to inject where,
and a :class:`FaultInjector` armed with the plan is consulted at named
**injection points** wired into the gateway, notifier, persistent
manager, action handler, and LED raise path.

Everything is deterministic: trigger-after-N-calls mode fires on an exact
call index, and probability mode draws from a ``random.Random`` seeded by
the plan, so a chaos run replays identically for a given seed.

Injection points (the contract; see docs/ARCHITECTURE.md):

========================  ====================================================
``gateway.process``       routing of every non-admin client command
``notifier.decode``       start of :meth:`EventNotifier.on_payload`
``persistence.execute``   every :meth:`PersistentManager.execute` statement
``action.run``            start of :meth:`ActionHandler.run_action`
``led.raise``             start of :meth:`LocalEventDetector.raise_event`
========================  ====================================================

Fault kinds:

- ``RAISE`` — raise :class:`TransientFaultError` (retryable);
- ``LATENCY`` — sleep for ``latency`` seconds, then continue;
- ``DROP`` — return :data:`Directive.DROP`; the call site abandons the
  operation (a lost notification, a lost write);
- ``CRASH`` — raise :class:`SimulatedCrash`, a ``BaseException`` no
  pipeline handler catches: the agent process "dies" mid-operation.
"""

from __future__ import annotations

import enum
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import ReproError

__all__ = [
    "Directive",
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "SimulatedCrash",
    "TransientFaultError",
    "POINT_ACTION_RUN",
    "POINT_GATEWAY_PROCESS",
    "POINT_LED_RAISE",
    "POINT_NOTIFIER_DECODE",
    "POINT_PERSISTENCE_EXECUTE",
]

#: Canonical injection point names (call sites and plans share these).
POINT_GATEWAY_PROCESS = "gateway.process"
POINT_NOTIFIER_DECODE = "notifier.decode"
POINT_PERSISTENCE_EXECUTE = "persistence.execute"
POINT_ACTION_RUN = "action.run"
POINT_LED_RAISE = "led.raise"


class FaultError(ReproError):
    """Root of injected-fault errors (never raised by real components)."""

    def __init__(self, message: str, point: str = ""):
        super().__init__(message)
        self.point = point


class TransientFaultError(FaultError):
    """An injected *retryable* failure — the retry policies treat it the
    way they would treat a dropped connection or a lock timeout."""


class SimulatedCrash(BaseException):
    """An injected agent crash.

    Deliberately a ``BaseException``: no ``except Exception`` handler in
    the pipeline may swallow it, exactly as no handler survives a real
    process death.  Chaos tests catch it at the harness level, discard
    the "crashed" agent, and drive :meth:`EcaAgent.recover` on a fresh
    instance attached to the surviving server.
    """

    def __init__(self, point: str = "", detail: str = ""):
        super().__init__(f"simulated crash at {point or '<unknown>'}"
                         + (f" ({detail})" if detail else ""))
        self.point = point
        self.detail = detail


class FaultKind(str, enum.Enum):
    """What an armed fault does when it fires."""

    RAISE = "raise"
    LATENCY = "latency"
    DROP = "drop"
    CRASH = "crash"


class Directive(enum.Enum):
    """What the call site should do after consulting the injector."""

    CONTINUE = "continue"
    DROP = "drop"


@dataclass
class FaultSpec:
    """One armed fault: where, what, and when it fires.

    Trigger modes (mutually exclusive):

    - **after-N**: starts firing on the ``after``-th *matching* call at
      the point (0 = the first) and keeps firing on consecutive matching
      calls until ``times`` is exhausted — so a transient fault can
      outlast any chosen number of retries;
    - **probability**: when ``probability`` is set, fires independently on
      each matching call with that probability, drawn from the plan's
      seeded generator.

    ``times`` bounds how often the spec fires in total (0 = unlimited);
    ``match`` restricts firing to calls whose detail string (the SQL
    statement, payload, or event name at the call site) contains it,
    case-insensitively.
    """

    point: str
    kind: FaultKind = FaultKind.RAISE
    after: int = 0
    probability: float | None = None
    times: int = 1
    latency: float = 0.0
    message: str = ""
    match: str | None = None

    def __post_init__(self):
        self.kind = FaultKind(self.kind)
        if self.probability is not None and not 0.0 <= self.probability <= 1.0:
            raise ValueError(
                f"fault probability must be in [0, 1], got {self.probability}")
        if self.after < 0:
            raise ValueError(f"fault 'after' must be >= 0, got {self.after}")
        if self.times < 0:
            raise ValueError(f"fault 'times' must be >= 0, got {self.times}")


@dataclass(frozen=True)
class InjectedFault:
    """Log entry for one fault that actually fired."""

    point: str
    kind: FaultKind
    detail: str
    call_index: int


class FaultPlan:
    """A seedable, ordered collection of :class:`FaultSpec` entries.

    Build one declaratively (``FaultPlan(seed=7, specs=[...])``) or with
    the fluent :meth:`inject` helper::

        plan = FaultPlan(seed=7)
        plan.inject("persistence.execute", kind="raise", times=2)
        plan.inject("notifier.decode", kind="drop", probability=0.2)
    """

    def __init__(self, seed: int = 0, specs: list[FaultSpec] | None = None):
        self.seed = seed
        self.specs: list[FaultSpec] = list(specs or [])

    def inject(self, point: str, **kwargs) -> FaultSpec:
        """Arm one fault at a point; returns the created spec."""
        spec = FaultSpec(point=point, **kwargs)
        self.specs.append(spec)
        return spec

    def for_point(self, point: str) -> list[FaultSpec]:
        """The specs armed at one injection point, in arming order."""
        return [spec for spec in self.specs if spec.point == point]


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at the pipeline's injection points.

    Thread-safe: call counters and the seeded generator are guarded by a
    lock (notifications and detached actions fire from worker threads).
    Cheap when idle: call sites guard on :attr:`enabled`, and ``fire`` on
    a point with no armed specs is one dict lookup.

    Args:
        plan: the fault plan; ``None`` means a permanently-disabled
            injector (the agent's default).
        metrics: optional :class:`~repro.obs.MetricsRegistry`; fired
            faults increment the ``faults_injected`` counter, labeled by
            point and kind, while metrics are enabled.
        sleeper: substitute for ``time.sleep`` (tests pass a recorder so
            latency faults cost no wall time).
    """

    def __init__(self, plan: FaultPlan | None = None, metrics=None,
                 sleeper: Callable[[float], None] = time.sleep):
        self.plan = plan or FaultPlan()
        self.armed = True
        self.sleeper = sleeper
        self.injected: list[InjectedFault] = []
        self._lock = threading.Lock()
        self._rng = random.Random(self.plan.seed)
        self._by_point: dict[str, list[FaultSpec]] = {}
        for spec in self.plan.specs:
            self._by_point.setdefault(spec.point, []).append(spec)
        #: per-spec counts of matching calls seen and faults fired
        self._seen: dict[int, int] = {}
        self._fired: dict[int, int] = {}
        self._m_faults = None
        if metrics is not None:
            self.attach_metrics(metrics)

    # ------------------------------------------------------------------

    @property
    def enabled(self) -> bool:
        """Whether any fault can still fire (armed and plan non-empty)."""
        return self.armed and bool(self.plan.specs)

    def disarm(self) -> None:
        """Stop injecting without forgetting the plan (``set agent faults
        off``)."""
        self.armed = False

    def arm(self) -> None:
        """Re-enable injection after :meth:`disarm`."""
        self.armed = True

    def attach_metrics(self, metrics) -> None:
        """Register the ``faults_injected`` counter on a registry."""
        self._m_faults = metrics.counter(
            "faults_injected",
            "Faults fired by the injection harness", ("point", "kind"))

    @property
    def injected_count(self) -> int:
        """Total faults fired so far (independent of the metrics flag)."""
        return len(self.injected)

    # ------------------------------------------------------------------

    def fire(self, point: str, detail: str = "") -> Directive:
        """Consult the plan at one injection point.

        Returns :data:`Directive.DROP` when the call site must abandon
        the operation; raises for RAISE/CRASH kinds; sleeps for LATENCY
        kinds; otherwise returns :data:`Directive.CONTINUE`.
        """
        if not self.armed:
            return Directive.CONTINUE
        specs = self._by_point.get(point)
        if not specs:
            return Directive.CONTINUE
        directive = Directive.CONTINUE
        lowered = detail.lower()
        for spec in specs:
            spec_id = id(spec)
            with self._lock:
                if spec.times and self._fired.get(spec_id, 0) >= spec.times:
                    continue
                if spec.match is not None and spec.match.lower() not in lowered:
                    continue
                seen = self._seen.get(spec_id, 0)
                self._seen[spec_id] = seen + 1
                if spec.probability is not None:
                    should_fire = self._rng.random() < spec.probability
                else:
                    should_fire = seen >= spec.after
                if not should_fire:
                    continue
                self._fired[spec_id] = self._fired.get(spec_id, 0) + 1
                self.injected.append(InjectedFault(
                    point, spec.kind, detail[:120], seen))
            if self._m_faults is not None:
                self._m_faults.labels(point, spec.kind.value).inc()
            if spec.kind is FaultKind.CRASH:
                raise SimulatedCrash(point, detail[:120])
            if spec.kind is FaultKind.RAISE:
                raise TransientFaultError(
                    spec.message
                    or f"injected transient fault at {point}", point=point)
            if spec.kind is FaultKind.LATENCY:
                self.sleeper(spec.latency)
            elif spec.kind is FaultKind.DROP:
                directive = Directive.DROP
        return directive

    # ------------------------------------------------------------------

    def describe(self) -> list[dict[str, object]]:
        """One summary dict per armed spec (for ``show agent faults``)."""
        rows: list[dict[str, object]] = []
        with self._lock:
            for spec in self.plan.specs:
                rows.append({
                    "point": spec.point,
                    "kind": spec.kind.value,
                    "mode": (f"p={spec.probability}"
                             if spec.probability is not None
                             else f"after={spec.after}"),
                    "times": spec.times or "unlimited",
                    "match": spec.match or "",
                    "seen": self._seen.get(id(spec), 0),
                    "fired": self._fired.get(id(spec), 0),
                })
        return rows


#: A process-default disabled injector, shared by components that were
#: constructed without one (``enabled`` is always False: no specs).
DISABLED = FaultInjector()
