"""``repro.faults`` — fault injection and retry: the robustness layer.

Two halves:

- :mod:`repro.faults.injector` — a deterministic, seedable chaos harness
  (:class:`FaultPlan` / :class:`FaultInjector`) consulted at named
  injection points wired through the ECA Agent pipeline;
- :mod:`repro.faults.retry` — :class:`RetryPolicy`, bounded retries with
  exponential backoff and a time budget, applied to persistence writes
  and notification delivery.

Together they turn the paper's recovery claim ("the agent can crash and
restart because rule state lives in native system tables") into an
enforced, injectable contract: chaos tests crash the agent at exact
pipeline positions and assert that :meth:`EcaAgent.recover` restores a
consistent rule base.  Operator-facing documentation: docs/OPERATORS.md;
per-component failure modes: docs/ARCHITECTURE.md.
"""

from __future__ import annotations

from .injector import (
    DISABLED,
    Directive,
    FaultError,
    FaultInjector,
    FaultKind,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    POINT_ACTION_RUN,
    POINT_GATEWAY_PROCESS,
    POINT_LED_RAISE,
    POINT_NOTIFIER_DECODE,
    POINT_PERSISTENCE_EXECUTE,
    SimulatedCrash,
    TransientFaultError,
)
from .retry import RetryExhaustedError, RetryPolicy

__all__ = [
    "DISABLED",
    "Directive",
    "FaultError",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "RetryExhaustedError",
    "RetryPolicy",
    "SimulatedCrash",
    "TransientFaultError",
    "POINT_ACTION_RUN",
    "POINT_GATEWAY_PROCESS",
    "POINT_LED_RAISE",
    "POINT_NOTIFIER_DECODE",
    "POINT_PERSISTENCE_EXECUTE",
]
