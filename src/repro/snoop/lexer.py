"""Lexer for Snoop event expressions."""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SnoopParseError

NAME = "NAME"
TIME = "TIME"      # contents of a [time string], without the brackets
LPAREN = "LPAREN"
RPAREN = "RPAREN"
COMMA = "COMMA"
PIPE = "PIPE"      # OR alias
CARET = "CARET"    # AND alias
SEMI = "SEMI"      # SEQ alias
STAR = "STAR"      # the '*' of A*/P*
COLON = "COLON"    # the ':parameter' separator after a time string
EOF = "EOF"

_SINGLE = {
    "(": LPAREN,
    ")": RPAREN,
    ",": COMMA,
    "|": PIPE,
    "^": CARET,
    ";": SEMI,
    "*": STAR,
    ":": COLON,
}


@dataclass(frozen=True)
class SnoopToken:
    """One token with its character position."""

    kind: str
    value: str
    position: int


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in "_$#"


def tokenize(text: str) -> list[SnoopToken]:
    """Tokenize a Snoop expression string."""
    tokens: list[SnoopToken] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "[":
            end = text.find("]", index)
            if end == -1:
                raise SnoopParseError("unterminated [time string]", index)
            tokens.append(SnoopToken(TIME, text[index + 1 : end].strip(), index))
            index = end + 1
            continue
        if _is_name_start(char):
            start = index
            while index < length and _is_name_char(text[index]):
                index += 1
            # Absorb dotted qualification (db.user.event) and the
            # Event:Object / Event::AppId forms of the Snoop BNF, but only
            # when the separator is immediately adjacent to name text.
            while index < length and text[index] in ".:":
                separator = text[index]
                run = index
                while run < length and text[run] == separator:
                    run += 1
                if run - index > 2 or run >= length or not _is_name_start(text[run]):
                    break
                index = run
                while index < length and _is_name_char(text[index]):
                    index += 1
            tokens.append(SnoopToken(NAME, text[start:index], start))
            continue
        kind = _SINGLE.get(char)
        if kind is not None:
            tokens.append(SnoopToken(kind, char, index))
            index += 1
            continue
        raise SnoopParseError(f"unexpected character {char!r}", index)
    tokens.append(SnoopToken(EOF, "", length))
    return tokens
