"""``repro.snoop`` — the Snoop event specification language.

Snoop (Chakravarthy & Mishra) is the composite-event language Sentinel —
and therefore the ECA Agent — uses (paper Section 2.1).  This package
implements its grammar:

- binary operators ``OR``, ``AND``, ``SEQ`` (with the symbolic aliases
  ``|``, ``^``, ``;`` the paper's Example 2 uses);
- the ternary operators ``NOT(E1, E2, E3)``, ``A(E1, E2, E3)`` and
  ``A*(E1, E2, E3)`` — in all three, ``E1`` is the *initiator*, ``E3`` the
  *terminator*, and ``E2`` the constituent that must (A/A*) or must not
  (NOT) occur in between;
- the temporal operators ``P``/``P*`` (periodic) and ``E PLUS [t]``;
- ``[time string]`` literals such as ``[10 sec]`` or ``[1 hour 30 min]``;
- parenthesized expressions and (possibly qualified) event names.

Parsing yields an AST of :class:`~repro.snoop.ast.EventExpr` nodes that the
LED (:mod:`repro.led`) compiles into an event graph.
"""

from .ast import (
    And,
    Aperiodic,
    AperiodicStar,
    EventExpr,
    EventName,
    Not,
    Or,
    Periodic,
    PeriodicStar,
    Plus,
    Seq,
    TimeSpec,
    walk,
)
from .errors import SnoopParseError
from .parser import parse_event_expression, parse_time_spec

__all__ = [
    "And",
    "Aperiodic",
    "AperiodicStar",
    "EventExpr",
    "EventName",
    "Not",
    "Or",
    "Periodic",
    "PeriodicStar",
    "Plus",
    "Seq",
    "SnoopParseError",
    "TimeSpec",
    "parse_event_expression",
    "parse_time_spec",
    "walk",
]
