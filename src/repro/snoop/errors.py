"""Errors for the Snoop language front-end."""

from __future__ import annotations

from repro.errors import ReproError


class SnoopError(ReproError):
    """Root of Snoop-related errors."""


class SnoopParseError(SnoopError):
    """The event expression text could not be parsed."""

    def __init__(self, message: str, position: int | None = None):
        suffix = f" (at position {position})" if position is not None else ""
        super().__init__(f"{message}{suffix}")
        self.position = position
