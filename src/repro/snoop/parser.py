"""Recursive-descent parser for Snoop event expressions.

Implements the BNF of the paper's Section 2.1 with the operator
precedence the grammar encodes: ``OR`` binds loosest, then ``AND``, then
``SEQ``; ``PLUS`` and the ternary operators are tightest.  Symbolic
aliases accepted: ``|`` (OR), ``^`` (AND, as used in Example 2's
``delStk ^ addStk``), ``;`` (SEQ).
"""

from __future__ import annotations

import re

from .ast import (
    And,
    Aperiodic,
    AperiodicStar,
    EventExpr,
    EventName,
    Not,
    Or,
    Periodic,
    PeriodicStar,
    Plus,
    Seq,
    TimeSpec,
)
from .errors import SnoopParseError
from .lexer import (
    CARET,
    COLON,
    COMMA,
    EOF,
    LPAREN,
    NAME,
    PIPE,
    RPAREN,
    SEMI,
    STAR,
    TIME,
    SnoopToken,
    tokenize,
)

_UNIT_SECONDS = {
    "ms": 0.001,
    "msec": 0.001,
    "millisecond": 0.001,
    "milliseconds": 0.001,
    "s": 1.0,
    "sec": 1.0,
    "secs": 1.0,
    "second": 1.0,
    "seconds": 1.0,
    "m": 60.0,
    "min": 60.0,
    "mins": 60.0,
    "minute": 60.0,
    "minutes": 60.0,
    "h": 3600.0,
    "hr": 3600.0,
    "hrs": 3600.0,
    "hour": 3600.0,
    "hours": 3600.0,
    "d": 86400.0,
    "day": 86400.0,
    "days": 86400.0,
}

_TIME_PAIR = re.compile(r"(\d+(?:\.\d+)?)\s*([A-Za-z]+)")

#: Operator keywords that cannot be plain event names when followed by '('.
_TERNARY_KEYWORDS = {"NOT", "A", "P"}


def parse_time_spec(text: str) -> TimeSpec:
    """Parse the contents of a ``[time string]`` into a :class:`TimeSpec`.

    >>> parse_time_spec("1 hour 30 min").seconds
    5400.0
    """
    stripped = text.strip()
    if not stripped:
        raise SnoopParseError("empty time string")
    total = 0.0
    consumed = 0
    for match in _TIME_PAIR.finditer(stripped):
        amount, unit = match.groups()
        factor = _UNIT_SECONDS.get(unit.lower())
        if factor is None:
            raise SnoopParseError(f"unknown time unit {unit!r}")
        total += float(amount) * factor
        consumed += len(match.group(0))
    leftover = re.sub(r"\s+", "", stripped)
    matched = "".join(
        re.sub(r"\s+", "", match.group(0)) for match in _TIME_PAIR.finditer(stripped)
    )
    if leftover != matched:
        raise SnoopParseError(f"cannot parse time string {text!r}")
    if total <= 0:
        raise SnoopParseError("time string must be positive")
    return TimeSpec(total)


class _SnoopParser:
    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    @property
    def current(self) -> SnoopToken:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> SnoopToken:
        return self.tokens[min(self.pos + ahead, len(self.tokens) - 1)]

    def advance(self) -> SnoopToken:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def expect(self, kind: str, what: str) -> SnoopToken:
        if self.current.kind != kind:
            raise SnoopParseError(
                f"expected {what}, found {self.current.value!r}",
                self.current.position,
            )
        return self.advance()

    def at_keyword(self, word: str) -> bool:
        token = self.current
        return token.kind == NAME and token.value.upper() == word

    # grammar ----------------------------------------------------------

    def parse(self) -> EventExpr:
        expr = self.parse_or()
        if self.current.kind != EOF:
            raise SnoopParseError(
                f"unexpected trailing input {self.current.value!r}",
                self.current.position,
            )
        return expr

    def parse_or(self) -> EventExpr:
        left = self.parse_and()
        while self.at_keyword("OR") or self.current.kind == PIPE:
            self.advance()
            left = Or(left, self.parse_and())
        return left

    def parse_and(self) -> EventExpr:
        left = self.parse_seq()
        while self.at_keyword("AND") or self.current.kind == CARET:
            self.advance()
            left = And(left, self.parse_seq())
        return left

    def parse_seq(self) -> EventExpr:
        left = self.parse_plus()
        while self.at_keyword("SEQ") or self.current.kind == SEMI:
            self.advance()
            left = Seq(left, self.parse_plus())
        return left

    def parse_plus(self) -> EventExpr:
        expr = self.parse_primary()
        while self.at_keyword("PLUS"):
            self.advance()
            time_token = self.expect(TIME, "a [time string] after PLUS")
            expr = Plus(expr, parse_time_spec(time_token.value))
        return expr

    def parse_primary(self) -> EventExpr:
        token = self.current

        if token.kind == LPAREN:
            self.advance()
            expr = self.parse_or()
            self.expect(RPAREN, "')'")
            return expr

        if token.kind == NAME:
            word = token.value.upper()
            if word in _TERNARY_KEYWORDS and self._ternary_follows():
                return self.parse_ternary(word)
            self.advance()
            return EventName(token.value)

        raise SnoopParseError(
            f"expected an event expression, found {token.value!r}",
            token.position,
        )

    def _ternary_follows(self) -> bool:
        """NOT/A/P act as operators only when '(' (or '*(') follows."""
        nxt = self.peek()
        if nxt.kind == LPAREN:
            return True
        return nxt.kind == STAR and self.peek(2).kind == LPAREN

    def parse_ternary(self, word: str) -> EventExpr:
        self.advance()  # the keyword
        starred = False
        if self.current.kind == STAR:
            starred = True
            self.advance()
        if word == "NOT" and starred:
            raise SnoopParseError("NOT has no '*' variant", self.current.position)
        self.expect(LPAREN, "'('")
        initiator = self.parse_or()
        self.expect(COMMA, "','")

        if word == "P":
            time_token = self.expect(TIME, "a [time string]")
            period = parse_time_spec(time_token.value)
            parameter = None
            if self.current.kind == COLON:
                self.advance()
                parameter = self.expect(NAME, "a parameter name").value
            self.expect(COMMA, "','")
            terminator = self.parse_or()
            self.expect(RPAREN, "')'")
            if starred:
                return PeriodicStar(initiator, period, terminator, parameter)
            return Periodic(initiator, period, terminator, parameter)

        middle = self.parse_or()
        self.expect(COMMA, "','")
        terminator = self.parse_or()
        self.expect(RPAREN, "')'")
        if word == "NOT":
            return Not(initiator, middle, terminator)
        if starred:
            return AperiodicStar(initiator, middle, terminator)
        return Aperiodic(initiator, middle, terminator)


def parse_event_expression(text: str) -> EventExpr:
    """Parse Snoop text into an expression tree.

    >>> parse_event_expression("delStk ^ addStk").describe()
    '(delStk AND addStk)'
    """
    return _SnoopParser(text).parse()
