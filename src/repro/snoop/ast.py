"""AST nodes for Snoop event expressions.

Every node knows how to render itself back to canonical Snoop text
(:meth:`EventExpr.describe`), which the agent uses when persisting
composite-event definitions to ``SysCompositeEvent.eventDescribe``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator


class EventExpr:
    """Base class of all Snoop expression nodes."""

    __slots__ = ()

    def describe(self) -> str:
        """Canonical textual form of the expression."""
        raise NotImplementedError


@dataclass(frozen=True)
class TimeSpec:
    """A relative ``[time string]``, e.g. ``[1 hour 30 min]``.

    Stored as total seconds; :meth:`describe` renders a canonical form.
    """

    seconds: float

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise ValueError("time specification must be positive")

    def describe(self) -> str:
        remaining = self.seconds
        parts: list[str] = []
        for label, size in (("hour", 3600.0), ("min", 60.0)):
            count = int(remaining // size)
            if count:
                parts.append(f"{count} {label}")
                remaining -= count * size
        if remaining or not parts:
            if remaining == int(remaining):
                parts.append(f"{int(remaining)} sec")
            else:
                parts.append(f"{remaining:g} sec")
        return f"[{' '.join(parts)}]"


@dataclass(frozen=True)
class EventName(EventExpr):
    """A reference to a named (primitive or composite) event.

    ``name`` may be qualified, e.g. ``sentineldb.sharma.addStk``.
    """

    name: str

    def describe(self) -> str:
        return self.name


@dataclass(frozen=True)
class Or(EventExpr):
    """``E1 OR E2`` (alias ``|``): either constituent occurs."""

    left: EventExpr
    right: EventExpr

    def describe(self) -> str:
        return f"({self.left.describe()} OR {self.right.describe()})"


@dataclass(frozen=True)
class And(EventExpr):
    """``E1 AND E2`` (alias ``^``): both occur, in any order."""

    left: EventExpr
    right: EventExpr

    def describe(self) -> str:
        return f"({self.left.describe()} AND {self.right.describe()})"


@dataclass(frozen=True)
class Seq(EventExpr):
    """``E1 SEQ E2`` (alias ``;``): E1 then, strictly later, E2."""

    left: EventExpr
    right: EventExpr

    def describe(self) -> str:
        return f"({self.left.describe()} SEQ {self.right.describe()})"


@dataclass(frozen=True)
class Not(EventExpr):
    """``NOT(E1, E2, E3)``: E3 occurs after E1 with no E2 in between.

    ``initiator`` starts the interval, ``event`` must *not* occur inside
    it, and ``terminator`` closes the interval and signals the occurrence.
    """

    initiator: EventExpr
    event: EventExpr
    terminator: EventExpr

    def describe(self) -> str:
        return (
            f"NOT({self.initiator.describe()}, {self.event.describe()}, "
            f"{self.terminator.describe()})"
        )


@dataclass(frozen=True)
class Aperiodic(EventExpr):
    """``A(E1, E2, E3)``: signal each E2 inside the E1..E3 interval."""

    initiator: EventExpr
    event: EventExpr
    terminator: EventExpr

    def describe(self) -> str:
        return (
            f"A({self.initiator.describe()}, {self.event.describe()}, "
            f"{self.terminator.describe()})"
        )


@dataclass(frozen=True)
class AperiodicStar(EventExpr):
    """``A*(E1, E2, E3)``: fire once at E3 with all E2s accumulated."""

    initiator: EventExpr
    event: EventExpr
    terminator: EventExpr

    def describe(self) -> str:
        return (
            f"A*({self.initiator.describe()}, {self.event.describe()}, "
            f"{self.terminator.describe()})"
        )


@dataclass(frozen=True)
class Periodic(EventExpr):
    """``P(E1, [t], E3)``: fire every ``t`` inside the E1..E3 interval.

    ``parameter`` carries the optional ``:param`` annotation of the BNF
    (``P(E1, [t]:x, E3)``) naming the value to collect at each tick.
    """

    initiator: EventExpr
    period: TimeSpec
    terminator: EventExpr
    parameter: str | None = None

    def describe(self) -> str:
        time_part = self.period.describe()
        if self.parameter:
            time_part = f"{time_part}:{self.parameter}"
        return (
            f"P({self.initiator.describe()}, {time_part}, "
            f"{self.terminator.describe()})"
        )


@dataclass(frozen=True)
class PeriodicStar(EventExpr):
    """``P*(E1, [t], E3)``: cumulative periodic — fire once at E3 with
    every tick's data accumulated."""

    initiator: EventExpr
    period: TimeSpec
    terminator: EventExpr
    parameter: str | None = None

    def describe(self) -> str:
        time_part = self.period.describe()
        if self.parameter:
            time_part = f"{time_part}:{self.parameter}"
        return (
            f"P*({self.initiator.describe()}, {time_part}, "
            f"{self.terminator.describe()})"
        )


@dataclass(frozen=True)
class Plus(EventExpr):
    """``E PLUS [t]``: fire ``t`` after each occurrence of E."""

    event: EventExpr
    delta: TimeSpec

    def describe(self) -> str:
        return f"({self.event.describe()} PLUS {self.delta.describe()})"


def walk(expr: EventExpr) -> Iterator[EventExpr]:
    """Depth-first pre-order traversal of an expression tree."""
    yield expr
    if isinstance(expr, (Or, And, Seq)):
        yield from walk(expr.left)
        yield from walk(expr.right)
    elif isinstance(expr, (Not, Aperiodic, AperiodicStar)):
        yield from walk(expr.initiator)
        yield from walk(expr.event)
        yield from walk(expr.terminator)
    elif isinstance(expr, (Periodic, PeriodicStar)):
        yield from walk(expr.initiator)
        yield from walk(expr.terminator)
    elif isinstance(expr, Plus):
        yield from walk(expr.event)


def referenced_events(expr: EventExpr) -> list[str]:
    """All distinct event names referenced, in first-appearance order."""
    names: list[str] = []
    for node in walk(expr):
        if isinstance(node, EventName) and node.name not in names:
            names.append(node.name)
    return names
