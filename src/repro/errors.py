"""Exception hierarchy shared by every subsystem in the reproduction.

Every error raised by the SQL engine, the Snoop parser, the local event
detector, or the ECA agent derives from :class:`ReproError`, so callers can
catch one root type at an API boundary.  Subsystems refine the hierarchy in
their own ``errors`` modules (for example ``repro.sqlengine.errors``).
"""

from __future__ import annotations


class ReproError(Exception):
    """Root of all errors raised by this library."""


class ConfigurationError(ReproError):
    """A component was assembled or configured inconsistently."""


class NotSupportedError(ReproError):
    """A requested feature is deliberately outside the supported dialect."""
