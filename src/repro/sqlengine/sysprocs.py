"""System stored procedures (``sp_help`` and friends).

Sybase ships catalog-introspection procedures; clients (and the paper's
DBAs) use them to inspect what the ECA Agent generated.  They are
intercepted by name in the executor — no user procedure may shadow an
``sp_`` name, mirroring Sybase's reserved prefix.
"""

from __future__ import annotations

from .errors import CatalogError, ExecutionError
from .results import ResultSet
from .statements import QualifiedName


def _resolve_any(server, session, name: str):
    """Find a table, view, procedure, or trigger by user-style name."""
    qname = QualifiedName.of(name)
    table = server.catalog.resolve_table(qname, session, required=False)
    if table is not None:
        return "table", table
    view = server.catalog.resolve_view(qname, session)
    if view is not None:
        return "view", view
    procedure = server.catalog.resolve_procedure(qname, session, required=False)
    if procedure is not None:
        return "procedure", procedure
    resolved = server.catalog.resolve_trigger(qname, session, required=False)
    if resolved is not None:
        return "trigger", resolved[1]
    raise CatalogError(f"object '{name}' not found")


def sp_help(server, state, name: str | None = None) -> list[ResultSet]:
    """``sp_help`` — object list, or one object's column layout."""
    session = state.session
    database = server.catalog.get_database(session.database)
    if name is None:
        rows = []
        for table in database.tables.values():
            rows.append([table.name, table.owner, "user table"])
        for view in database.views.values():
            rows.append([view.name, view.owner, "view"])
        for procedure in database.procedures.values():
            rows.append([procedure.name, procedure.owner, "stored procedure"])
        for trigger in database.triggers.values():
            rows.append([trigger.name, trigger.owner, "trigger"])
        rows.sort(key=lambda row: (row[2], str(row[0]).lower()))
        return [ResultSet(["Name", "Owner", "Object_type"], rows)]
    kind, obj = _resolve_any(server, session, str(name))
    if kind == "table":
        rows = [
            [column.name, column.sql_type.name, column.sql_type.storage_length,
             "NULL" if column.nullable else "not null"]
            for column in obj.schema
        ]
        return [
            ResultSet(["Name", "Owner", "Object_type"],
                      [[obj.name, obj.owner, "user table"]]),
            ResultSet(["Column_name", "Type", "Length", "Nulls"], rows),
        ]
    return [ResultSet(["Name", "Object_type"], [[getattr(obj, "name", name), kind]])]


def sp_helptext(server, state, name: str | None = None) -> list[ResultSet]:
    """``sp_helptext`` — stored source of a procedure, trigger, or view."""
    if name is None:
        raise ExecutionError("sp_helptext requires an object name")
    kind, obj = _resolve_any(server, state.session, str(name))
    source = getattr(obj, "source", "")
    if not source:
        raise ExecutionError(f"no source text stored for {kind} '{name}'")
    rows = [[line] for line in source.splitlines()]
    return [ResultSet(["text"], rows)]


def sp_tables(server, state, name: str | None = None) -> list[ResultSet]:
    """``sp_tables`` — tables and views in the current database."""
    database = server.catalog.get_database(state.session.database)
    rows = []
    for table in database.tables.values():
        rows.append([state.session.database, table.owner, table.name, "TABLE"])
    for view in database.views.values():
        rows.append([state.session.database, view.owner, view.name, "VIEW"])
    rows.sort(key=lambda row: (str(row[2]).lower()))
    return [ResultSet(
        ["table_qualifier", "table_owner", "table_name", "table_type"], rows)]


def sp_helpindex(server, state, name: str | None = None) -> list[ResultSet]:
    """``sp_helpindex`` — the indexes defined on a table."""
    if name is None:
        raise ExecutionError("sp_helpindex requires a table name")
    kind, table = _resolve_any(server, state.session, str(name))
    if kind != "table":
        raise ExecutionError(f"'{name}' is not a table")
    rows = [
        [index.name, index.column, "unique" if index.unique else "nonunique"]
        for index in table.indexes.values()
    ]
    return [ResultSet(["index_name", "index_column", "index_description"], rows)]


def sp_helpdb(server, state, name: str | None = None) -> list[ResultSet]:
    """``sp_helpdb`` — the databases on this server."""
    rows = [
        [database.name, len(database.tables), len(database.procedures),
         len(database.triggers)]
        for database in server.catalog.databases.values()
    ]
    rows.sort(key=lambda row: str(row[0]).lower())
    return [ResultSet(["name", "tables", "procedures", "triggers"], rows)]


#: Registry consulted by the executor before user procedures.
SYSTEM_PROCEDURES = {
    "sp_help": sp_help,
    "sp_helptext": sp_helptext,
    "sp_tables": sp_tables,
    "sp_helpindex": sp_helpindex,
    "sp_helpdb": sp_helpdb,
}
