"""Errors raised by the relational engine substrate."""

from __future__ import annotations

from repro.errors import ReproError


class SqlError(ReproError):
    """Root of all engine errors."""


class SqlParseError(SqlError):
    """The statement text could not be tokenized or parsed.

    Carries the 1-based ``line`` and ``column`` of the offending token when
    they are known, mirroring the diagnostics a real server would return.
    """

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        location = ""
        if line is not None:
            location = f" (line {line}, column {column})"
        super().__init__(f"{message}{location}")
        self.line = line
        self.column = column


class CatalogError(SqlError):
    """A referenced database object does not exist or already exists."""


class SchemaError(SqlError):
    """A column reference or table definition is inconsistent."""


class SqlTypeError(SqlError):
    """A value could not be coerced to the declared column type."""


class IntegrityError(SqlError):
    """A NOT NULL or other declared constraint was violated."""


class ExecutionError(SqlError):
    """A statement failed during evaluation (bad subquery, overflow, ...)."""


class TriggerRecursionError(ExecutionError):
    """Trigger firing exceeded the engine's nesting limit (Sybase: 16)."""


class PermissionError_(SqlError):
    """The session user may not perform the operation."""


class TransactionError(SqlError):
    """Invalid transaction control (commit without begin, ...)."""
