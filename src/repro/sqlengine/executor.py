"""Statement execution: the engine's query processor.

One :class:`Executor` per server.  Statements arrive as AST nodes from the
parser; results accumulate in a :class:`~repro.sqlengine.results.BatchResult`.
The executor owns the SELECT pipeline (scan -> filter -> group -> project ->
order), DML with native trigger firing, DDL, stored-procedure invocation,
control flow, and transaction bracketing.
"""

from __future__ import annotations

import datetime as _dt
import time as _time

from . import dagexec, planner
from .catalog import Database
from .errors import (
    CatalogError,
    ExecutionError,
    SchemaError,
    TriggerRecursionError,
)
from .evaluator import (
    EvalContext,
    RowEnvironment,
    RowSource,
    compute_aggregate,
    evaluate,
    is_true,
)
from .expressions import (
    AGGREGATE_FUNCTIONS,
    BinaryOp,
    ColumnRef,
    Expression,
    FunctionCall,
    InList,
    Literal,
    Star,
    contains_aggregate,
)
from .procedures import Procedure
from .results import BatchResult, ResultSet
from .schema import Column, TableSchema
from .statements import (
    AlterTableAddStatement,
    AssignSelect,
    CreateIndexStatement,
    CreateViewStatement,
    DropIndexStatement,
    DropViewStatement,
    UnionSelect,
    BeginTransactionStatement,
    CommitStatement,
    CreateDatabaseStatement,
    CreateProcedureStatement,
    CreateTableStatement,
    CreateTriggerStatement,
    DeclareStatement,
    DeleteStatement,
    DropDatabaseStatement,
    DropProcedureStatement,
    DropTableStatement,
    DropTriggerStatement,
    ExecuteStatement,
    ExplainStatement,
    IfStatement,
    InsertSelect,
    InsertValues,
    PrintStatement,
    QualifiedName,
    ReturnStatement,
    RollbackStatement,
    SelectItem,
    SelectStatement,
    SetStatement,
    Statement,
    TableRef,
    TruncateStatement,
    UpdateStatement,
    UseStatement,
    WaitforStatement,
    WhileStatement,
)
from .table import Table, TableIndex
from .triggers import MAX_TRIGGER_DEPTH, Trigger
from .types import SqlType

#: Safety valve for WHILE loops in procedure bodies.
MAX_LOOP_ITERATIONS = 1_000_000

#: Safety valve for WAITFOR DELAY: a typo'd delay must not wedge a worker.
MAX_WAITFOR_SECONDS = 30.0


class ExecutionState:
    """Per-batch mutable state threaded through statement execution."""

    def __init__(self, session, result: BatchResult, variables=None,
                 pseudo_tables=None, trigger_depth: int = 0):
        self.session = session
        self.result = result
        self.variables: dict[str, object] = variables if variables is not None else {}
        #: transition tables visible inside a trigger body, keyed lowercase
        self.pseudo_tables: dict[str, Table] = pseudo_tables or {}
        self.trigger_depth = trigger_depth
        self.returned = False
        self.return_value: object = None

    def child_for_procedure(self, variables: dict[str, object]) -> "ExecutionState":
        return ExecutionState(
            self.session, self.result, variables,
            self.pseudo_tables, self.trigger_depth,
        )

    def child_for_trigger(self, pseudo_tables: dict[str, Table]) -> "ExecutionState":
        return ExecutionState(
            self.session, self.result, {},
            pseudo_tables, self.trigger_depth + 1,
        )


class Executor:
    """Executes parsed statements against a server's catalog."""

    def __init__(self, server):
        self.server = server

    # ------------------------------------------------------------------
    # entry points

    def execute_batch(self, statements: list[Statement], session,
                      result: BatchResult, variables=None) -> None:
        """Run one batch; ``variables`` pre-seeds the batch's local
        variables (the parameter-slot path generated rule SQL uses to
        keep its batch text constant for the plan cache)."""
        state = ExecutionState(session, result, variables=variables)
        for statement in statements:
            self.execute(statement, state)
            if state.returned:
                break

    def execute(self, statement: Statement, state: ExecutionState) -> None:
        handler = self._HANDLERS.get(type(statement))
        if handler is None:
            raise ExecutionError(
                f"no executor for statement {type(statement).__name__}"
            )
        if type(statement) in _DDL_TYPES:
            # Bump in a finally so even a DDL that fails (or crashes via
            # fault injection) part-way invalidates every cached plan —
            # the catalog may have partially changed.
            try:
                self._timed_execute(handler, statement, state)
            finally:
                self.server.catalog.bump_schema_epoch()
            return
        self._timed_execute(handler, statement, state)

    def _timed_execute(self, handler, statement: Statement,
                       state: ExecutionState) -> None:
        accounting = self.server.accounting
        if accounting is not None and accounting.active():
            accounting.note_statement()
        metrics = self.server.metrics
        if metrics is None or not metrics.enabled:
            handler(self, statement, state)
            return
        kind = _statement_kind(type(statement))
        start = _time.perf_counter()
        try:
            handler(self, statement, state)
        finally:
            self.server._m_statements.labels(kind).inc()
            self.server._m_statement_seconds.labels(kind).observe(
                _time.perf_counter() - start)

    # ------------------------------------------------------------------
    # evaluation plumbing

    def _eval_context(self, state: ExecutionState) -> EvalContext:
        def run_subquery(select, outer_env: RowEnvironment):
            result = self._run_select_any(select, state, outer_env=outer_env)
            return result.rows

        return EvalContext(
            session=state.session,
            variables=state.variables,
            run_subquery=run_subquery,
            functions=self.server.functions,
        )

    def _eval(self, expr: Expression, env: RowEnvironment,
              state: ExecutionState) -> object:
        return evaluate(expr, env, self._eval_context(state))

    def _eval_scalar(self, expr: Expression, state: ExecutionState) -> object:
        return self._eval(expr, RowEnvironment(), state)

    # ------------------------------------------------------------------
    # table resolution

    def _resolve_table(self, qname: QualifiedName, state: ExecutionState,
                       required: bool = True) -> Table | None:
        if len(qname.parts) == 1:
            pseudo = state.pseudo_tables.get(qname.object_name.lower())
            if pseudo is not None:
                return pseudo
        table = self.server.catalog.resolve_table(
            qname, state.session, required=False)
        if table is None and required:
            if self.server.catalog.resolve_view(qname, state.session) is not None:
                raise ExecutionError(
                    f"'{qname.describe()}' is a view; views are read-only")
            raise CatalogError(f"table '{qname.describe()}' not found")
        return table

    def _database_of(self, qname: QualifiedName, state: ExecutionState) -> Database:
        database = qname.database or state.session.database
        return self.server.catalog.get_database(database)

    def _source_for(self, ref: TableRef, table: Table, database_name: str) -> RowSource:
        if ref.alias:
            keys = frozenset({ref.alias.lower()})
            label = ref.alias
        else:
            name = table.name.lower()
            owner = table.owner.lower()
            keys = frozenset({
                name,
                f"{owner}.{name}",
                f"{database_name.lower()}.{owner}.{name}",
            })
            label = table.name
        return RowSource(keys=keys, schema=table.schema, label=label)

    # ------------------------------------------------------------------
    # SELECT pipeline

    def _execute_select(self, statement: SelectStatement,
                        state: ExecutionState) -> None:
        result = self._run_select(statement, state)
        if statement.into is None:
            state.result.result_sets.append(result)
            state.result.rowcount = len(result.rows)
            state.session.global_vars["@@rowcount"] = len(result.rows)
        # SELECT INTO reports rowcount but emits no result set.

    def _run_select_any(self, statement, state: ExecutionState,
                        outer_env: RowEnvironment | None = None) -> ResultSet:
        """Dispatch on SELECT vs UNION chains."""
        if isinstance(statement, UnionSelect):
            return self._run_union(statement, state, outer_env)
        return self._run_select(statement, state, outer_env=outer_env)

    def _from_table(self, ref: TableRef, state: ExecutionState) -> Table:
        """Resolve a FROM-clause name: pseudo table, base table, or a
        materialized view."""
        table = self._resolve_table(ref.name, state, required=False)
        if table is not None:
            return table
        view = self.server.catalog.resolve_view(ref.name, state.session)
        if view is not None:
            return self._materialize_view(view, state)
        raise CatalogError(f"table '{ref.name.describe()}' not found")

    def _materialize_view(self, view, state: ExecutionState) -> Table:
        result = self._run_select_any(view.select, state)
        return Table(
            name=view.name,
            owner=view.owner,
            schema=_schema_from_result(result),
            rows=[list(row) for row in result.rows],
        )

    def _run_select(self, statement: SelectStatement, state: ExecutionState,
                    outer_env: RowEnvironment | None = None) -> ResultSet:
        sources: list[RowSource] = []
        tables: list[Table] = []
        table_keys: list[tuple] = []
        for ref in statement.tables:
            table = self._from_table(ref, state)
            database_name = ref.name.database or state.session.database
            sources.append(self._source_for(ref, table, database_name))
            tables.append(table)
            table_keys.append(self._table_key(ref.name, table, state))

        env = RowEnvironment(sources, parent=outer_env)
        ctx = self._eval_context(state)
        bindings = None
        row_overrides = None
        if self.server.planner_enabled:
            plan = self._plan_for(
                statement, sources, tables, tuple(table_keys), env, state)
            bindings = dagexec.select_bindings(
                self, plan, sources, tables, env, ctx)
        else:
            row_overrides = self._scan_plan(
                statement.where, sources, tables, env, ctx, state)

        grouped = bool(statement.group_by) or any(
            contains_aggregate(item.expr) for item in statement.items
        ) or (statement.having is not None)

        if grouped:
            result = self._run_grouped_select(
                statement, state, env, ctx, tables, row_overrides,
                bindings=bindings)
        else:
            result = self._run_plain_select(
                statement, state, env, ctx, tables, row_overrides,
                bindings=bindings)

        if statement.distinct:
            result.rows = _distinct(result.rows)
        if statement.top is not None:
            result.rows = result.rows[: statement.top]

        if bindings is not None:
            ops = {"project": len(result.rows)}
            if grouped:
                ops["aggregate"] = len(result.rows)
            if statement.order_by:
                ops["sort"] = len(result.rows)
            if statement.top is not None:
                ops["limit"] = len(result.rows)
            self.server.note_plan_ops(ops)

        if statement.into is not None:
            self._select_into(statement, result, state, tables, sources)
        return result

    def _table_key(self, name: QualifiedName, table: Table,
                   state: ExecutionState) -> tuple:
        """A session-independent fingerprint of one resolved FROM source.

        Memoized plans carry the keys they were planned against; an
        execution whose keys differ (other session's owner fallback, a
        trigger's pseudo table, a same-named table in another database)
        plans fresh instead of reusing a plan for the wrong table.
        """
        columns = tuple(column.name for column in table.schema.columns)
        if (len(name.parts) == 1 and state.pseudo_tables.get(
                name.object_name.lower()) is table):
            return ("pseudo", name.object_name.lower(), columns)
        database = (name.database or state.session.database).lower()
        return ("table", database, table.owner.lower(),
                table.name.lower(), columns)

    def _plan_for(self, statement: SelectStatement, sources, tables,
                  table_keys: tuple, env: RowEnvironment,
                  state: ExecutionState):
        """The memoized optimized plan for one SELECT (planned fresh on
        a memo miss — first execution, DDL epoch bump, or key change)."""
        epoch = self.server.catalog.schema_epoch
        cache = self.server.plan_cache
        plan = cache.get_plan(statement, epoch, table_keys)
        if plan is not None:
            return plan
        start = _time.perf_counter()
        plan = planner.plan_select(
            self, statement, sources, tables, table_keys, env, epoch)
        self.server.note_planner_time(_time.perf_counter() - start)
        cache.put_plan(statement, epoch, table_keys, plan)
        return plan

    def _iterate_rows(self, sources: list[RowSource], tables: list[Table],
                      where: Expression | None, env: RowEnvironment,
                      ctx: EvalContext,
                      row_overrides: dict[int, list] | None = None):
        """Yield once per qualifying cross-product row (rows bound in-place).

        ``row_overrides`` narrows a source's candidate rows (index scans).
        An override may be a list, or a zero-argument callable producing
        one — a join probe, evaluated fresh each time the outer sources
        it depends on are rebound.
        """
        if not sources:
            if where is None or is_true(evaluate(where, env, ctx)):
                yield
            return

        row_lists = [
            (row_overrides[position] if row_overrides and position in row_overrides
             else list(table.rows))
            for position, table in enumerate(tables)
        ]

        accounting = self.server.accounting
        track = accounting is not None and accounting.active()
        if track:
            # Charge materialized candidates once per scan setup (probe
            # callables are charged below, when they actually run), and
            # classify each source as index-narrowed or full scan.
            index_sources = len(row_overrides) if row_overrides else 0
            accounting.note_scan(
                sum(len(rows) for rows in row_lists if not callable(rows)),
                index_sources,
                len(sources) - index_sources)

        def recurse(depth: int):
            if depth == len(sources):
                if where is None or is_true(evaluate(where, env, ctx)):
                    yield
                return
            source = sources[depth]
            candidates = row_lists[depth]
            if callable(candidates):
                candidates = candidates()
                if track:
                    accounting.note_rows(len(candidates))
            for row in candidates:
                source.row = row
                yield from recurse(depth + 1)
            source.row = None

        yield from recurse(0)

    def _indexed_position(self, column: Expression,
                          sources: list[RowSource], tables: list[Table],
                          env: RowEnvironment,
                          overrides: dict) -> tuple[int, TableIndex] | None:
        """Resolve a column reference to an un-overridden source position
        whose table has an index on that column."""
        if not isinstance(column, ColumnRef):
            return None
        try:
            source, _column_index = env.resolve(column)
        except Exception:
            return None
        for position, candidate in enumerate(sources):
            if candidate is source:
                break
        else:
            return None  # resolved into an outer query's sources
        if position in overrides:
            return None
        table_index = tables[position].index_on(column.column_name)
        if table_index is None:
            return None
        return position, table_index

    def _scan_plan(self, where: Expression | None,
                   sources: list[RowSource], tables: list[Table],
                   env: RowEnvironment, ctx: EvalContext,
                   state: ExecutionState) -> dict[int, object] | None:
        """Index-driven scan narrowing from the WHERE's top-level conjuncts.

        Per source position this installs at most one override:

        - a static candidate list, from ``col = <row-free expr>`` or
          ``col IN (<row-free exprs>)`` over an indexed column; or
        - a probe callable, from an equi-join conjunct ``a.x = b.y``
          whose later-bound side is indexed; the probe runs at iteration
          time, after the earlier side's row is bound.

        Soundness: each override comes from one conjunct, and the full
        WHERE is still evaluated per candidate row — the index only
        skips rows that cannot satisfy that conjunct.
        """
        if where is None or not sources:
            return None
        overrides: dict[int, object] = {}
        for conjunct in _conjuncts(where):
            if isinstance(conjunct, InList) and not conjunct.negated:
                if any(_expr_has_columns(item) for item in conjunct.items):
                    continue
                resolved = self._indexed_position(
                    conjunct.operand, sources, tables, env, overrides)
                if resolved is None:
                    continue
                position, table_index = resolved
                candidates: list = []
                seen: set[int] = set()
                for item in conjunct.items:
                    value = self._eval_scalar(item, state)
                    for row in table_index.lookup(tables[position], value):
                        if id(row) not in seen:
                            seen.add(id(row))
                            candidates.append(row)
                overrides[position] = candidates
                self._note_index_scan("in")
                continue
            if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
                continue
            left, right = conjunct.left, conjunct.right
            if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
                resolved_left = self._indexed_position(
                    left, sources, tables, env, {})
                resolved_right = self._indexed_position(
                    right, sources, tables, env, {})
                # Probe the later-bound side with the earlier side's value.
                best = None
                for own, other in ((resolved_right, left),
                                   (resolved_left, right)):
                    if own is None:
                        continue
                    position, table_index = own
                    if position in overrides:
                        continue
                    other_source = self._source_position(other, sources, env)
                    if other_source is None or other_source >= position:
                        continue
                    best = (position, table_index, other)
                    break
                if best is None:
                    continue
                position, table_index, probe_expr = best

                def probe(index=table_index, table=tables[position],
                          expr=probe_expr):
                    return index.lookup(table, evaluate(expr, env, ctx))

                overrides[position] = probe
                self._note_index_scan("join")
                continue
            for column_side, value_side in ((left, right), (right, left)):
                if _expr_has_columns(value_side):
                    continue
                resolved = self._indexed_position(
                    column_side, sources, tables, env, overrides)
                if resolved is None:
                    continue
                position, table_index = resolved
                value = self._eval_scalar(value_side, state)
                overrides[position] = table_index.lookup(
                    tables[position], value)
                self._note_index_scan("eq")
                break
        return overrides or None

    @staticmethod
    def _source_position(column: Expression, sources: list[RowSource],
                         env: RowEnvironment) -> int | None:
        """The position of the source a column reference binds to."""
        if not isinstance(column, ColumnRef):
            return None
        try:
            source, _column_index = env.resolve(column)
        except Exception:
            return None
        for position, candidate in enumerate(sources):
            if candidate is source:
                return position
        return None

    def _note_index_scan(self, kind: str) -> None:
        """Count one index-backed narrowing (plain counter + metrics)."""
        server = self.server
        server.index_scans += 1
        if server._m_index_scans is not None:
            server._m_index_scans.labels(kind).inc()

    def _execute_union(self, statement: UnionSelect,
                       state: ExecutionState) -> None:
        result = self._run_union(statement, state)
        if statement.into is None:
            state.result.result_sets.append(result)
            state.result.rowcount = len(result.rows)
            state.session.global_vars["@@rowcount"] = len(result.rows)

    def _run_union(self, statement: UnionSelect, state: ExecutionState,
                   outer_env: RowEnvironment | None = None) -> ResultSet:
        parts = [
            self._run_select(part, state, outer_env=outer_env)
            for part in statement.parts
        ]
        width = len(parts[0].columns)
        for part in parts[1:]:
            if len(part.columns) != width:
                raise ExecutionError(
                    "UNION selects must have the same number of columns")
        rows: list[list[object]] = list(parts[0].rows)
        keep_all = True
        for flag, part in zip(statement.all_flags, parts[1:]):
            rows.extend(part.rows)
            keep_all = keep_all and flag
        # Plain UNION dedupes the whole result; UNION ALL keeps duplicates.
        if not all(statement.all_flags):
            rows = _distinct(rows)
        result = ResultSet(columns=list(parts[0].columns), rows=rows)
        if statement.order_by:
            keys = [
                tuple(
                    _null_safe_key(row[self._union_order_position(
                        item.expr, result.columns)])
                    for item in statement.order_by
                )
                for row in result.rows
            ]
            result.rows = _sorted_rows(result.rows, keys, statement.order_by)
        if statement.into is not None:
            self._union_into(statement, result, state)
        return result

    @staticmethod
    def _union_order_position(expr: Expression, columns: list[str]) -> int:
        """UNION ORDER BY keys: output column name or 1-based position."""
        if isinstance(expr, Literal) and isinstance(expr.value, int):
            position = expr.value
            if not 1 <= position <= len(columns):
                raise ExecutionError(
                    f"ORDER BY position {position} out of range")
            return position - 1
        if isinstance(expr, ColumnRef) and len(expr.parts) == 1:
            lowered = expr.parts[0].lower()
            for index, column in enumerate(columns):
                if column.lower() == lowered:
                    return index
        raise ExecutionError(
            "ORDER BY on a UNION must name an output column or position")

    def _union_into(self, statement: UnionSelect, result: ResultSet,
                    state: ExecutionState) -> None:
        database, owner, name = self.server.catalog.owner_for_create(
            statement.into, state.session)
        if database.get_table(owner, name) is not None:
            raise CatalogError(
                f"table '{owner}.{name}' already exists in database "
                f"'{database.name}'"
            )
        table = Table(name=name, owner=owner,
                      schema=_schema_from_result(result))
        for row in result.rows:
            table.insert_row(list(row))
        database.add_table(table)
        state.session.tx_log.record_undo(
            lambda db=database, o=owner, n=name: db.tables.pop(
                (o.lower(), n.lower()), None)
        )
        state.result.rowcount = len(result.rows)

    def _expand_items(self, items: tuple[SelectItem, ...],
                      sources: list[RowSource]) -> list[tuple[Expression, str]]:
        """Expand ``*`` and ``alias.*`` into concrete (expr, name) pairs."""
        expanded: list[tuple[Expression, str]] = []
        for item in items:
            if isinstance(item.expr, Star):
                star = item.expr
                chosen = [
                    source for source in sources
                    if not star.qualifier or source.matches(star.qualifier)
                ]
                if star.qualifier and not chosen:
                    raise SchemaError(
                        f"unknown table qualifier "
                        f"'{'.'.join(star.qualifier)}' in select list"
                    )
                if not chosen:
                    raise ExecutionError("SELECT * requires a FROM clause")
                for source in chosen:
                    for column in source.schema:
                        parts = (source.label, column.name) if source.label else (column.name,)
                        expanded.append((ColumnRef(parts), column.name))
            else:
                expanded.append((item.expr, _column_name(item)))
        return expanded

    def _run_plain_select(self, statement: SelectStatement, state: ExecutionState,
                          env: RowEnvironment, ctx: EvalContext,
                          tables: list[Table],
                          row_overrides: dict[int, list] | None = None,
                          bindings=None) -> ResultSet:
        expanded = self._expand_items(statement.items, env.sources)
        columns = [name for _expr, name in expanded]
        order_exprs = [item.expr for item in statement.order_by]
        rows: list[list[object]] = []
        order_keys: list[tuple] = []
        iterator = (bindings if bindings is not None
                    else self._iterate_rows(env.sources, tables,
                                            statement.where, env, ctx,
                                            row_overrides))
        for _ in iterator:
            row = [evaluate(expr, env, ctx) for expr, _name in expanded]
            rows.append(row)
            if order_exprs:
                order_keys.append(self._order_key(order_exprs, columns, row, env, ctx))
        if statement.order_by:
            rows = _sorted_rows(rows, order_keys, statement.order_by)
        return ResultSet(columns=columns, rows=rows)

    def _run_grouped_select(self, statement: SelectStatement, state: ExecutionState,
                            env: RowEnvironment, ctx: EvalContext,
                            tables: list[Table],
                            row_overrides: dict[int, list] | None = None,
                            bindings=None) -> ResultSet:
        expanded = self._expand_items(statement.items, env.sources)
        columns = [name for _expr, name in expanded]

        # Materialize qualifying rows as frozen environments.
        group_rows: dict[tuple, list[RowEnvironment]] = {}
        group_order: list[tuple] = []
        iterator = (bindings if bindings is not None
                    else self._iterate_rows(env.sources, tables,
                                            statement.where, env, ctx,
                                            row_overrides))
        for _ in iterator:
            frozen = RowEnvironment(
                [
                    RowSource(source.keys, source.schema,
                              list(source.row) if source.row is not None else None,
                              source.label)
                    for source in env.sources
                ],
                parent=env.parent,
            )
            if statement.group_by:
                key = tuple(
                    _hashable(evaluate(expr, frozen, ctx))
                    for expr in statement.group_by
                )
            else:
                key = ()
            if key not in group_rows:
                group_rows[key] = []
                group_order.append(key)
            group_rows[key].append(frozen)

        if not statement.group_by and not group_rows:
            # Aggregates over an empty input produce a single row.
            group_rows[()] = []
            group_order.append(())

        rows: list[list[object]] = []
        order_keys: list[tuple] = []
        order_exprs = [item.expr for item in statement.order_by]
        for key in group_order:
            members = group_rows[key]
            representative = members[0] if members else env
            if statement.having is not None:
                having_value = self._eval_grouped(
                    statement.having, members, representative, ctx)
                if not is_true(having_value):
                    continue
            row = [
                self._eval_grouped(expr, members, representative, ctx)
                for expr, _name in expanded
            ]
            rows.append(row)
            if order_exprs:
                keys = tuple(
                    _null_safe_key(self._eval_grouped(expr, members, representative, ctx))
                    for expr in order_exprs
                )
                order_keys.append(keys)
        if statement.order_by:
            rows = _sorted_rows(rows, order_keys, statement.order_by)
        return ResultSet(columns=columns, rows=rows)

    def _eval_grouped(self, expr: Expression, members: list[RowEnvironment],
                      representative: RowEnvironment, ctx: EvalContext) -> object:
        """Evaluate an expression in grouped context: aggregate calls are
        computed over the group, everything else against a representative
        member row."""
        if isinstance(expr, FunctionCall) and expr.name in AGGREGATE_FUNCTIONS:
            return compute_aggregate(expr, members, ctx)
        if isinstance(expr, FunctionCall):
            from .evaluator import _eval_function  # scalar path

            return _eval_function(expr, representative, ctx)
        from .expressions import Between, CaseExpr, InList, IsNull, UnaryOp

        if isinstance(expr, CaseExpr) and contains_aggregate(expr):
            rebuilt = CaseExpr(
                whens=tuple(
                    (Literal(self._eval_grouped(when, members, representative, ctx)),
                     Literal(self._eval_grouped(then, members, representative, ctx)))
                    for when, then in expr.whens
                ),
                operand=(
                    Literal(self._eval_grouped(
                        expr.operand, members, representative, ctx))
                    if expr.operand is not None else None
                ),
                default=(
                    Literal(self._eval_grouped(
                        expr.default, members, representative, ctx))
                    if expr.default is not None else None
                ),
            )
            return evaluate(rebuilt, representative, ctx)
        if isinstance(expr, BinaryOp):
            if contains_aggregate(expr):
                left = self._eval_grouped(expr.left, members, representative, ctx)
                right = self._eval_grouped(expr.right, members, representative, ctx)
                rebuilt = BinaryOp(expr.op, Literal(left), Literal(right))
                return evaluate(rebuilt, representative, ctx)
            return evaluate(expr, representative, ctx)
        if isinstance(expr, UnaryOp) and contains_aggregate(expr):
            inner = self._eval_grouped(expr.operand, members, representative, ctx)
            return evaluate(UnaryOp(expr.op, Literal(inner)), representative, ctx)
        return evaluate(expr, representative, ctx)

    def _order_key(self, order_exprs: list[Expression], columns: list[str],
                   row: list[object], env: RowEnvironment, ctx: EvalContext) -> tuple:
        keys = []
        for expr in order_exprs:
            # ORDER BY <position> and ORDER BY <output alias> conveniences.
            if isinstance(expr, Literal) and isinstance(expr.value, int):
                position = expr.value
                if not 1 <= position <= len(row):
                    raise ExecutionError(f"ORDER BY position {position} out of range")
                keys.append(_null_safe_key(row[position - 1]))
                continue
            if isinstance(expr, ColumnRef) and len(expr.parts) == 1:
                name = expr.parts[0].lower()
                aliased = [index for index, column in enumerate(columns)
                           if column.lower() == name]
                if len(aliased) == 1:
                    try:
                        env.resolve(expr)
                    except (SchemaError, ExecutionError):
                        keys.append(_null_safe_key(row[aliased[0]]))
                        continue
            keys.append(_null_safe_key(evaluate(expr, env, ctx)))
        return tuple(keys)

    def _select_into(self, statement: SelectStatement, result: ResultSet,
                     state: ExecutionState, tables: list[Table],
                     sources: list[RowSource]) -> None:
        database, owner, name = self.server.catalog.owner_for_create(
            statement.into, state.session)
        if database.get_table(owner, name) is not None:
            raise CatalogError(
                f"table '{owner}.{name}' already exists in database "
                f"'{database.name}'"
            )
        schema = self._infer_schema(statement, result, sources, state)
        table = Table(name=name, owner=owner, schema=schema)
        for row in result.rows:
            table.insert_row(list(row))
        database.add_table(table)
        state.session.tx_log.record_undo(
            lambda db=database, o=owner, n=name: db.tables.pop(
                (o.lower(), n.lower()), None)
        )
        state.result.rowcount = len(result.rows)
        state.session.global_vars["@@rowcount"] = len(result.rows)

    def _infer_schema(self, statement: SelectStatement, result: ResultSet,
                      sources: list[RowSource], state: ExecutionState) -> TableSchema:
        expanded = self._expand_items(statement.items, sources)
        columns: list[Column] = []
        for index, (expr, name) in enumerate(expanded):
            if not name:
                raise ExecutionError(
                    "SELECT INTO requires every column to have a name "
                    f"(column {index + 1} has none)"
                )
            sql_type = self._infer_type(expr, sources, result, index)
            columns.append(Column(name, sql_type, nullable=True))
        return TableSchema(columns)

    def _infer_type(self, expr: Expression, sources: list[RowSource],
                    result: ResultSet, index: int) -> SqlType:
        if isinstance(expr, ColumnRef):
            for source in sources:
                if expr.qualifier and not source.matches(expr.qualifier):
                    continue
                col_index = source.schema.index_of(expr.column_name, required=False)
                if col_index is not None:
                    return source.schema.columns[col_index].sql_type
        for row in result.rows:
            value = row[index]
            if value is None:
                continue
            if isinstance(value, bool):
                return SqlType.parse("bit")
            if isinstance(value, int):
                return SqlType.parse("int")
            if isinstance(value, float):
                return SqlType.parse("float")
            if isinstance(value, _dt.datetime):
                return SqlType.parse("datetime")
            return SqlType.parse("varchar", max(30, len(str(value))))
        return SqlType.parse("varchar", 255)

    # ------------------------------------------------------------------
    # DML

    def _execute_insert_values(self, statement: InsertValues,
                               state: ExecutionState) -> None:
        table = self._resolve_table(statement.table, state)
        assert table is not None
        database = self._database_of(statement.table, state)
        state.session.tx_log.before_table_mutation(table)
        inserted: list[list[object]] = []
        for value_row in statement.rows:
            values = [self._eval_scalar(expr, state) for expr in value_row]
            if statement.columns:
                if len(values) != len(statement.columns):
                    raise SchemaError(
                        "INSERT column list and VALUES list lengths differ"
                    )
                stored = table.insert_partial(list(statement.columns), values)
            else:
                stored = table.insert_row(values)
            inserted.append(stored)
        self._after_dml(state, len(inserted))
        self._fire_trigger(database, table, "insert", inserted, [], state)

    def _execute_insert_select(self, statement: InsertSelect,
                               state: ExecutionState) -> None:
        table = self._resolve_table(statement.table, state)
        assert table is not None
        database = self._database_of(statement.table, state)
        select_result = self._run_select_any(statement.select, state)
        state.session.tx_log.before_table_mutation(table)
        inserted: list[list[object]] = []
        for row in select_result.rows:
            if statement.columns:
                if len(row) != len(statement.columns):
                    raise SchemaError(
                        "INSERT column list and SELECT list lengths differ"
                    )
                stored = table.insert_partial(list(statement.columns), list(row))
            else:
                stored = table.insert_row(list(row))
            inserted.append(stored)
        self._after_dml(state, len(inserted))
        self._fire_trigger(database, table, "insert", inserted, [], state)

    def _execute_update(self, statement: UpdateStatement,
                        state: ExecutionState) -> None:
        table = self._resolve_table(statement.table, state)
        assert table is not None
        database = self._database_of(statement.table, state)
        database_name = statement.table.database or state.session.database
        source = self._source_for(
            TableRef(statement.table, None), table, database_name)
        env = RowEnvironment([source])
        ctx = self._eval_context(state)

        state.session.tx_log.before_table_mutation(table)
        assignments = [
            (table.schema.index_of(column), expr)
            for column, expr in statement.assignments
        ]
        candidates = self._dml_candidates(
            statement.where, source, table, env, ctx, state,
            statement=statement, kind="update",
            columns=tuple(column for column, _ in statement.assignments))
        deleted: list[list[object]] = []
        inserted: list[list[object]] = []
        for row in candidates:
            source.row = row
            if statement.where is not None and not is_true(
                    evaluate(statement.where, env, ctx)):
                continue
            old_row = list(row)
            new_values = {
                index: evaluate(expr, env, ctx) for index, expr in assignments
            }
            for index, value in new_values.items():
                assert index is not None
                column = table.schema.columns[index]
                coerced = column.sql_type.coerce(value)
                if coerced is None and not column.nullable:
                    raise SchemaError(
                        f"column '{column.name}' does not allow nulls")
                row[index] = coerced
            deleted.append(old_row)
            inserted.append(list(row))
        source.row = None
        if inserted:
            table.mark_modified(
                {column for column, _ in statement.assignments})
            for table_index in table.indexes.values():
                table_index.check_unique(table)
        self._after_dml(state, len(inserted))
        self._fire_trigger(database, table, "update", inserted, deleted, state)

    def _execute_delete(self, statement: DeleteStatement,
                        state: ExecutionState) -> None:
        table = self._resolve_table(statement.table, state)
        assert table is not None
        database = self._database_of(statement.table, state)
        database_name = statement.table.database or state.session.database
        source = self._source_for(
            TableRef(statement.table, None), table, database_name)
        env = RowEnvironment([source])
        ctx = self._eval_context(state)
        state.session.tx_log.before_table_mutation(table)
        candidates = self._dml_candidates(
            statement.where, source, table, env, ctx, state,
            statement=statement, kind="delete")
        if candidates is table.rows:
            def predicate(row: list[object]) -> bool:
                if statement.where is None:
                    return True
                source.row = row
                return is_true(evaluate(statement.where, env, ctx))

            deleted = table.delete_rows(predicate)
        else:
            # Index-narrowed: qualify the candidates first, then delete
            # by row identity in one pass over the heap.
            doomed: set[int] = set()
            for row in candidates:
                source.row = row
                if is_true(evaluate(statement.where, env, ctx)):
                    doomed.add(id(row))
            deleted = table.delete_rows(lambda row: id(row) in doomed)
        source.row = None
        self._after_dml(state, len(deleted))
        self._fire_trigger(database, table, "delete", [], deleted, state)

    def _dml_candidates(self, where: Expression | None, source: RowSource,
                        table: Table, env: RowEnvironment, ctx: EvalContext,
                        state: ExecutionState, statement=None,
                        kind: str = "", columns: tuple = ()):
        """Candidate rows for single-table DML: an index-narrowed list
        when the WHERE permits, else the table's live row list.

        With the planner enabled the narrowing comes from a memoized
        :class:`~repro.sqlengine.planner.DmlPlan`; either way the caller
        re-checks the full WHERE per candidate, so narrowing only ever
        skips rows that cannot match.
        """
        accounting = self.server.accounting
        track = accounting is not None and accounting.active()
        if self.server.planner_enabled and statement is not None:
            table_keys = (self._table_key(statement.table, table, state),)
            epoch = self.server.catalog.schema_epoch
            cache = self.server.plan_cache
            dml_plan = cache.get_plan(statement, epoch, table_keys)
            if dml_plan is None:
                start = _time.perf_counter()
                dml_plan = planner.plan_dml(
                    self, statement, where, [source], [table], table_keys,
                    env, epoch, kind, columns)
                self.server.note_planner_time(_time.perf_counter() - start)
                cache.put_plan(statement, epoch, table_keys, dml_plan)
            candidates = dagexec.dml_candidates(
                self, dml_plan, source, table, env, ctx)
            if track:
                if candidates is table.rows:
                    accounting.note_scan(len(table.rows), 0, 1)
                else:
                    accounting.note_scan(len(candidates), 1, 0)
            return candidates
        plan = self._scan_plan(where, [source], [table], env, ctx, state)
        if plan and 0 in plan:
            candidates = plan[0]
            if callable(candidates):
                candidates = candidates()
            if track:
                accounting.note_scan(len(candidates), 1, 0)
            return candidates
        if track:
            accounting.note_scan(len(table.rows), 0, 1)
        return table.rows

    def _execute_truncate(self, statement: TruncateStatement,
                          state: ExecutionState) -> None:
        table = self._resolve_table(statement.table, state)
        assert table is not None
        state.session.tx_log.before_table_mutation(table)
        count = table.truncate()
        # TRUNCATE skips triggers, like Sybase's fast path.
        self._after_dml(state, count)

    def _after_dml(self, state: ExecutionState, rowcount: int) -> None:
        state.result.rowcount = rowcount
        state.session.global_vars["@@rowcount"] = rowcount

    # ------------------------------------------------------------------
    # triggers

    def _fire_trigger(self, database: Database, table: Table, operation: str,
                      inserted: list[list[object]], deleted: list[list[object]],
                      state: ExecutionState) -> None:
        if not self.server.triggers_enabled:
            return
        trigger = database.trigger_for(table, operation)
        if trigger is None:
            return
        if state.trigger_depth >= MAX_TRIGGER_DEPTH:
            raise TriggerRecursionError(
                f"trigger nesting exceeded {MAX_TRIGGER_DEPTH} levels"
            )
        pseudo = {
            "inserted": Table("inserted", table.owner, table.schema.clone(),
                              [list(row) for row in inserted]),
            "deleted": Table("deleted", table.owner, table.schema.clone(),
                             [list(row) for row in deleted]),
        }
        child = state.child_for_trigger(pseudo)
        for statement in trigger.body:
            self.execute(statement, child)
            if child.returned:
                break

    # ------------------------------------------------------------------
    # DDL

    def _execute_create_table(self, statement: CreateTableStatement,
                              state: ExecutionState) -> None:
        database, owner, name = self.server.catalog.owner_for_create(
            statement.table, state.session)
        schema = TableSchema([
            Column(col.name, col.sql_type, col.nullable)
            for col in statement.columns
        ])
        database.add_table(Table(name=name, owner=owner, schema=schema))
        state.session.tx_log.record_undo(
            lambda db=database, o=owner, n=name: db.tables.pop(
                (o.lower(), n.lower()), None)
        )

    def _execute_drop_table(self, statement: DropTableStatement,
                            state: ExecutionState) -> None:
        for qname in statement.tables:
            table = self._resolve_table(qname, state)
            assert table is not None
            database = self._database_of(qname, state)
            dropped = database.drop_table(table.owner, table.name)
            state.session.tx_log.record_undo(
                lambda db=database, t=dropped: db.add_table(t, replace=True)
            )

    def _execute_alter_table(self, statement: AlterTableAddStatement,
                             state: ExecutionState) -> None:
        table = self._resolve_table(statement.table, state)
        assert table is not None
        state.session.tx_log.before_table_mutation(table)
        for col in statement.columns:
            table.add_column(Column(col.name, col.sql_type, col.nullable))

    def _execute_create_database(self, statement: CreateDatabaseStatement,
                                 state: ExecutionState) -> None:
        self.server.catalog.create_database(statement.name)

    def _execute_drop_database(self, statement: DropDatabaseStatement,
                               state: ExecutionState) -> None:
        self.server.catalog.drop_database(statement.name)

    def _execute_use(self, statement: UseStatement, state: ExecutionState) -> None:
        self.server.catalog.get_database(statement.name)  # existence check
        state.session.database = statement.name

    # ------------------------------------------------------------------
    # procedures / triggers DDL and invocation

    def _execute_create_procedure(self, statement: CreateProcedureStatement,
                                  state: ExecutionState) -> None:
        database, owner, name = self.server.catalog.owner_for_create(
            statement.name, state.session)
        procedure = Procedure(
            name=name, owner=owner, params=statement.params,
            body=statement.body, source=statement.source,
        )
        database.add_procedure(procedure)
        state.session.tx_log.record_undo(
            lambda db=database, o=owner, n=name: db.procedures.pop(
                (o.lower(), n.lower()), None)
        )

    def _execute_drop_procedure(self, statement: DropProcedureStatement,
                                state: ExecutionState) -> None:
        procedure = self.server.catalog.resolve_procedure(
            statement.name, state.session)
        assert procedure is not None
        database = self._database_of(statement.name, state)
        database.drop_procedure(procedure.owner, procedure.name)
        state.session.tx_log.record_undo(
            lambda db=database, p=procedure: db.add_procedure(p, replace=True)
        )

    def _execute_create_trigger(self, statement: CreateTriggerStatement,
                                state: ExecutionState) -> None:
        table = self._resolve_table(statement.table, state)
        assert table is not None
        database = self._database_of(statement.table, state)
        _tdb, owner, name = self.server.catalog.owner_for_create(
            statement.name, state.session)
        trigger = Trigger(
            name=name,
            owner=owner,
            table_owner=table.owner,
            table_name=table.name,
            operations=statement.operations,
            body=statement.body,
            source=statement.source,
        )
        displaced = database.add_trigger(trigger)
        # The paper highlights that no warning is produced on displacement;
        # we record it internally for the limitation tests but emit nothing.
        self.server.last_displaced_triggers = displaced

    def _execute_drop_trigger(self, statement: DropTriggerStatement,
                              state: ExecutionState) -> None:
        resolved = self.server.catalog.resolve_trigger(
            statement.name, state.session)
        assert resolved is not None
        database, trigger = resolved
        database.drop_trigger(trigger.owner, trigger.name)

    def _execute_execute(self, statement: ExecuteStatement,
                         state: ExecutionState) -> None:
        # System procedures (sp_*) are intercepted by name, like Sybase.
        if len(statement.name.parts) == 1:
            from .sysprocs import SYSTEM_PROCEDURES

            handler = SYSTEM_PROCEDURES.get(statement.name.object_name.lower())
            if handler is not None:
                args = [self._eval_scalar(arg, state) for arg in statement.args]
                for result_set in handler(self.server, state, *args):
                    state.result.result_sets.append(result_set)
                return
        procedure = self.server.catalog.resolve_procedure(
            statement.name, state.session)
        assert procedure is not None
        variables: dict[str, object] = {}
        params = list(procedure.params)
        if len(statement.args) > len(params):
            raise ExecutionError(
                f"procedure '{procedure.name}' takes {len(params)} arguments, "
                f"{len(statement.args)} given"
            )
        for index, param in enumerate(params):
            if index < len(statement.args):
                value = self._eval_scalar(statement.args[index], state)
            elif param.default is not None:
                value = self._eval_scalar(param.default, state)
            else:
                value = None
            variables[param.name] = param.sql_type.coerce(value)
        for param_name, expr in statement.named_args:
            matching = [p for p in params if p.name.lower() == param_name.lower()]
            if not matching:
                raise ExecutionError(
                    f"procedure '{procedure.name}' has no parameter {param_name}"
                )
            variables[matching[0].name] = matching[0].sql_type.coerce(
                self._eval_scalar(expr, state))
        for param in params:
            variables.setdefault(param.name, None)
        child = state.child_for_procedure(variables)
        for body_statement in procedure.body:
            self.execute(body_statement, child)
            if child.returned:
                break

    # ------------------------------------------------------------------
    # control flow / variables / misc

    def _execute_print(self, statement: PrintStatement,
                       state: ExecutionState) -> None:
        value = self._eval_scalar(statement.expr, state)
        from .evaluator import _as_text

        state.result.messages.append(_as_text(value))

    def _execute_declare(self, statement: DeclareStatement,
                         state: ExecutionState) -> None:
        for name, _sql_type in statement.variables:
            state.variables[name] = None

    def _execute_set(self, statement: SetStatement,
                     state: ExecutionState) -> None:
        state.variables[statement.name] = self._eval_scalar(statement.expr, state)

    def _execute_assign_select(self, statement: AssignSelect,
                               state: ExecutionState) -> None:
        sources: list[RowSource] = []
        tables: list[Table] = []
        for ref in statement.tables:
            table = self._resolve_table(ref.name, state)
            assert table is not None
            database_name = ref.name.database or state.session.database
            sources.append(self._source_for(ref, table, database_name))
            tables.append(table)
        env = RowEnvironment(sources)
        ctx = self._eval_context(state)
        aggregated = any(
            contains_aggregate(expr) for _name, expr in statement.assignments
        )
        if aggregated:
            # T-SQL allows `select @m = max(price) from t`: aggregate over
            # all qualifying rows, assign once.
            members: list[RowEnvironment] = []
            for _ in self._iterate_rows(sources, tables, statement.where, env, ctx):
                members.append(RowEnvironment([
                    RowSource(source.keys, source.schema,
                              list(source.row) if source.row is not None else None,
                              source.label)
                    for source in sources
                ]))
            representative = members[0] if members else env
            for name, expr in statement.assignments:
                state.variables[name] = self._eval_grouped(
                    expr, members, representative, ctx)
            return
        matched = 0
        for _ in self._iterate_rows(sources, tables, statement.where, env, ctx):
            matched += 1
            for name, expr in statement.assignments:
                state.variables[name] = evaluate(expr, env, ctx)
        if not statement.tables and matched == 0:
            # SELECT @x = expr with no FROM always assigns once.
            for name, expr in statement.assignments:
                state.variables[name] = self._eval_scalar(expr, state)

    def _execute_if(self, statement: IfStatement, state: ExecutionState) -> None:
        condition = self._eval_scalar(statement.condition, state)
        branch = statement.then_branch if is_true(condition) else statement.else_branch
        for inner in branch:
            self.execute(inner, state)
            if state.returned:
                return

    def _execute_while(self, statement: WhileStatement,
                       state: ExecutionState) -> None:
        iterations = 0
        while is_true(self._eval_scalar(statement.condition, state)):
            iterations += 1
            if iterations > MAX_LOOP_ITERATIONS:
                raise ExecutionError("WHILE loop exceeded the iteration limit")
            for inner in statement.body:
                self.execute(inner, state)
                if state.returned:
                    return

    def _execute_return(self, statement: ReturnStatement,
                        state: ExecutionState) -> None:
        if statement.expr is not None:
            state.return_value = self._eval_scalar(statement.expr, state)
        state.returned = True

    # ------------------------------------------------------------------
    # views and indexes

    def _execute_create_view(self, statement: CreateViewStatement,
                             state: ExecutionState) -> None:
        from .catalog import View

        database, owner, name = self.server.catalog.owner_for_create(
            statement.name, state.session)
        database.add_view(View(name=name, owner=owner,
                               select=statement.select,
                               source=statement.source))
        state.session.tx_log.record_undo(
            lambda db=database, o=owner, n=name: db.views.pop(
                (o.lower(), n.lower()), None)
        )

    def _execute_drop_view(self, statement: DropViewStatement,
                           state: ExecutionState) -> None:
        view = self.server.catalog.resolve_view(statement.name, state.session)
        if view is None:
            raise CatalogError(
                f"view '{statement.name.describe()}' does not exist")
        database = self._database_of(statement.name, state)
        database.drop_view(view.owner, view.name)
        state.session.tx_log.record_undo(
            lambda db=database, v=view: db.add_view(v)
        )

    def _execute_create_index(self, statement: CreateIndexStatement,
                              state: ExecutionState) -> None:
        table = self._resolve_table(statement.table, state)
        assert table is not None
        table.add_index(TableIndex(
            name=statement.name,
            column=statement.column,
            unique=statement.unique,
        ))
        state.session.tx_log.record_undo(
            lambda t=table, n=statement.name: t.indexes.pop(n.lower(), None)
        )

    def _execute_drop_index(self, statement: DropIndexStatement,
                            state: ExecutionState) -> None:
        table = self._resolve_table(statement.table, state)
        assert table is not None
        table.drop_index(statement.name)

    # ------------------------------------------------------------------
    # transactions

    def _execute_begin_tran(self, _statement: BeginTransactionStatement,
                            state: ExecutionState) -> None:
        state.session.tx_log.begin()
        state.session.global_vars["@@trancount"] = state.session.tx_log.depth
        if state.session.tx_log.depth == 1:
            # Outermost BEGIN: fine-grained batches must stand down until
            # this session's snapshot-based transaction resolves.
            self.server.lock_manager.note_transaction_begin(
                state.session.session_id)

    def _execute_commit(self, _statement: CommitStatement,
                        state: ExecutionState) -> None:
        depth = state.session.tx_log.commit()
        state.session.global_vars["@@trancount"] = depth
        if depth == 0:
            self.server.lock_manager.note_transaction_end(
                state.session.session_id)
            self.server.on_transaction_end(state.session, committed=True)

    def _execute_rollback(self, _statement: RollbackStatement,
                          state: ExecutionState) -> None:
        was_active = state.session.tx_log.active
        state.session.tx_log.rollback()
        state.session.global_vars["@@trancount"] = 0
        if was_active:
            self.server.lock_manager.note_transaction_end(
                state.session.session_id)
        self.server.on_transaction_end(state.session, committed=False)

    # ------------------------------------------------------------------
    # waitfor

    def _execute_waitfor(self, statement: WaitforStatement,
                         state: ExecutionState) -> None:
        delay = min(max(statement.seconds, 0.0), MAX_WAITFOR_SECONDS)
        if delay:
            _time.sleep(delay)

    # ------------------------------------------------------------------
    # EXPLAIN

    def _execute_explain(self, statement: ExplainStatement,
                         state: ExecutionState) -> None:
        lines = self._explain_lines(statement.target, state)
        result = ResultSet(columns=["plan"], rows=[[line] for line in lines])
        state.result.result_sets.append(result)
        state.result.rowcount = len(result.rows)
        state.session.global_vars["@@rowcount"] = len(result.rows)

    def _explain_lines(self, target: Statement, state: ExecutionState,
                       required: bool = True) -> list[str]:
        """The EXPLAIN text for one statement, always planned fresh so
        the estimates reflect live cardinalities and indexes.

        With ``required=False`` (the flight recorder's best-effort path)
        a statement that cannot be explained yields ``[]`` instead of an
        error.
        """
        if isinstance(target, SelectStatement):
            return self._explain_select(target, state)
        if isinstance(target, UnionSelect):
            lines = [f"Union [{len(target.parts)} branches]"]
            for part in target.parts:
                lines.extend(
                    "  " + line
                    for line in self._explain_select(part, state))
            return lines
        if isinstance(target, (UpdateStatement, DeleteStatement)):
            table = self._resolve_table(target.table, state)
            assert table is not None
            database_name = target.table.database or state.session.database
            source = self._source_for(
                TableRef(target.table, None), table, database_name)
            env = RowEnvironment([source])
            table_keys = (self._table_key(target.table, table, state),)
            if isinstance(target, UpdateStatement):
                kind = "update"
                columns = tuple(
                    column for column, _ in target.assignments)
            else:
                kind = "delete"
                columns = ()
            plan = planner.plan_dml(
                self, target, target.where, [source], [table], table_keys,
                env, self.server.catalog.schema_epoch, kind, columns)
            return planner.render_plan(plan.root)
        if isinstance(target, InsertValues):
            root = planner.InsertOp(
                child=planner.ValuesOp(row_count=len(target.rows)),
                table=target.table.describe(),
                columns=tuple(target.columns))
            return planner.render_plan(root)
        if isinstance(target, InsertSelect):
            select_plan = self._fresh_select_plan(target.select, state)
            root = planner.InsertOp(
                child=select_plan.root, table=target.table.describe(),
                columns=tuple(target.columns))
            return planner.render_plan(root)
        if required:
            raise ExecutionError(
                "EXPLAIN supports SELECT, INSERT, UPDATE, and DELETE "
                "statements")
        return []

    def _fresh_select_plan(self, statement: SelectStatement,
                           state: ExecutionState):
        """Plan one SELECT outside the memo (EXPLAIN wants live numbers)."""
        sources: list[RowSource] = []
        tables: list[Table] = []
        table_keys: list[tuple] = []
        for ref in statement.tables:
            table = self._from_table(ref, state)
            database_name = ref.name.database or state.session.database
            sources.append(self._source_for(ref, table, database_name))
            tables.append(table)
            table_keys.append(self._table_key(ref.name, table, state))
        env = RowEnvironment(sources)
        return planner.plan_select(
            self, statement, sources, tables, tuple(table_keys), env,
            self.server.catalog.schema_epoch)

    def _explain_select(self, statement: SelectStatement,
                        state: ExecutionState) -> list[str]:
        """EXPLAIN lines for one SELECT: a join-order preamble (when the
        FROM has more than one table) above the operator tree."""
        plan = self._fresh_select_plan(statement, state)
        lines: list[str] = []
        if len(plan.order) > 1:
            labels = [
                statement.tables[position].alias
                or statement.tables[position].name.describe()
                for position in plan.order
            ]
            lines.append("join order: " + " -> ".join(labels))
        lines.extend(planner.render_plan(plan.root))
        return lines

    _HANDLERS: dict[type, object] = {}


Executor._HANDLERS = {
    SelectStatement: Executor._execute_select,
    UnionSelect: Executor._execute_union,
    CreateViewStatement: Executor._execute_create_view,
    DropViewStatement: Executor._execute_drop_view,
    CreateIndexStatement: Executor._execute_create_index,
    DropIndexStatement: Executor._execute_drop_index,
    AssignSelect: Executor._execute_assign_select,
    InsertValues: Executor._execute_insert_values,
    InsertSelect: Executor._execute_insert_select,
    UpdateStatement: Executor._execute_update,
    DeleteStatement: Executor._execute_delete,
    TruncateStatement: Executor._execute_truncate,
    CreateTableStatement: Executor._execute_create_table,
    DropTableStatement: Executor._execute_drop_table,
    AlterTableAddStatement: Executor._execute_alter_table,
    CreateDatabaseStatement: Executor._execute_create_database,
    DropDatabaseStatement: Executor._execute_drop_database,
    UseStatement: Executor._execute_use,
    CreateProcedureStatement: Executor._execute_create_procedure,
    DropProcedureStatement: Executor._execute_drop_procedure,
    CreateTriggerStatement: Executor._execute_create_trigger,
    DropTriggerStatement: Executor._execute_drop_trigger,
    ExecuteStatement: Executor._execute_execute,
    PrintStatement: Executor._execute_print,
    DeclareStatement: Executor._execute_declare,
    SetStatement: Executor._execute_set,
    IfStatement: Executor._execute_if,
    WhileStatement: Executor._execute_while,
    ReturnStatement: Executor._execute_return,
    WaitforStatement: Executor._execute_waitfor,
    ExplainStatement: Executor._execute_explain,
    BeginTransactionStatement: Executor._execute_begin_tran,
    CommitStatement: Executor._execute_commit,
    RollbackStatement: Executor._execute_rollback,
}


#: Statements that change the catalog's shape (tables, columns, views,
#: procedures, triggers, indexes, databases).  Each bumps the schema
#: epoch, invalidating every cached plan parsed before it.
_DDL_TYPES: frozenset[type] = frozenset({
    CreateTableStatement,
    DropTableStatement,
    AlterTableAddStatement,
    CreateDatabaseStatement,
    DropDatabaseStatement,
    CreateProcedureStatement,
    DropProcedureStatement,
    CreateTriggerStatement,
    DropTriggerStatement,
    CreateViewStatement,
    DropViewStatement,
    CreateIndexStatement,
    DropIndexStatement,
    # ROLLBACK can resurrect dropped objects via recorded undos, so it
    # counts as a catalog change for invalidation purposes.
    RollbackStatement,
})


#: AST class -> metrics label; irregular names pinned, the rest derived
#: from the class name (``CreateTableStatement`` -> ``create_table``).
_STATEMENT_KINDS: dict[type, str] = {
    InsertValues: "insert",
    InsertSelect: "insert",
    AssignSelect: "select_assign",
    UnionSelect: "select",
    SelectStatement: "select",
}


def _statement_kind(statement_type: type) -> str:
    kind = _STATEMENT_KINDS.get(statement_type)
    if kind is None:
        name = statement_type.__name__
        if name.endswith("Statement"):
            name = name[: -len("Statement")]
        kind = "".join(
            ("_" + char.lower()) if char.isupper() else char
            for char in name
        ).lstrip("_")
        _STATEMENT_KINDS[statement_type] = kind
    return kind


def _column_name(item: SelectItem) -> str:
    if item.alias:
        return item.alias
    expr = item.expr
    if isinstance(expr, ColumnRef):
        return expr.column_name
    if isinstance(expr, FunctionCall):
        return expr.name
    return ""


def _hashable(value: object) -> object:
    return value


def _null_safe_key(value: object) -> tuple:
    """Sort key placing NULLs first and avoiding cross-type comparisons."""
    if value is None:
        return (0, 0, 0)
    if isinstance(value, bool):
        return (1, 0, int(value))
    if isinstance(value, (int, float)):
        return (1, 0, value)
    if isinstance(value, _dt.datetime):
        return (1, 1, value.timestamp())
    return (1, 2, str(value))


def _sorted_rows(rows: list[list[object]], keys: list[tuple], order_by) -> list[list[object]]:
    paired = list(zip(keys, rows))
    # Sort by each key in reverse priority order for stability.
    for position in range(len(order_by) - 1, -1, -1):
        ascending = order_by[position].ascending
        paired.sort(key=lambda pair, p=position: pair[0][p], reverse=not ascending)
    return [row for _key, row in paired]


def _distinct(rows: list[list[object]]) -> list[list[object]]:
    seen: set = set()
    unique: list[list[object]] = []
    for row in rows:
        key = tuple(
            (value.timestamp() if isinstance(value, _dt.datetime) else value)
            for value in row
        )
        try:
            if key in seen:
                continue
            seen.add(key)
        except TypeError:
            if any(existing == row for existing in unique):
                continue
        unique.append(row)
    return unique


def _conjuncts(expr: Expression) -> list[Expression]:
    """Flatten top-level AND chains into their conjuncts."""
    if isinstance(expr, BinaryOp) and expr.op == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _expr_has_columns(expr: Expression) -> bool:
    """Whether an expression references any column (vs constants/vars)."""
    from .expressions import (
        Between,
        CaseExpr,
        Exists,
        InList,
        InSubquery,
        IsNull,
        ScalarSubquery,
        UnaryOp,
    )

    if isinstance(expr, ColumnRef):
        return True
    if isinstance(expr, (Exists, ScalarSubquery, InSubquery)):
        return True  # conservatively treat subqueries as row-dependent
    if isinstance(expr, UnaryOp):
        return _expr_has_columns(expr.operand)
    if isinstance(expr, BinaryOp):
        return _expr_has_columns(expr.left) or _expr_has_columns(expr.right)
    if isinstance(expr, FunctionCall):
        return any(_expr_has_columns(arg) for arg in expr.args)
    if isinstance(expr, InList):
        return _expr_has_columns(expr.operand) or any(
            _expr_has_columns(item) for item in expr.items)
    if isinstance(expr, Between):
        return any(_expr_has_columns(part)
                   for part in (expr.operand, expr.low, expr.high))
    if isinstance(expr, IsNull):
        return _expr_has_columns(expr.operand)
    if isinstance(expr, CaseExpr):
        parts = [part for part in (expr.operand, expr.default)
                 if part is not None]
        for when, then in expr.whens:
            parts.extend((when, then))
        return any(_expr_has_columns(part) for part in parts)
    return False


def _schema_from_result(result: ResultSet) -> TableSchema:
    """Infer a schema for a materialized result (views, UNION ... INTO)."""
    columns: list[Column] = []
    for index, name in enumerate(result.columns):
        if not name:
            raise ExecutionError(
                f"column {index + 1} of the result has no name; "
                "alias every computed column"
            )
        sql_type = SqlType.parse("varchar", 255)
        for row in result.rows:
            value = row[index]
            if value is None:
                continue
            if isinstance(value, bool):
                sql_type = SqlType.parse("bit")
            elif isinstance(value, int):
                sql_type = SqlType.parse("int")
            elif isinstance(value, float):
                sql_type = SqlType.parse("float")
            elif isinstance(value, _dt.datetime):
                sql_type = SqlType.parse("datetime")
            else:
                sql_type = SqlType.parse("varchar", max(30, len(str(value))))
            break
        columns.append(Column(name, sql_type, nullable=True))
    return TableSchema(columns)
