"""Statement AST nodes for the SQL dialect."""

from __future__ import annotations

from dataclasses import dataclass

from .expressions import Expression
from .types import SqlType


@dataclass(frozen=True)
class QualifiedName:
    """A 1- to 3-part object name: ``name``, ``owner.name``, or
    ``database.owner.name`` (Sybase's fully qualified form, which the
    agent's internal naming scheme of Section 5.1 relies on)."""

    parts: tuple[str, ...]

    def __post_init__(self) -> None:
        if not 1 <= len(self.parts) <= 3:
            raise ValueError(f"bad qualified name: {self.parts!r}")

    @property
    def object_name(self) -> str:
        return self.parts[-1]

    @property
    def owner(self) -> str | None:
        return self.parts[-2] if len(self.parts) >= 2 else None

    @property
    def database(self) -> str | None:
        return self.parts[0] if len(self.parts) == 3 else None

    def describe(self) -> str:
        return ".".join(self.parts)

    @classmethod
    def of(cls, text: str) -> "QualifiedName":
        """Build from dotted text, e.g. ``"sentineldb.sharma.stock"``."""
        return cls(tuple(text.split(".")))


class Statement:
    """Base class for all statement nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class ColumnDef:
    """One column declaration inside CREATE TABLE / ALTER TABLE ADD."""

    name: str
    sql_type: SqlType
    nullable: bool = True


@dataclass(frozen=True)
class SelectItem:
    """One select-list entry: an expression with an optional alias."""

    expr: Expression
    alias: str | None = None


@dataclass(frozen=True)
class TableRef:
    """A FROM-clause table with an optional alias."""

    name: QualifiedName
    alias: str | None = None


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY key."""

    expr: Expression
    ascending: bool = True


@dataclass(frozen=True)
class SelectStatement(Statement):
    """SELECT [DISTINCT] [TOP n] items [INTO t] FROM ... WHERE ...
    GROUP BY ... HAVING ... ORDER BY ..."""

    items: tuple[SelectItem, ...]
    tables: tuple[TableRef, ...] = ()
    where: Expression | None = None
    group_by: tuple[Expression, ...] = ()
    having: Expression | None = None
    order_by: tuple[OrderItem, ...] = ()
    into: QualifiedName | None = None
    distinct: bool = False
    top: int | None = None


@dataclass(frozen=True)
class UnionSelect(Statement):
    """``SELECT ... UNION [ALL] SELECT ... [ORDER BY ...]``.

    ``all_flags[i]`` says whether the UNION joining part ``i`` and part
    ``i+1`` was ``UNION ALL``.  The trailing ORDER BY applies to the
    combined result (T-SQL semantics).
    """

    parts: tuple[SelectStatement, ...]
    all_flags: tuple[bool, ...]
    order_by: tuple[OrderItem, ...] = ()
    into: QualifiedName | None = None


@dataclass(frozen=True)
class AssignSelect(Statement):
    """T-SQL variable assignment select: ``SELECT @x = expr [FROM ...]``."""

    assignments: tuple[tuple[str, Expression], ...]
    tables: tuple[TableRef, ...] = ()
    where: Expression | None = None


@dataclass(frozen=True)
class InsertValues(Statement):
    """``INSERT [INTO] t [(cols)] VALUES (...), (...)``."""

    table: QualifiedName
    columns: tuple[str, ...] = ()
    rows: tuple[tuple[Expression, ...], ...] = ()


@dataclass(frozen=True)
class InsertSelect(Statement):
    """``INSERT [INTO] t [(cols)] SELECT ...``."""

    table: QualifiedName
    select: SelectStatement
    columns: tuple[str, ...] = ()


@dataclass(frozen=True)
class UpdateStatement(Statement):
    """``UPDATE t SET col = expr, ... [WHERE ...]``."""

    table: QualifiedName
    assignments: tuple[tuple[str, Expression], ...]
    where: Expression | None = None


@dataclass(frozen=True)
class DeleteStatement(Statement):
    """``DELETE [FROM] t [WHERE ...]`` (Sybase allows omitting FROM)."""

    table: QualifiedName
    where: Expression | None = None


@dataclass(frozen=True)
class TruncateStatement(Statement):
    """``TRUNCATE TABLE t`` — fast delete-all that skips triggers."""

    table: QualifiedName


@dataclass(frozen=True)
class CreateTableStatement(Statement):
    """``CREATE TABLE t (col type [null|not null], ...)``."""

    table: QualifiedName
    columns: tuple[ColumnDef, ...]


@dataclass(frozen=True)
class DropTableStatement(Statement):
    """``DROP TABLE t [, t2 ...]``."""

    tables: tuple[QualifiedName, ...]


@dataclass(frozen=True)
class AlterTableAddStatement(Statement):
    """``ALTER TABLE t ADD col type [null]``."""

    table: QualifiedName
    columns: tuple[ColumnDef, ...]


@dataclass(frozen=True)
class ProcedureParam:
    """One ``@name type [= default]`` procedure parameter."""

    name: str
    sql_type: SqlType
    default: Expression | None = None


@dataclass(frozen=True)
class CreateProcedureStatement(Statement):
    """``CREATE PROC[EDURE] name [params] AS body``.

    ``source`` preserves the original text so procedures can be persisted
    and re-created verbatim (the Persistent Manager stores procedure text
    in ``SysEcaTrigger.triggerProc``).
    """

    name: QualifiedName
    params: tuple[ProcedureParam, ...]
    body: tuple[Statement, ...]
    source: str = ""


@dataclass(frozen=True)
class DropProcedureStatement(Statement):
    """``DROP PROC[EDURE] name``."""

    name: QualifiedName


@dataclass(frozen=True)
class ExecuteStatement(Statement):
    """``EXEC[UTE] name [arg, ...]`` with positional or ``@p =`` args."""

    name: QualifiedName
    args: tuple[Expression, ...] = ()
    named_args: tuple[tuple[str, Expression], ...] = ()


@dataclass(frozen=True)
class CreateTriggerStatement(Statement):
    """Native trigger DDL: ``CREATE TRIGGER tr ON t FOR op[, op] AS body``."""

    name: QualifiedName
    table: QualifiedName
    operations: tuple[str, ...]  # subset of ('insert', 'update', 'delete')
    body: tuple[Statement, ...]
    source: str = ""


@dataclass(frozen=True)
class DropTriggerStatement(Statement):
    """``DROP TRIGGER tr``."""

    name: QualifiedName


@dataclass(frozen=True)
class CreateViewStatement(Statement):
    """``CREATE VIEW v AS SELECT ...`` — a named stored query."""

    name: QualifiedName
    select: "SelectStatement | UnionSelect"
    source: str = ""


@dataclass(frozen=True)
class DropViewStatement(Statement):
    """``DROP VIEW v``."""

    name: QualifiedName


@dataclass(frozen=True)
class CreateIndexStatement(Statement):
    """``CREATE [UNIQUE] INDEX i ON t (col)`` — equality lookup index."""

    name: str
    table: QualifiedName
    column: str
    unique: bool = False


@dataclass(frozen=True)
class DropIndexStatement(Statement):
    """``DROP INDEX t.i`` (Sybase spelling: table-qualified index name)."""

    table: QualifiedName
    name: str


@dataclass(frozen=True)
class CreateDatabaseStatement(Statement):
    """``CREATE DATABASE name``."""

    name: str


@dataclass(frozen=True)
class DropDatabaseStatement(Statement):
    """``DROP DATABASE name``."""

    name: str


@dataclass(frozen=True)
class UseStatement(Statement):
    """``USE dbname`` — switch the session's current database."""

    name: str


@dataclass(frozen=True)
class PrintStatement(Statement):
    """``PRINT expr`` — emit an informational message."""

    expr: Expression


@dataclass(frozen=True)
class DeclareStatement(Statement):
    """``DECLARE @x type [, @y type ...]``."""

    variables: tuple[tuple[str, SqlType], ...]


@dataclass(frozen=True)
class SetStatement(Statement):
    """``SET @x = expr``."""

    name: str
    expr: Expression


@dataclass(frozen=True)
class IfStatement(Statement):
    """``IF cond stmt [ELSE stmt]`` with BEGIN/END blocks."""

    condition: Expression
    then_branch: tuple[Statement, ...]
    else_branch: tuple[Statement, ...] = ()


@dataclass(frozen=True)
class WhileStatement(Statement):
    """``WHILE cond stmt``."""

    condition: Expression
    body: tuple[Statement, ...]


@dataclass(frozen=True)
class BeginTransactionStatement(Statement):
    """``BEGIN TRAN[SACTION]``."""


@dataclass(frozen=True)
class CommitStatement(Statement):
    """``COMMIT [TRAN|WORK]``."""


@dataclass(frozen=True)
class RollbackStatement(Statement):
    """``ROLLBACK [TRAN|WORK]``."""


@dataclass(frozen=True)
class ReturnStatement(Statement):
    """``RETURN [expr]`` inside a procedure or trigger body."""

    expr: Expression | None = None


@dataclass(frozen=True)
class WaitforStatement(Statement):
    """``WAITFOR DELAY "hh:mm[:ss[.mmm]]"`` — pause the current batch.

    The delay is parsed to seconds at parse time.  The executor sleeps
    without holding the Python interpreter, which makes WAITFOR the
    honest way to model service/IO latency in load benchmarks: sleeping
    batches overlap across worker threads.
    """

    seconds: float


@dataclass(frozen=True)
class ExplainStatement(Statement):
    """``EXPLAIN <statement>`` — show the optimized operator DAG.

    The target is parsed but not executed; the executor plans it fresh
    (live cardinality estimates, current indexes) and returns the
    indented operator tree as an ordinary one-column result set.  Pairs
    with the agent's ``explain trigger`` admin command, which covers the
    ECA side of the pipeline.
    """

    target: Statement
