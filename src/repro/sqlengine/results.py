"""Result sets — the engine's analogue of Sybase's Tabular Data Stream.

A single batch of SQL can produce several result sets (each SELECT yields
one) plus informational messages (``print`` output, ``syb_sendmsg`` status,
row counts).  :class:`BatchResult` bundles everything a client receives for
one ``execute`` call; the gateway forwards these objects unmodified, which
is what makes the mediator transparent (E-FIG1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .types import format_datetime


@dataclass
class ResultSet:
    """One tabular result: ordered column names and rows of Python values."""

    columns: list[str]
    rows: list[list[object]] = field(default_factory=list)

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self):
        return iter(self.rows)

    def column_index(self, name: str) -> int:
        """Index of a column by case-insensitive name."""
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.lower() == lowered:
                return index
        raise KeyError(name)

    def column_values(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict[str, object]]:
        """Rows as dictionaries keyed by column name."""
        return [dict(zip(self.columns, row)) for row in self.rows]

    def scalar(self) -> object:
        """The single value of a 1x1 result (raises if not 1x1)."""
        if len(self.rows) != 1 or len(self.columns) != 1:
            raise ValueError(
                f"expected a 1x1 result, got {len(self.rows)}x{len(self.columns)}"
            )
        return self.rows[0][0]

    def format_table(self) -> str:
        """Pretty-print as an aligned text table (for examples/benches)."""
        rendered = [[_render(value) for value in row] for row in self.rows]
        widths = [len(name) for name in self.columns]
        for row in rendered:
            for index, cell in enumerate(row):
                widths[index] = max(widths[index], len(cell))
        header = "  ".join(
            name.ljust(widths[index]) for index, name in enumerate(self.columns)
        )
        rule = "  ".join("-" * width for width in widths)
        body = [
            "  ".join(cell.ljust(widths[index]) for index, cell in enumerate(row))
            for row in rendered
        ]
        return "\n".join([header, rule, *body])


def _render(value: object) -> str:
    if value is None:
        return "NULL"
    import datetime as _dt

    if isinstance(value, _dt.datetime):
        return format_datetime(value)
    return str(value)


@dataclass
class BatchResult:
    """Everything returned for one executed batch.

    Attributes:
        result_sets: tabular results, in statement order.
        messages: informational messages (``print`` output etc.), in order.
        rowcount: rows affected by the last DML statement in the batch.
    """

    result_sets: list[ResultSet] = field(default_factory=list)
    messages: list[str] = field(default_factory=list)
    rowcount: int = 0

    @property
    def last(self) -> ResultSet | None:
        """The final result set of the batch, if any."""
        return self.result_sets[-1] if self.result_sets else None

    def merge(self, other: "BatchResult") -> None:
        """Append another batch's output (used when procedures nest)."""
        self.result_sets.extend(other.result_sets)
        self.messages.extend(other.messages)
        self.rowcount = other.rowcount

    def format(self) -> str:
        """Render messages and result sets the way a CLI client would."""
        parts: list[str] = list(self.messages)
        parts.extend(result.format_table() for result in self.result_sets)
        return "\n".join(parts)
