"""Tokenizer for the engine's T-SQL-like dialect.

Produces a flat list of :class:`Token`.  Handles ``--`` and ``/* */``
comments, single- and double-quoted string literals (Sybase treats both as
strings by default), numbers, ``@local`` variables, and multi-character
operators.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import SqlParseError

# Token kinds
IDENT = "IDENT"       # identifiers and keywords (parser decides which)
VARIABLE = "VARIABLE"  # @name local variables / procedure parameters
NUMBER = "NUMBER"
STRING = "STRING"
OP = "OP"             # operators and punctuation
EOF = "EOF"

_TWO_CHAR_OPS = {"<>", "!=", "<=", ">=", "==", "*="}
_ONE_CHAR_OPS = set("+-*/%(),.=<>;")


@dataclass(frozen=True)
class Token:
    """One lexical token with its source position (1-based)."""

    kind: str
    value: object
    line: int
    column: int
    offset: int = 0  # character offset of the token start in the batch text

    @property
    def upper(self) -> str:
        """Uppercased text for keyword comparison (IDENT/OP only)."""
        return str(self.value).upper()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Token({self.kind}, {self.value!r}@{self.line}:{self.column})"


def tokenize(text: str) -> list[Token]:
    """Tokenize a SQL batch; raises :class:`SqlParseError` on bad input."""
    tokens: list[Token] = []
    index = 0
    line = 1
    line_start = 0
    length = len(text)

    def position() -> tuple[int, int]:
        return line, index - line_start + 1

    while index < length:
        char = text[index]

        if char == "\n":
            line += 1
            index += 1
            line_start = index
            continue
        if char in " \t\r":
            index += 1
            continue

        # -- line comment
        if char == "-" and text.startswith("--", index):
            while index < length and text[index] != "\n":
                index += 1
            continue

        # /* block comment */ (non-nesting, like Sybase)
        if char == "/" and text.startswith("/*", index):
            end = text.find("*/", index + 2)
            if end == -1:
                raise SqlParseError("unterminated comment", *position())
            segment = text[index : end + 2]
            newlines = segment.count("\n")
            if newlines:
                line += newlines
                line_start = index + segment.rfind("\n") + 1
            index = end + 2
            continue

        # string literals: '...' or "..." with doubled-quote escaping
        if char in ("'", '"'):
            tok_line, tok_col = position()
            tok_offset = index
            quote = char
            index += 1
            pieces: list[str] = []
            while True:
                if index >= length:
                    raise SqlParseError("unterminated string literal", tok_line, tok_col)
                current = text[index]
                if current == quote:
                    if index + 1 < length and text[index + 1] == quote:
                        pieces.append(quote)
                        index += 2
                        continue
                    index += 1
                    break
                if current == "\n":
                    line += 1
                    line_start = index + 1
                pieces.append(current)
                index += 1
            tokens.append(Token(STRING, "".join(pieces), tok_line, tok_col, tok_offset))
            continue

        # numbers: 123, 1.5, .5, 1e3
        if char.isdigit() or (char == "." and index + 1 < length and text[index + 1].isdigit()):
            tok_line, tok_col = position()
            start = index
            has_dot = False
            has_exp = False
            while index < length:
                current = text[index]
                if current.isdigit():
                    index += 1
                elif current == "." and not has_dot and not has_exp:
                    has_dot = True
                    index += 1
                elif current in "eE" and not has_exp and index > start:
                    nxt = text[index + 1] if index + 1 < length else ""
                    if nxt.isdigit() or (
                        nxt in "+-" and index + 2 < length and text[index + 2].isdigit()
                    ):
                        has_exp = True
                        index += 2 if nxt in "+-" else 1
                    else:
                        break
                else:
                    break
            literal = text[start:index]
            value: object
            if has_dot or has_exp:
                value = float(literal)
            else:
                value = int(literal)
            tokens.append(Token(NUMBER, value, tok_line, tok_col, start))
            continue

        # @variables
        if char == "@":
            tok_line, tok_col = position()
            start = index
            index += 1
            while index < length and (text[index].isalnum() or text[index] in "_@#$"):
                index += 1
            if index == start + 1:
                raise SqlParseError("lone '@' is not a valid token", tok_line, tok_col)
            tokens.append(Token(VARIABLE, text[start:index], tok_line, tok_col, start))
            continue

        # identifiers / keywords (allow #temp names and embedded $)
        if char.isalpha() or char in "_#[":
            tok_line, tok_col = position()
            if char == "[":
                # bracket-quoted identifier
                end = text.find("]", index + 1)
                if end == -1:
                    raise SqlParseError("unterminated [identifier]", tok_line, tok_col)
                tokens.append(Token(IDENT, text[index + 1 : end], tok_line, tok_col, index))
                index = end + 1
                continue
            start = index
            while index < length and (text[index].isalnum() or text[index] in "_#$"):
                index += 1
            tokens.append(Token(IDENT, text[start:index], tok_line, tok_col, start))
            continue

        # operators / punctuation
        two = text[index : index + 2]
        if two in _TWO_CHAR_OPS:
            tok_line, tok_col = position()
            tokens.append(Token(OP, two, tok_line, tok_col, index))
            index += 2
            continue
        if char in _ONE_CHAR_OPS:
            tok_line, tok_col = position()
            tokens.append(Token(OP, char, tok_line, tok_col, index))
            index += 1
            continue

        raise SqlParseError(f"unexpected character {char!r}", *position())

    tokens.append(Token(EOF, None, line, index - line_start + 1, index))
    return tokens
