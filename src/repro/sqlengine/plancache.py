"""The statement/plan cache: parsed batches keyed on batch text.

Parsing is the single largest fixed cost of executing a small statement
in this engine, and the hot paths of the ECA Agent re-issue the same
batch text over and over (generated native triggers, context-processing
refreshes, benchmark workloads).  The cache stores the parsed
``Statement`` tuple for a batch so a repeated batch executes with zero
re-tokenization.

Correctness model:

- Parsing is context-free in this dialect, but a cached plan must still
  never straddle a schema change: every entry records the catalog's
  *schema epoch* at parse time, and any DDL — even one that fails or
  crashes part-way — bumps the epoch (see ``Executor.execute``'s
  ``finally``), so stale or potentially poisoned entries miss and are
  re-parsed.
- Entries are immutable tuples; executors never mutate statement nodes.
- Eviction is LRU with a fixed capacity, so a workload with unbounded
  distinct batch text (e.g. literals inlined per row) cannot grow the
  cache without bound.

The cache keeps its own plain-int counters (always on, race-tolerant)
and can additionally report into a :class:`~repro.obs.MetricsRegistry`
attached by the server.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

#: Default number of distinct batch texts retained.
DEFAULT_CAPACITY = 512

#: Default number of optimized statement plans memoized alongside the
#: parsed batches (see :meth:`PlanCache.get_plan`).
DEFAULT_PLAN_CAPACITY = 512

#: Process default for newly constructed servers; the test suite's
#: parametrized fixture flips this to prove the cache is semantically
#: transparent (identical results force-enabled and force-disabled).
DEFAULT_ENABLED = True


class PlanCache:
    """An LRU cache of parsed batches with epoch-based invalidation."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool | None = None):
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = DEFAULT_ENABLED if enabled is None else enabled
        # text -> [epoch, statements, per-entry hit count]
        self._entries: "OrderedDict[str, list]" = OrderedDict()
        # id(statement) -> (statement, epoch, table_keys, plan).  The
        # strong statement reference keeps the id() stable: a memo slot
        # can only be found through the statement object it holds, so a
        # recycled id can never alias a different statement.
        self._plans: "OrderedDict[int, tuple]" = OrderedDict()
        self.plan_capacity = DEFAULT_PLAN_CAPACITY
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        self.plan_hits = 0
        self.plan_misses = 0
        #: per-origin hit/miss tallies ("client" batches vs LED-generated
        #: "rule" SQL vs "system"), so the composite-loop hit-rate gap
        #: (ROADMAP: ~0.45) can be attributed to a statement population
        self.origin_hits: dict[str, int] = {}
        self.origin_misses: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, text: str, epoch: int, origin: str | None = None):
        """The cached statements for ``text`` at ``epoch``, else None.

        An entry parsed under an older epoch is dropped (counted as an
        invalidation *and* a miss: the caller re-parses either way).
        ``origin`` classifies the lookup for the per-origin tallies.
        """
        with self._lock:
            entry = self._entries.get(text)
            if entry is None:
                self.misses += 1
                if origin is not None:
                    self.origin_misses[origin] = (
                        self.origin_misses.get(origin, 0) + 1)
                return None
            if entry[0] != epoch:
                del self._entries[text]
                self.invalidations += 1
                self.misses += 1
                if origin is not None:
                    self.origin_misses[origin] = (
                        self.origin_misses.get(origin, 0) + 1)
                return None
            self._entries.move_to_end(text)
            self.hits += 1
            entry[2] += 1
            if origin is not None:
                self.origin_hits[origin] = (
                    self.origin_hits.get(origin, 0) + 1)
            return entry[1]

    def put(self, text: str, epoch: int, statements) -> None:
        """Store a parsed batch (evicting the LRU entry at capacity)."""
        with self._lock:
            self._entries[text] = [epoch, tuple(statements), 0]
            self._entries.move_to_end(text)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def get_plan(self, statement, epoch: int, table_keys):
        """The memoized optimized plan for ``statement``, or None.

        A hit requires the *same statement object* (identity-checked
        against the memo's strong reference), the current schema epoch,
        and the same resolved ``table_keys`` — the per-execution
        (kind, database, owner, name, columns) fingerprint of every FROM
        source, which guards against name-resolution divergence between
        sessions (e.g. owner-fallback resolving to different tables).
        """
        if not self.enabled:
            return None
        with self._lock:
            slot = self._plans.get(id(statement))
            if (slot is None or slot[0] is not statement
                    or slot[1] != epoch or slot[2] != table_keys):
                self.plan_misses += 1
                return None
            self._plans.move_to_end(id(statement))
            self.plan_hits += 1
            return slot[3]

    def put_plan(self, statement, epoch: int, table_keys, plan) -> None:
        """Memoize an optimized plan (LRU at ``plan_capacity``)."""
        if not self.enabled:
            return
        with self._lock:
            self._plans[id(statement)] = (statement, epoch, table_keys, plan)
            self._plans.move_to_end(id(statement))
            while len(self._plans) > self.plan_capacity:
                self._plans.popitem(last=False)

    def has_plan(self, statement, epoch: int) -> bool:
        """Whether ``statement`` has a live plan memo at ``epoch``
        (used by ``show agent cache`` to label entries plan vs parse)."""
        with self._lock:
            slot = self._plans.get(id(statement))
            return (slot is not None and slot[0] is statement
                    and slot[1] == epoch)

    def entry_rows(self, count: int, epoch: int) -> list:
        """The ``count`` hottest batch entries as ``(text, kind, hits)``
        rows for ``show agent cache``: ``kind`` is ``"plan"`` when any
        statement of the batch has a live optimized-plan memo at the
        current epoch, else ``"parse"``."""
        with self._lock:
            snapshot = [(text, entry[0], entry[1], entry[2])
                        for text, entry in self._entries.items()]
        rows = []
        for text, entry_epoch, statements, hits in snapshot:
            kind = "parse"
            if entry_epoch == epoch and any(
                    self.has_plan(stmt, epoch) for stmt in statements):
                kind = "plan"
            rows.append((text, kind, hits))
        rows.sort(key=lambda row: (-row[2], row[0]))
        return rows[:count]

    def clear(self, reset_counters: bool = True) -> None:
        """Drop every entry (and, by default, zero the counters)."""
        with self._lock:
            self._entries.clear()
            self._plans.clear()
            if reset_counters:
                self.hits = 0
                self.misses = 0
                self.evictions = 0
                self.invalidations = 0
                self.plan_hits = 0
                self.plan_misses = 0
                self.origin_hits.clear()
                self.origin_misses.clear()

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses); 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, object]:
        """A snapshot of the cache's counters and occupancy."""
        with self._lock:
            origins = {}
            for origin in sorted(set(self.origin_hits)
                                 | set(self.origin_misses)):
                hits = self.origin_hits.get(origin, 0)
                misses = self.origin_misses.get(origin, 0)
                total = hits + misses
                origins[origin] = {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": round(hits / total, 4) if total else 0.0,
                }
            return {
                "enabled": self.enabled,
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": round(self.hit_rate, 4),
                "plans": len(self._plans),
                "plan_hits": self.plan_hits,
                "plan_misses": self.plan_misses,
                "origins": origins,
            }
