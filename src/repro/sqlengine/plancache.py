"""The statement/plan cache: parsed batches keyed on batch text.

Parsing is the single largest fixed cost of executing a small statement
in this engine, and the hot paths of the ECA Agent re-issue the same
batch text over and over (generated native triggers, context-processing
refreshes, benchmark workloads).  The cache stores the parsed
``Statement`` tuple for a batch so a repeated batch executes with zero
re-tokenization.

Correctness model:

- Parsing is context-free in this dialect, but a cached plan must still
  never straddle a schema change: every entry records the catalog's
  *schema epoch* at parse time, and any DDL — even one that fails or
  crashes part-way — bumps the epoch (see ``Executor.execute``'s
  ``finally``), so stale or potentially poisoned entries miss and are
  re-parsed.
- Entries are immutable tuples; executors never mutate statement nodes.
- Eviction is LRU with a fixed capacity, so a workload with unbounded
  distinct batch text (e.g. literals inlined per row) cannot grow the
  cache without bound.

The cache keeps its own plain-int counters (always on, race-tolerant)
and can additionally report into a :class:`~repro.obs.MetricsRegistry`
attached by the server.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

#: Default number of distinct batch texts retained.
DEFAULT_CAPACITY = 512

#: Process default for newly constructed servers; the test suite's
#: parametrized fixture flips this to prove the cache is semantically
#: transparent (identical results force-enabled and force-disabled).
DEFAULT_ENABLED = True


class PlanCache:
    """An LRU cache of parsed batches with epoch-based invalidation."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 enabled: bool | None = None):
        if capacity < 1:
            raise ValueError(f"plan cache capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.enabled = DEFAULT_ENABLED if enabled is None else enabled
        self._entries: "OrderedDict[str, tuple[int, tuple]]" = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self.invalidations = 0
        #: per-origin hit/miss tallies ("client" batches vs LED-generated
        #: "rule" SQL vs "system"), so the composite-loop hit-rate gap
        #: (ROADMAP: ~0.45) can be attributed to a statement population
        self.origin_hits: dict[str, int] = {}
        self.origin_misses: dict[str, int] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, text: str, epoch: int, origin: str | None = None):
        """The cached statements for ``text`` at ``epoch``, else None.

        An entry parsed under an older epoch is dropped (counted as an
        invalidation *and* a miss: the caller re-parses either way).
        ``origin`` classifies the lookup for the per-origin tallies.
        """
        with self._lock:
            entry = self._entries.get(text)
            if entry is None:
                self.misses += 1
                if origin is not None:
                    self.origin_misses[origin] = (
                        self.origin_misses.get(origin, 0) + 1)
                return None
            entry_epoch, statements = entry
            if entry_epoch != epoch:
                del self._entries[text]
                self.invalidations += 1
                self.misses += 1
                if origin is not None:
                    self.origin_misses[origin] = (
                        self.origin_misses.get(origin, 0) + 1)
                return None
            self._entries.move_to_end(text)
            self.hits += 1
            if origin is not None:
                self.origin_hits[origin] = (
                    self.origin_hits.get(origin, 0) + 1)
            return statements

    def put(self, text: str, epoch: int, statements) -> None:
        """Store a parsed batch (evicting the LRU entry at capacity)."""
        with self._lock:
            self._entries[text] = (epoch, tuple(statements))
            self._entries.move_to_end(text)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1

    def clear(self, reset_counters: bool = True) -> None:
        """Drop every entry (and, by default, zero the counters)."""
        with self._lock:
            self._entries.clear()
            if reset_counters:
                self.hits = 0
                self.misses = 0
                self.evictions = 0
                self.invalidations = 0
                self.origin_hits.clear()
                self.origin_misses.clear()

    @property
    def hit_rate(self) -> float:
        """hits / (hits + misses); 0.0 before any lookup."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict[str, object]:
        """A snapshot of the cache's counters and occupancy."""
        with self._lock:
            origins = {}
            for origin in sorted(set(self.origin_hits)
                                 | set(self.origin_misses)):
                hits = self.origin_hits.get(origin, 0)
                misses = self.origin_misses.get(origin, 0)
                total = hits + misses
                origins[origin] = {
                    "hits": hits,
                    "misses": misses,
                    "hit_rate": round(hits / total, 4) if total else 0.0,
                }
            return {
                "enabled": self.enabled,
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "invalidations": self.invalidations,
                "hit_rate": round(self.hit_rate, 4),
                "origins": origins,
            }
