"""Expression evaluation with SQL three-valued logic.

The evaluator walks :mod:`repro.sqlengine.expressions` trees against a
:class:`RowEnvironment` (the FROM-clause sources with their current rows)
and an execution context that supplies local variables, the session, and a
callback for running subqueries.  SQL ``NULL`` is Python ``None``;
comparisons involving NULL yield ``None`` (unknown), and WHERE treats
unknown as false, as the standard requires.
"""

from __future__ import annotations

import datetime as _dt
import re
from dataclasses import dataclass, field
from typing import Callable

from .errors import ExecutionError, SchemaError
from .expressions import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Exists,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    ScalarSubquery,
    Star,
    UnaryOp,
    VariableRef,
)
from .schema import TableSchema


@dataclass
class RowSource:
    """One FROM-clause table binding: the names it answers to, its schema,
    and the row currently bound during iteration."""

    keys: frozenset[str]  # lowercase dotted suffixes: alias / name / owner.name / db.owner.name
    schema: TableSchema
    row: list[object] | None = None
    label: str = ""

    def matches(self, qualifier: tuple[str, ...]) -> bool:
        """Whether a dotted qualifier (as written) refers to this source."""
        return ".".join(part.lower() for part in qualifier) in self.keys


@dataclass
class RowEnvironment:
    """The set of row sources visible to an expression, with an optional
    outer environment for correlated subqueries."""

    sources: list[RowSource] = field(default_factory=list)
    parent: "RowEnvironment | None" = None

    def resolve(self, ref: ColumnRef) -> tuple[RowSource, int]:
        """Find the source and column index for a column reference."""
        qualifier = ref.qualifier
        name = ref.column_name
        matches: list[tuple[RowSource, int]] = []
        for source in self.sources:
            if qualifier and not source.matches(qualifier):
                continue
            index = source.schema.index_of(name, required=False)
            if index is not None:
                matches.append((source, index))
        if len(matches) == 1:
            return matches[0]
        if len(matches) > 1:
            raise ExecutionError(f"ambiguous column name '{ref.describe()}'")
        if self.parent is not None:
            return self.parent.resolve(ref)
        raise SchemaError(f"unknown column '{ref.describe()}'")

    def lookup(self, ref: ColumnRef) -> object:
        source, index = self.resolve(ref)
        if source.row is None:
            raise ExecutionError(
                f"column '{ref.describe()}' referenced outside row context"
            )
        return source.row[index]


class EvalContext:
    """Everything an expression may consult besides the current rows.

    Attributes:
        variables: ``@name`` locals (procedure params, DECLAREd variables).
        session: the owning :class:`~repro.sqlengine.server.Session`.
        run_subquery: callback ``(select, env) -> list[rows]`` provided by
            the executor so subqueries reuse the full SELECT pipeline.
        functions: scalar builtin registry (name -> callable).
    """

    def __init__(
        self,
        session,
        variables: dict[str, object] | None = None,
        run_subquery: Callable | None = None,
        functions: dict[str, Callable] | None = None,
    ):
        self.session = session
        self.variables = variables if variables is not None else {}
        self.run_subquery = run_subquery
        self.functions = functions if functions is not None else {}


def evaluate(expr: Expression, env: RowEnvironment, ctx: EvalContext) -> object:
    """Evaluate an expression tree; returns a Python value or ``None``."""
    if isinstance(expr, Literal):
        return expr.value
    if isinstance(expr, ColumnRef):
        return env.lookup(expr)
    if isinstance(expr, VariableRef):
        if expr.name.startswith("@@"):
            # Server globals such as @@rowcount / @@trancount.
            return ctx.session.global_vars.get(expr.name.lower(), 0)
        if expr.name not in ctx.variables:
            raise ExecutionError(f"variable '{expr.name}' is not declared")
        return ctx.variables[expr.name]
    if isinstance(expr, UnaryOp):
        return _eval_unary(expr, env, ctx)
    if isinstance(expr, BinaryOp):
        return _eval_binary(expr, env, ctx)
    if isinstance(expr, FunctionCall):
        return _eval_function(expr, env, ctx)
    if isinstance(expr, IsNull):
        value = evaluate(expr.operand, env, ctx)
        result = value is None
        return (not result) if expr.negated else result
    if isinstance(expr, Between):
        return _eval_between(expr, env, ctx)
    if isinstance(expr, InList):
        return _eval_in_list(expr, env, ctx)
    if isinstance(expr, InSubquery):
        return _eval_in_subquery(expr, env, ctx)
    if isinstance(expr, Exists):
        rows = _run_subquery(expr.subquery, env, ctx)
        return bool(rows)
    if isinstance(expr, ScalarSubquery):
        rows = _run_subquery(expr.subquery, env, ctx)
        if not rows:
            return None
        if len(rows) > 1:
            raise ExecutionError("scalar subquery returned more than one row")
        if len(rows[0]) != 1:
            raise ExecutionError("scalar subquery must return one column")
        return rows[0][0]
    if isinstance(expr, CaseExpr):
        return _eval_case(expr, env, ctx)
    if isinstance(expr, Star):
        raise ExecutionError("'*' is only valid in a select list")
    raise ExecutionError(f"cannot evaluate expression node {type(expr).__name__}")


def _eval_case(expr: CaseExpr, env: RowEnvironment, ctx: EvalContext) -> object:
    if expr.operand is not None:
        subject = evaluate(expr.operand, env, ctx)
        for when, then in expr.whens:
            candidate = evaluate(when, env, ctx)
            if subject is not None and candidate is not None and \
                    _eval_comparison("=", subject, candidate):
                return evaluate(then, env, ctx)
    else:
        for when, then in expr.whens:
            if is_true(evaluate(when, env, ctx)):
                return evaluate(then, env, ctx)
    if expr.default is not None:
        return evaluate(expr.default, env, ctx)
    return None


def is_true(value: object) -> bool:
    """SQL truth test: NULL/unknown counts as false."""
    if value is None:
        return False
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0
    raise ExecutionError(f"expression of type {type(value).__name__} used as a condition")


# ----------------------------------------------------------------------
# operator evaluation


def _eval_unary(expr: UnaryOp, env: RowEnvironment, ctx: EvalContext) -> object:
    value = evaluate(expr.operand, env, ctx)
    if expr.op == "-":
        if value is None:
            return None
        if not isinstance(value, (int, float)):
            raise ExecutionError(f"cannot negate {value!r}")
        return -value
    if expr.op == "NOT":
        if value is None:
            return None
        return not is_true(value)
    raise ExecutionError(f"unknown unary operator {expr.op}")


def _eval_binary(expr: BinaryOp, env: RowEnvironment, ctx: EvalContext) -> object:
    op = expr.op

    if op == "AND":
        left = evaluate(expr.left, env, ctx)
        if left is not None and not is_true(left):
            return False
        right = evaluate(expr.right, env, ctx)
        if right is not None and not is_true(right):
            return False
        if left is None or right is None:
            return None
        return True
    if op == "OR":
        left = evaluate(expr.left, env, ctx)
        if left is not None and is_true(left):
            return True
        right = evaluate(expr.right, env, ctx)
        if right is not None and is_true(right):
            return True
        if left is None or right is None:
            return None
        return False

    left = evaluate(expr.left, env, ctx)
    right = evaluate(expr.right, env, ctx)

    if op in ("+", "-", "*", "/", "%"):
        return _eval_arithmetic(op, left, right)
    if op in ("=", "<>", "<", "<=", ">", ">="):
        return _eval_comparison(op, left, right)
    if op in ("LIKE", "NOT LIKE"):
        if left is None or right is None:
            return None
        matched = _like_match(str(left), str(right))
        return matched if op == "LIKE" else not matched
    raise ExecutionError(f"unknown binary operator {op}")


def _eval_arithmetic(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    # String concatenation with '+', as in T-SQL.
    if op == "+" and (isinstance(left, str) or isinstance(right, str)):
        return _as_text(left) + _as_text(right)
    if not isinstance(left, (int, float)) or not isinstance(right, (int, float)):
        raise ExecutionError(
            f"arithmetic on incompatible values {left!r} {op} {right!r}"
        )
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                if right == 0:
                    raise ExecutionError("division by zero")
                quotient = left // right
                # T-SQL integer division truncates toward zero.
                if quotient < 0 and left % right != 0:
                    quotient += 1
                return quotient
            return left / right
        if op == "%":
            if right == 0:
                raise ExecutionError("division by zero")
            return left - right * int(left / right)
    except ZeroDivisionError as exc:
        raise ExecutionError("division by zero") from exc
    raise ExecutionError(f"unknown arithmetic operator {op}")


def _eval_comparison(op: str, left: object, right: object) -> object:
    if left is None or right is None:
        return None
    left, right = _harmonize(left, right)
    try:
        if op == "=":
            return left == right
        if op == "<>":
            return left != right
        if op == "<":
            return left < right  # type: ignore[operator]
        if op == "<=":
            return left <= right  # type: ignore[operator]
        if op == ">":
            return left > right  # type: ignore[operator]
        if op == ">=":
            return left >= right  # type: ignore[operator]
    except TypeError as exc:
        raise ExecutionError(
            f"cannot compare {type(left).__name__} with {type(right).__name__}"
        ) from exc
    raise ExecutionError(f"unknown comparison operator {op}")


def _harmonize(left: object, right: object) -> tuple[object, object]:
    """Coerce mixed operand types the way the engine's comparisons expect."""
    if isinstance(left, bool):
        left = int(left)
    if isinstance(right, bool):
        right = int(right)
    if isinstance(left, (int, float)) and isinstance(right, str):
        try:
            right = float(right) if isinstance(left, float) else int(right)
        except ValueError:
            left = str(left)
    elif isinstance(right, (int, float)) and isinstance(left, str):
        try:
            left = float(left) if isinstance(right, float) else int(left)
        except ValueError:
            right = str(right)
    elif isinstance(left, _dt.datetime) and isinstance(right, str):
        from .types import parse_datetime

        right = parse_datetime(right)
    elif isinstance(right, _dt.datetime) and isinstance(left, str):
        from .types import parse_datetime

        left = parse_datetime(left)
    return left, right


def _eval_between(expr: Between, env: RowEnvironment, ctx: EvalContext) -> object:
    value = evaluate(expr.operand, env, ctx)
    low = evaluate(expr.low, env, ctx)
    high = evaluate(expr.high, env, ctx)
    if value is None or low is None or high is None:
        return None
    lower_ok = _eval_comparison(">=", value, low)
    upper_ok = _eval_comparison("<=", value, high)
    result = bool(lower_ok) and bool(upper_ok)
    return (not result) if expr.negated else result


def _eval_in_list(expr: InList, env: RowEnvironment, ctx: EvalContext) -> object:
    value = evaluate(expr.operand, env, ctx)
    if value is None:
        return None
    saw_null = False
    for item in expr.items:
        candidate = evaluate(item, env, ctx)
        if candidate is None:
            saw_null = True
            continue
        if _eval_comparison("=", value, candidate):
            return not expr.negated
    if saw_null:
        return None
    return expr.negated


def _eval_in_subquery(expr: InSubquery, env: RowEnvironment, ctx: EvalContext) -> object:
    value = evaluate(expr.operand, env, ctx)
    if value is None:
        return None
    rows = _run_subquery(expr.subquery, env, ctx)
    saw_null = False
    for row in rows:
        if len(row) != 1:
            raise ExecutionError("IN subquery must return one column")
        candidate = row[0]
        if candidate is None:
            saw_null = True
            continue
        if _eval_comparison("=", value, candidate):
            return not expr.negated
    if saw_null:
        return None
    return expr.negated


def _run_subquery(select, env: RowEnvironment, ctx: EvalContext) -> list[list[object]]:
    if ctx.run_subquery is None:
        raise ExecutionError("subqueries are not available in this context")
    return ctx.run_subquery(select, env)


def _like_match(value: str, pattern: str) -> bool:
    """SQL LIKE with ``%`` and ``_`` wildcards and ``[set]`` classes."""
    regex_parts: list[str] = []
    index = 0
    while index < len(pattern):
        char = pattern[index]
        if char == "%":
            regex_parts.append(".*")
        elif char == "_":
            regex_parts.append(".")
        elif char == "[":
            end = pattern.find("]", index)
            if end == -1:
                regex_parts.append(re.escape(char))
            else:
                inner = pattern[index + 1 : end]
                if inner.startswith("^"):
                    regex_parts.append(f"[^{re.escape(inner[1:])}]")
                else:
                    regex_parts.append(f"[{re.escape(inner)}]")
                index = end
        else:
            regex_parts.append(re.escape(char))
        index += 1
    return re.fullmatch("".join(regex_parts), value, re.IGNORECASE) is not None


# ----------------------------------------------------------------------
# scalar builtins


def _as_text(value: object) -> str:
    if value is None:
        return ""
    if isinstance(value, _dt.datetime):
        from .types import format_datetime

        return format_datetime(value)
    if isinstance(value, float) and value == int(value):
        return str(value)
    return str(value)


def _eval_function(expr: FunctionCall, env: RowEnvironment, ctx: EvalContext) -> object:
    name = expr.name
    if name in AGGREGATE_FUNCTIONS:
        raise ExecutionError(
            f"aggregate function {name}() is only valid in a select list "
            "or HAVING clause"
        )
    handler = ctx.functions.get(name)
    if handler is None:
        raise ExecutionError(f"unknown function {name}()")
    arg_exprs = list(expr.args)
    args: list[object] = []
    if (
        name in ("convert", "datediff", "dateadd", "datename")
        and arg_exprs
        and isinstance(arg_exprs[0], ColumnRef)
        and len(arg_exprs[0].parts) == 1
    ):
        # convert(varchar, x) / datediff(minute, a, b): the first argument
        # is a type or datepart keyword, which the parser necessarily read
        # as a column reference.
        args.append(arg_exprs.pop(0).describe())
    args.extend(evaluate(arg, env, ctx) for arg in arg_exprs)
    return handler(ctx, *args)


def compute_aggregate(
    call: FunctionCall,
    rows: list[RowEnvironment],
    ctx: EvalContext,
) -> object:
    """Evaluate one aggregate call over a group of row environments."""
    name = call.name
    if call.star:
        if name != "count":
            raise ExecutionError(f"{name}(*) is not valid")
        return len(rows)
    if len(call.args) != 1:
        raise ExecutionError(f"aggregate {name}() takes exactly one argument")
    values = [evaluate(call.args[0], env, ctx) for env in rows]
    values = [value for value in values if value is not None]
    if call.distinct:
        seen: list[object] = []
        for value in values:
            if value not in seen:
                seen.append(value)
        values = seen
    if name == "count":
        return len(values)
    if not values:
        return None
    if name == "sum":
        return sum(values)  # type: ignore[arg-type]
    if name == "avg":
        total = sum(values)  # type: ignore[arg-type]
        return total / len(values)
    if name == "min":
        return min(values)  # type: ignore[type-var]
    if name == "max":
        return max(values)  # type: ignore[type-var]
    raise ExecutionError(f"unknown aggregate {name}()")
