"""Expression AST nodes for the SQL dialect.

The evaluator lives in :mod:`repro.sqlengine.evaluator`; these classes are
plain dataclasses so they can be constructed by tests and by the agent's
code generator as well as by the parser.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from .statements import SelectStatement


class Expression:
    """Base class for all expression nodes."""

    __slots__ = ()


@dataclass(frozen=True)
class Literal(Expression):
    """A constant: number, string, or NULL (``value is None``)."""

    value: object


@dataclass(frozen=True)
class ColumnRef(Expression):
    """A possibly-qualified column reference.

    ``parts`` holds the dotted components as written, e.g.
    ``["stock", "price"]`` or ``["sentineldb", "sharma", "stock", "price"]``.
    The final component is the column name; any prefix identifies the table.
    """

    parts: tuple[str, ...]

    @property
    def column_name(self) -> str:
        return self.parts[-1]

    @property
    def qualifier(self) -> tuple[str, ...]:
        return self.parts[:-1]

    def describe(self) -> str:
        return ".".join(self.parts)


@dataclass(frozen=True)
class VariableRef(Expression):
    """A ``@local`` variable or procedure parameter reference."""

    name: str  # includes the leading '@'


@dataclass(frozen=True)
class UnaryOp(Expression):
    """Unary minus or logical NOT."""

    op: str  # '-' or 'NOT'
    operand: Expression


@dataclass(frozen=True)
class BinaryOp(Expression):
    """Arithmetic, comparison, LIKE, or logical AND/OR."""

    op: str  # '+', '-', '*', '/', '%', '=', '<>', '<', '<=', '>', '>=',
    # 'AND', 'OR', 'LIKE', 'NOT LIKE'
    left: Expression
    right: Expression


@dataclass(frozen=True)
class FunctionCall(Expression):
    """A builtin or aggregate call, e.g. ``getdate()`` or ``count(*)``."""

    name: str  # lowercased
    args: tuple[Expression, ...] = ()
    star: bool = False      # count(*)
    distinct: bool = False  # count(distinct x)


@dataclass(frozen=True)
class InList(Expression):
    """``expr [NOT] IN (v1, v2, ...)``."""

    operand: Expression
    items: tuple[Expression, ...]
    negated: bool = False


@dataclass(frozen=True)
class InSubquery(Expression):
    """``expr [NOT] IN (SELECT ...)``."""

    operand: Expression
    subquery: "SelectStatement"
    negated: bool = False


@dataclass(frozen=True)
class Between(Expression):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expression
    low: Expression
    high: Expression
    negated: bool = False


@dataclass(frozen=True)
class IsNull(Expression):
    """``expr IS [NOT] NULL``."""

    operand: Expression
    negated: bool = False


@dataclass(frozen=True)
class Exists(Expression):
    """``EXISTS (SELECT ...)``."""

    subquery: "SelectStatement"


@dataclass(frozen=True)
class ScalarSubquery(Expression):
    """A parenthesized SELECT used as a scalar value."""

    subquery: "SelectStatement"


@dataclass(frozen=True)
class Star(Expression):
    """``*`` or ``alias.*`` in a select list."""

    qualifier: tuple[str, ...] = ()


@dataclass(frozen=True)
class CaseExpr(Expression):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``.

    With an ``operand``, each WHEN is compared for equality against it
    (simple CASE); without, each WHEN is a boolean condition (searched
    CASE).
    """

    whens: tuple[tuple[Expression, Expression], ...]
    operand: Expression | None = None
    default: Expression | None = None


#: Aggregate function names recognized by the executor.
AGGREGATE_FUNCTIONS = frozenset({"count", "sum", "avg", "min", "max"})


def contains_aggregate(expr: Expression) -> bool:
    """Whether the expression tree contains an aggregate call."""
    if isinstance(expr, FunctionCall):
        if expr.name in AGGREGATE_FUNCTIONS:
            return True
        return any(contains_aggregate(arg) for arg in expr.args)
    if isinstance(expr, UnaryOp):
        return contains_aggregate(expr.operand)
    if isinstance(expr, BinaryOp):
        return contains_aggregate(expr.left) or contains_aggregate(expr.right)
    if isinstance(expr, (InList,)):
        return contains_aggregate(expr.operand) or any(
            contains_aggregate(item) for item in expr.items
        )
    if isinstance(expr, Between):
        return (
            contains_aggregate(expr.operand)
            or contains_aggregate(expr.low)
            or contains_aggregate(expr.high)
        )
    if isinstance(expr, IsNull):
        return contains_aggregate(expr.operand)
    if isinstance(expr, CaseExpr):
        parts: list[Expression] = []
        if expr.operand is not None:
            parts.append(expr.operand)
        if expr.default is not None:
            parts.append(expr.default)
        for when, then in expr.whens:
            parts.extend((when, then))
        return any(contains_aggregate(part) for part in parts)
    return False
