"""Client-Library analogue: connections that speak to any SQL endpoint.

The paper's clients use Sybase Open Client to talk either to the SQL
Server directly or — transparently — to the ECA Agent's Gateway Open
Server.  Both endpoints here expose the same ``execute(sql) -> BatchResult``
surface, captured by the :class:`SqlEndpoint` protocol, so a client cannot
tell which one it is connected to (the transparency property of E-FIG1).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from .errors import SqlError
from .results import BatchResult
from .server import Session, SqlServer


@runtime_checkable
class SqlEndpoint(Protocol):
    """Anything a client connection can bind to: a server or a gateway."""

    def open_session(self, user: str, database: str | None) -> object:
        """Create server-side session state for one connection."""
        ...

    def execute_for(self, session: object, sql: str) -> BatchResult:
        """Run a script on behalf of a connection's session."""
        ...


class DirectEndpoint:
    """Adapter presenting a raw :class:`SqlServer` as a client endpoint."""

    def __init__(self, server: SqlServer):
        self.server = server

    def open_session(self, user: str, database: str | None) -> Session:
        return self.server.create_session(user, database)

    def execute_for(self, session: Session, sql: str) -> BatchResult:
        return self.server.execute(sql, session)


class ClientConnection:
    """A client connection to a server or gateway endpoint.

    Use as a context manager or call :meth:`close` explicitly::

        endpoint = DirectEndpoint(server)
        with ClientConnection(endpoint, user="sharma", database="sentineldb") as conn:
            result = conn.execute("select * from stock")
    """

    def __init__(self, endpoint: SqlEndpoint, user: str = "dbo",
                 database: str | None = None):
        self.endpoint = endpoint
        self.user = user
        self._session = endpoint.open_session(user, database)
        self._closed = False

    @property
    def session(self):
        """The server-side session object backing this connection."""
        return self._session

    def execute(self, sql: str) -> BatchResult:
        """Execute a script and return its merged results."""
        if self._closed:
            raise SqlError("connection is closed")
        return self.endpoint.execute_for(self._session, sql)

    def close(self) -> None:
        """Close the connection; further execute() calls raise."""
        self._closed = True
        session = self._session
        if session is not None and hasattr(session, "closed"):
            session.closed = True

    def __enter__(self) -> "ClientConnection":
        return self

    def __exit__(self, *_exc) -> None:
        self.close()


def connect(server: SqlServer, user: str = "dbo",
            database: str | None = None) -> ClientConnection:
    """Open a direct (non-mediated) connection to a server."""
    return ClientConnection(DirectEndpoint(server), user, database)
