"""Stored procedure catalog objects."""

from __future__ import annotations

from dataclasses import dataclass

from .statements import ProcedureParam, Statement


@dataclass
class Procedure:
    """A stored procedure: parameters, parsed body, and original source.

    The source text is kept verbatim because the ECA Agent's Persistent
    Manager stores procedure text in ``SysEcaTrigger.triggerProc`` and must
    be able to re-create the procedure after a restart.
    """

    name: str
    owner: str
    params: tuple[ProcedureParam, ...]
    body: tuple[Statement, ...]
    source: str

    @property
    def qualified_name(self) -> str:
        return f"{self.owner}.{self.name}"
