"""SQL value types and coercion rules for the engine's T-SQL-like dialect.

The engine supports the types the paper's generated code and system tables
use (Figures 5-7, 17): ``int``, ``float``, ``varchar(n)``, ``char(n)``,
``text``, ``datetime``, ``bit`` and ``numeric``.  SQL ``NULL`` is represented
by Python ``None`` throughout.
"""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass

from .errors import SqlTypeError

#: Canonical type-name spellings accepted by the parser, mapped to the
#: canonical name used internally.  ``numeric``/``decimal``/``real`` are
#: stored as floats; ``smallint``/``tinyint``/``bigint`` as ints.
_TYPE_ALIASES = {
    "int": "int",
    "integer": "int",
    "smallint": "int",
    "tinyint": "int",
    "bigint": "int",
    "float": "float",
    "real": "float",
    "numeric": "float",
    "decimal": "float",
    "double": "float",
    "varchar": "varchar",
    "char": "char",
    "nvarchar": "varchar",
    "nchar": "char",
    "text": "text",
    "datetime": "datetime",
    "date": "datetime",
    "bit": "bit",
}

#: Default lengths assigned when a declaration omits ``(n)``.
_DEFAULT_LENGTHS = {"varchar": 30, "char": 10}

#: Storage size in bytes reported by metadata queries, mirroring Sybase's
#: fixed sizes for the non-character types (Figure 5 reports datetime as 8
#: and int as 4).
_FIXED_SIZES = {"int": 4, "float": 8, "datetime": 8, "bit": 1, "text": 16}


@dataclass(frozen=True)
class SqlType:
    """A resolved column type: canonical ``name`` plus optional ``length``.

    Instances are immutable and hashable so schemas can be compared
    structurally (the system-table layout tests in E-FIG5/6/7 rely on this).
    """

    name: str
    length: int | None = None

    @classmethod
    def parse(cls, type_name: str, length: int | None = None) -> "SqlType":
        """Resolve a declared type name (any alias, any case) to a type.

        >>> SqlType.parse("VARCHAR", 30)
        SqlType(name='varchar', length=30)
        """
        canonical = _TYPE_ALIASES.get(type_name.lower())
        if canonical is None:
            raise SqlTypeError(f"unknown type name '{type_name}'")
        if canonical in ("varchar", "char"):
            if length is None:
                length = _DEFAULT_LENGTHS[canonical]
        elif length is not None:
            # Sybase ignores precision on e.g. numeric(10, 2); so do we.
            length = None
        return cls(canonical, length)

    @property
    def storage_length(self) -> int:
        """Byte length reported in ``sp_help``-style metadata output."""
        if self.length is not None:
            return self.length
        return _FIXED_SIZES.get(self.name, 8)

    def coerce(self, value: object) -> object:
        """Coerce ``value`` to this type, raising :class:`SqlTypeError`.

        ``None`` (SQL NULL) passes through every type unchanged; NOT NULL
        enforcement happens at the schema layer, not here.
        """
        if value is None:
            return None
        try:
            return _COERCERS[self.name](value, self)
        except SqlTypeError:
            raise
        except (ValueError, TypeError) as exc:
            raise SqlTypeError(
                f"cannot convert {value!r} to {self.describe()}"
            ) from exc

    def describe(self) -> str:
        """Render the type as it appears in DDL, e.g. ``varchar(30)``."""
        if self.length is not None:
            return f"{self.name}({self.length})"
        return self.name

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.describe()


def _coerce_int(value: object, _type: SqlType) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value != int(value):
            raise SqlTypeError(f"cannot convert non-integral {value!r} to int")
        return int(value)
    if isinstance(value, str):
        return int(value.strip())
    raise SqlTypeError(f"cannot convert {value!r} to int")


def _coerce_float(value: object, _type: SqlType) -> float:
    if isinstance(value, bool):
        return float(value)
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        return float(value.strip())
    raise SqlTypeError(f"cannot convert {value!r} to float")


def _coerce_str(value: object, sql_type: SqlType) -> str:
    if isinstance(value, _dt.datetime):
        text = format_datetime(value)
    elif isinstance(value, bool):
        text = "1" if value else "0"
    elif isinstance(value, (str, int, float)):
        text = str(value)
    else:
        raise SqlTypeError(f"cannot convert {value!r} to {sql_type.describe()}")
    if sql_type.length is not None and len(text) > sql_type.length:
        # Sybase truncates character data silently on insert.
        text = text[: sql_type.length]
    return text


def _coerce_text(value: object, sql_type: SqlType) -> str:
    return _coerce_str(value, SqlType("text", None))


def _coerce_datetime(value: object, _type: SqlType) -> _dt.datetime:
    if isinstance(value, _dt.datetime):
        return value
    if isinstance(value, str):
        return parse_datetime(value)
    if isinstance(value, (int, float)):
        return _dt.datetime.fromtimestamp(float(value))
    raise SqlTypeError(f"cannot convert {value!r} to datetime")


def _coerce_bit(value: object, _type: SqlType) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, (int, float)):
        return 1 if value else 0
    if isinstance(value, str):
        lowered = value.strip().lower()
        if lowered in ("1", "true"):
            return 1
        if lowered in ("0", "false"):
            return 0
    raise SqlTypeError(f"cannot convert {value!r} to bit")


_COERCERS = {
    "int": _coerce_int,
    "float": _coerce_float,
    "varchar": _coerce_str,
    "char": _coerce_str,
    "text": _coerce_text,
    "datetime": _coerce_datetime,
    "bit": _coerce_bit,
}

_DATETIME_FORMATS = (
    "%Y-%m-%d %H:%M:%S.%f",
    "%Y-%m-%d %H:%M:%S",
    "%Y-%m-%d %H:%M",
    "%Y-%m-%d",
    "%b %d %Y %I:%M%p",  # Sybase's default display format
    "%m/%d/%Y %H:%M:%S",
    "%m/%d/%Y",
)


def parse_datetime(text: str) -> _dt.datetime:
    """Parse a datetime literal in any of the accepted formats."""
    stripped = text.strip()
    for fmt in _DATETIME_FORMATS:
        try:
            return _dt.datetime.strptime(stripped, fmt)
        except ValueError:
            continue
    raise SqlTypeError(f"cannot parse datetime literal {text!r}")


def format_datetime(value: _dt.datetime) -> str:
    """Render a datetime the way result sets display it."""
    return value.strftime("%Y-%m-%d %H:%M:%S.%f")[:-3]


def sql_repr(value: object) -> str:
    """Render a Python value as a SQL literal (used by code generation)."""
    if value is None:
        return "NULL"
    if isinstance(value, str):
        escaped = value.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(value, _dt.datetime):
        return f"'{format_datetime(value)}'"
    if isinstance(value, bool):
        return "1" if value else "0"
    return str(value)
