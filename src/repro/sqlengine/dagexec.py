"""Batch-at-a-time execution of planner DAGs.

The relational part of a :class:`~repro.sqlengine.planner.SelectPlan`
(scans, joins, residual filter) executes here as a pull-based pipeline:
each stage consumes and produces *batches* of bindings (chunks of
:data:`BATCH_SIZE` row combinations) instead of the legacy walker's
one-row-at-a-time recursion.  A binding is ``(ordinals, rows)`` — one
row per FROM source in join order, tagged with each row's enumeration
ordinal within its scan so the final output can be restored to the
legacy FROM-order cross-product order no matter how the joins were
reordered.

Join strategies (resolved at runtime against the live table):

- ``probe`` — PR 4's per-outer-row index bucket lookup, kept whenever
  the planned index still exists (it preserves ``index_scans``
  accounting and exact legacy bucket order);
- ``hash`` — build a hash table over the scan's candidates keyed by the
  normalized join value, probe once per outer binding; only used when
  both columns share a comparison type family, which makes the hash
  key agree exactly with SQL ``=``;
- ``nested`` — plain cross product (no usable edge), with the equi
  conjunct still checked by the residual filter.

Everything downstream of the binding stream — projection, grouping,
ORDER BY, DISTINCT, TOP, INTO — reuses the legacy executor code
verbatim, which is what keeps planned output byte-identical.
"""

from __future__ import annotations

from .evaluator import evaluate, is_true
from .table import _index_key

__all__ = ["BATCH_SIZE", "dml_candidates", "select_bindings"]

#: Rows per exchanged chunk between pipeline stages.
BATCH_SIZE = 256


def _hash_join_key(value):
    """Normalized hash key for an equi-join value, or ``None`` for SQL
    NULL (NULL never equals anything, so NULL rows drop out of the
    build and probe sides alike — exactly ``=`` semantics)."""
    if value is None:
        return None
    return _index_key(value)


def _hint_rows(executor, hint, table, env, ctx):
    """Resolve a planned index hint against the *live* table.

    Returns ``(rows, kind)`` when the hinted index still exists —
    IN-list hints reproduce the legacy item-major candidate order (all
    rows of the first item, then the second, ...), which is observable
    in unsorted output and therefore part of the contract — or
    ``(None, None)`` when the hint is absent or stale (the caller falls
    back to a full heap scan, so a dropped index only costs speed).
    """
    if hint is None:
        return None, None
    table_index = table.index_on(hint.column)
    if table_index is None:
        return None, None
    if hint.kind == "eq":
        value = evaluate(hint.exprs[0], env, ctx)
        return table_index.lookup(table, value), hint.kind
    rows = []
    seen: set[int] = set()
    for item in hint.exprs:
        value = evaluate(item, env, ctx)
        for row in table_index.lookup(table, value):
            if id(row) not in seen:
                seen.add(id(row))
                rows.append(row)
    return rows, hint.kind


def select_bindings(executor, plan, sources, tables, env, ctx):
    """Generator matching ``Executor._iterate_rows``'s contract: bind
    each surviving row combination into ``sources`` in place (in legacy
    FROM-order), yielding once per binding."""
    if not sources:
        if not plan.empty and all(
                is_true(evaluate(c, env, ctx)) for c in plan.residual):
            yield
        return
    if len(plan.steps) == 1 and not plan.residual and not plan.empty:
        # Single-scan fast path: no join, no residual — stream the
        # scan's candidates without the batching pipeline (and without
        # the per-row ordinal tags only join reordering needs).
        server = executor.server
        accounting = server.accounting
        track = accounting is not None and accounting.active()
        step = plan.steps[0]
        source = sources[step.position]
        table = tables[step.position]
        rows, kind = _hint_rows(executor, step.hint, table, env, ctx)
        if rows is None:
            rows = list(table.rows)
        if kind is not None:
            executor._note_index_scan(kind)
        if track:
            accounting.note_scan(len(rows), 1 if kind else 0,
                                 0 if kind else 1)
        _flush_counts(server, {"scan": len(rows)})
        pushed = step.pushed
        try:
            for row in rows:
                source.row = row
                if not pushed or all(
                        is_true(evaluate(c, env, ctx)) for c in pushed):
                    yield
        finally:
            source.row = None
        return
    survivors = _relational(executor, plan, sources, tables, env, ctx)
    step_sources = [sources[position] for position in plan.order]
    try:
        for _ordinals, rows in survivors:
            for source, row in zip(step_sources, rows):
                source.row = row
            yield
    finally:
        for source in sources:
            source.row = None


def _relational(executor, plan, sources, tables, env, ctx) -> list:
    """Run the scan/join/filter pipeline; returns surviving bindings
    sorted into legacy FROM-order."""
    server = executor.server
    counts: dict[str, int] = {}
    if plan.empty:
        _flush_counts(server, counts)
        return []
    accounting = server.accounting
    track = accounting is not None and accounting.active()

    stream = iter([[((), ())]])
    bound: list[int] = []
    for step in plan.steps:
        stream = _apply_step(executor, step, stream, sources, tables,
                             env, ctx, list(bound), counts, track,
                             accounting)
        bound.append(step.position)
    if plan.residual:
        stream = _residual_stage(plan, stream, sources, env, ctx, counts)

    bindings = [binding for batch in stream for binding in batch]
    if plan.reordered:
        inverse = {position: index
                   for index, position in enumerate(plan.order)}
        width = len(plan.order)
        bindings.sort(key=lambda binding: tuple(
            binding[0][inverse[i]] for i in range(width)))
    _flush_counts(server, counts)
    return bindings


def _flush_counts(server, counts: dict) -> None:
    """Fold this execution's per-operator row counts into the metrics
    registry (one labeled increment per operator, not per row)."""
    if counts:
        server.note_plan_ops(counts)


def _apply_step(executor, step, upstream, sources, tables, env, ctx,
                bound, counts, track, accounting):
    """One pipeline stage: join the incoming bindings with one scan."""
    table = tables[step.position]
    spec = step.join
    strategy = "nested"
    index = None
    if spec is not None:
        if spec.strategy == "probe":
            index = table.index_on(spec.probe_column)
            if index is not None:
                strategy = "probe"
            elif spec.same_family:
                # Index dropped since planning: the hash join gives the
                # same matches because the columns share a type family.
                strategy = "hash"
        else:
            strategy = "hash"
    if strategy == "probe":
        return _probe_stage(executor, step, index, upstream, sources,
                            tables, env, ctx, bound, counts, track,
                            accounting)
    candidates = _scan_candidates(executor, step, sources, table, env,
                                  ctx, track, accounting, counts)
    label = "join" if bound else None
    if strategy == "hash":
        return _hash_stage(step, candidates, upstream, sources, env, ctx,
                           bound, counts)
    return _cross_stage(candidates, upstream, counts, label)


def _scan_candidates(executor, step, sources, table, env, ctx, track,
                     accounting, counts) -> list:
    """The ``(ordinal, row)`` candidates of one scan: index-narrowed
    when the planned hint's index still exists, full heap order
    otherwise, then filtered by the pushed predicates.

    IN-list hints reproduce the legacy item-major candidate order (all
    rows of the first item, then the second, ...), which is observable
    in unsorted output and therefore part of the contract.
    """
    source = sources[step.position]
    rows, kind = _hint_rows(executor, step.hint, table, env, ctx)
    if rows is None:
        rows = list(table.rows)
    if kind is not None:
        executor._note_index_scan(kind)
    if track:
        accounting.note_scan(len(rows), 1 if kind else 0,
                             0 if kind else 1)
    counts["scan"] = counts.get("scan", 0) + len(rows)
    if not step.pushed:
        return list(enumerate(rows))
    out = []
    for ordinal, row in enumerate(rows):
        source.row = row
        if all(is_true(evaluate(c, env, ctx)) for c in step.pushed):
            out.append((ordinal, row))
    source.row = None
    return out


def _cross_stage(candidates, upstream, counts, label):
    """Nested (cross) join: extend every binding with every candidate."""
    buffer: list = []
    for batch in upstream:
        for ordinals, rows in batch:
            for ordinal, row in candidates:
                buffer.append((ordinals + (ordinal,), rows + (row,)))
                if len(buffer) >= BATCH_SIZE:
                    if label:
                        counts[label] = counts.get(label, 0) + len(buffer)
                    yield buffer
                    buffer = []
    if buffer:
        if label:
            counts[label] = counts.get(label, 0) + len(buffer)
        yield buffer


def _hash_stage(step, candidates, upstream, sources, env, ctx, bound,
                counts):
    """Hash join: build once over this scan, probe per outer binding."""
    spec = step.join
    source = sources[step.position]
    build: dict = {}
    for ordinal, row in candidates:
        source.row = row
        key = _hash_join_key(evaluate(spec.inner_expr, env, ctx))
        if key is not None:
            build.setdefault(key, []).append((ordinal, row))
    source.row = None
    outer_source = sources[spec.outer_position]
    outer_index = bound.index(spec.outer_position)

    def stage():
        buffer: list = []
        for batch in upstream:
            for ordinals, rows in batch:
                outer_source.row = rows[outer_index]
                key = _hash_join_key(evaluate(spec.outer_expr, env, ctx))
                matches = build.get(key, ()) if key is not None else ()
                for ordinal, row in matches:
                    buffer.append((ordinals + (ordinal,), rows + (row,)))
                    if len(buffer) >= BATCH_SIZE:
                        counts["join"] = counts.get("join", 0) + len(buffer)
                        yield buffer
                        buffer = []
        if buffer:
            counts["join"] = counts.get("join", 0) + len(buffer)
            yield buffer

    return stage()


def _probe_stage(executor, step, index, upstream, sources, tables, env,
                 ctx, bound, counts, track, accounting):
    """Legacy index probe: per outer binding, look up the inner bucket."""
    spec = step.join
    table = tables[step.position]
    source = sources[step.position]
    outer_source = sources[spec.outer_position]
    outer_index = bound.index(spec.outer_position)
    executor._note_index_scan("join")
    if track:
        accounting.note_scan(0, 1, 0)

    def stage():
        buffer: list = []
        for batch in upstream:
            for ordinals, rows in batch:
                outer_source.row = rows[outer_index]
                value = evaluate(spec.outer_expr, env, ctx)
                bucket = index.lookup(table, value)
                if track:
                    accounting.note_rows(len(bucket))
                counts["scan"] = counts.get("scan", 0) + len(bucket)
                for ordinal, row in enumerate(bucket):
                    if step.pushed:
                        source.row = row
                        if not all(is_true(evaluate(c, env, ctx))
                                   for c in step.pushed):
                            continue
                    buffer.append((ordinals + (ordinal,), rows + (row,)))
                    if len(buffer) >= BATCH_SIZE:
                        counts["join"] = counts.get("join", 0) + len(buffer)
                        yield buffer
                        buffer = []
        if buffer:
            counts["join"] = counts.get("join", 0) + len(buffer)
            yield buffer

    return stage()


def _residual_stage(plan, upstream, sources, env, ctx, counts):
    """Filter bindings by the residual conjuncts (full legacy re-check)."""
    step_sources = [sources[position] for position in plan.order]

    def stage():
        buffer: list = []
        for batch in upstream:
            for ordinals, rows in batch:
                for source, row in zip(step_sources, rows):
                    source.row = row
                if all(is_true(evaluate(c, env, ctx))
                       for c in plan.residual):
                    buffer.append((ordinals, rows))
                    if len(buffer) >= BATCH_SIZE:
                        counts["filter"] = (
                            counts.get("filter", 0) + len(buffer))
                        yield buffer
                        buffer = []
        if buffer:
            counts["filter"] = counts.get("filter", 0) + len(buffer)
            yield buffer

    return stage()


def dml_candidates(executor, plan, source, table, env, ctx):
    """Candidate rows for a planned single-table UPDATE/DELETE.

    Returns the index-narrowed list when the plan's hint still resolves,
    else the table's *live* row list (identity preserved — the DELETE
    fast path keys on ``candidates is table.rows``).  The caller
    re-checks the full WHERE per candidate, exactly like the legacy
    path, so a stale hint can only cost speed.
    """
    rows, kind = _hint_rows(executor, plan.hint, table, env, ctx)
    if rows is None:
        return table.rows
    executor._note_index_scan(kind)
    executor.server.note_plan_ops({"scan": len(rows)})
    return rows
