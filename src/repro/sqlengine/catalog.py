"""System catalog: databases, and name resolution for tables, procedures
and triggers.

Objects live inside a database under an *owner* (a user name), exactly as
in Sybase, so fully qualified names are ``database.owner.object``.  Lookup
of an unqualified name tries the session user's schema first, then the
``dbo`` schema — the same fallback Sybase applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import CatalogError
from .procedures import Procedure
from .statements import QualifiedName
from .table import Table
from .triggers import Trigger

#: The default owner schema, as in Sybase.
DBO = "dbo"


def _key(owner: str, name: str) -> tuple[str, str]:
    return owner.lower(), name.lower()


@dataclass
class View:
    """A named stored query (``CREATE VIEW``), expanded at query time."""

    name: str
    owner: str
    select: object  # SelectStatement | UnionSelect
    source: str = ""

    @property
    def qualified_name(self) -> str:
        return f"{self.owner}.{self.name}"


@dataclass
class Database:
    """One database: its tables, views, stored procedures, and triggers."""

    name: str
    tables: dict[tuple[str, str], Table] = field(default_factory=dict)
    views: dict[tuple[str, str], View] = field(default_factory=dict)
    procedures: dict[tuple[str, str], Procedure] = field(default_factory=dict)
    triggers: dict[tuple[str, str], Trigger] = field(default_factory=dict)

    # -- tables --------------------------------------------------------

    def add_table(self, table: Table, replace: bool = False) -> None:
        key = _key(table.owner, table.name)
        if not replace and (key in self.tables or key in self.views):
            raise CatalogError(
                f"table '{table.owner}.{table.name}' already exists in "
                f"database '{self.name}'"
            )
        self.tables[key] = table

    def get_table(self, owner: str, name: str) -> Table | None:
        return self.tables.get(_key(owner, name))

    def find_table(self, name: str, preferred_owner: str) -> Table | None:
        """Resolve an unqualified table name: preferred owner, then dbo."""
        table = self.get_table(preferred_owner, name)
        if table is None and preferred_owner.lower() != DBO:
            table = self.get_table(DBO, name)
        return table

    def drop_table(self, owner: str, name: str) -> Table:
        key = _key(owner, name)
        table = self.tables.pop(key, None)
        if table is None:
            raise CatalogError(
                f"table '{owner}.{name}' does not exist in database '{self.name}'"
            )
        # Dropping a table drops its triggers, as in Sybase.
        doomed = [
            trig_key
            for trig_key, trigger in self.triggers.items()
            if _key(trigger.table_owner, trigger.table_name) == key
        ]
        for trig_key in doomed:
            del self.triggers[trig_key]
        return table

    # -- views -----------------------------------------------------------

    def add_view(self, view: View) -> None:
        key = _key(view.owner, view.name)
        if key in self.views or key in self.tables:
            raise CatalogError(
                f"object '{view.owner}.{view.name}' already exists in "
                f"database '{self.name}'"
            )
        self.views[key] = view

    def get_view(self, owner: str, name: str) -> View | None:
        return self.views.get(_key(owner, name))

    def find_view(self, name: str, preferred_owner: str) -> View | None:
        view = self.get_view(preferred_owner, name)
        if view is None and preferred_owner.lower() != DBO:
            view = self.get_view(DBO, name)
        return view

    def drop_view(self, owner: str, name: str) -> None:
        if self.views.pop(_key(owner, name), None) is None:
            raise CatalogError(f"view '{owner}.{name}' does not exist")

    # -- procedures ----------------------------------------------------

    def add_procedure(self, procedure: Procedure, replace: bool = False) -> None:
        key = _key(procedure.owner, procedure.name)
        if not replace and key in self.procedures:
            raise CatalogError(
                f"procedure '{procedure.owner}.{procedure.name}' already exists"
            )
        self.procedures[key] = procedure

    def get_procedure(self, owner: str, name: str) -> Procedure | None:
        return self.procedures.get(_key(owner, name))

    def find_procedure(self, name: str, preferred_owner: str) -> Procedure | None:
        procedure = self.get_procedure(preferred_owner, name)
        if procedure is None and preferred_owner.lower() != DBO:
            procedure = self.get_procedure(DBO, name)
        return procedure

    def drop_procedure(self, owner: str, name: str) -> None:
        if self.procedures.pop(_key(owner, name), None) is None:
            raise CatalogError(f"procedure '{owner}.{name}' does not exist")

    # -- triggers ------------------------------------------------------

    def add_trigger(self, trigger: Trigger) -> list[str]:
        """Install a trigger, silently displacing any existing trigger on
        the same (table, operation) — the Sybase behaviour the paper calls
        out ("No warning message is given before the overwrite occurs").

        Returns the names of displaced triggers.
        """
        displaced: list[str] = []
        table_key = _key(trigger.table_owner, trigger.table_name)
        for existing_key, existing in list(self.triggers.items()):
            if _key(existing.table_owner, existing.table_name) != table_key:
                continue
            if existing.name == trigger.name and existing.owner == trigger.owner:
                continue
            overlap = set(existing.operations) & set(trigger.operations)
            if overlap:
                displaced.append(existing.qualified_name)
                del self.triggers[existing_key]
        self.triggers[_key(trigger.owner, trigger.name)] = trigger
        return displaced

    def get_trigger(self, owner: str, name: str) -> Trigger | None:
        return self.triggers.get(_key(owner, name))

    def find_trigger(self, name: str, preferred_owner: str) -> Trigger | None:
        trigger = self.get_trigger(preferred_owner, name)
        if trigger is None and preferred_owner.lower() != DBO:
            trigger = self.get_trigger(DBO, name)
        return trigger

    def drop_trigger(self, owner: str, name: str) -> None:
        if self.triggers.pop(_key(owner, name), None) is None:
            raise CatalogError(f"trigger '{owner}.{name}' does not exist")

    def trigger_for(self, table: Table, operation: str) -> Trigger | None:
        """The trigger (if any) that fires for ``operation`` on ``table``."""
        table_key = _key(table.owner, table.name)
        for trigger in self.triggers.values():
            if (
                _key(trigger.table_owner, trigger.table_name) == table_key
                and trigger.fires_on(operation)
            ):
                return trigger
        return None


@dataclass
class Catalog:
    """All databases on one server."""

    databases: dict[str, Database] = field(default_factory=dict)
    #: Monotonic schema version; every DDL statement bumps it (even a DDL
    #: that fails part-way), and the server's plan cache refuses to serve
    #: any plan parsed under an older epoch.
    schema_epoch: int = 0

    def bump_schema_epoch(self) -> int:
        """Advance the schema epoch (called around every DDL statement)."""
        self.schema_epoch += 1
        return self.schema_epoch

    def create_database(self, name: str) -> Database:
        key = name.lower()
        if key in self.databases:
            raise CatalogError(f"database '{name}' already exists")
        database = Database(name)
        self.databases[key] = database
        return database

    def drop_database(self, name: str) -> None:
        if self.databases.pop(name.lower(), None) is None:
            raise CatalogError(f"database '{name}' does not exist")

    def get_database(self, name: str) -> Database:
        database = self.databases.get(name.lower())
        if database is None:
            raise CatalogError(f"database '{name}' does not exist")
        return database

    def has_database(self, name: str) -> bool:
        return name.lower() in self.databases

    # -- name resolution ------------------------------------------------

    def resolve_table(
        self, qname: QualifiedName, session, required: bool = True
    ) -> Table | None:
        """Resolve a 1- to 3-part table name relative to a session."""
        database, owner, name = self._split(qname, session)
        db = self.get_database(database)
        if owner is not None:
            table = db.get_table(owner, name)
        else:
            table = db.find_table(name, session.user)
        if table is None and required:
            raise CatalogError(f"table '{qname.describe()}' not found")
        return table

    def resolve_view(
        self, qname: QualifiedName, session
    ) -> View | None:
        """Resolve a view name relative to a session (None if absent)."""
        database, owner, name = self._split(qname, session)
        db = self.get_database(database)
        if owner is not None:
            return db.get_view(owner, name)
        return db.find_view(name, session.user)

    def resolve_procedure(
        self, qname: QualifiedName, session, required: bool = True
    ) -> Procedure | None:
        database, owner, name = self._split(qname, session)
        db = self.get_database(database)
        if owner is not None:
            procedure = db.get_procedure(owner, name)
        else:
            procedure = db.find_procedure(name, session.user)
        if procedure is None and required:
            raise CatalogError(f"procedure '{qname.describe()}' not found")
        return procedure

    def resolve_trigger(
        self, qname: QualifiedName, session, required: bool = True
    ) -> tuple[Database, Trigger] | None:
        database, owner, name = self._split(qname, session)
        db = self.get_database(database)
        if owner is not None:
            trigger = db.get_trigger(owner, name)
        else:
            trigger = db.find_trigger(name, session.user)
        if trigger is None:
            if required:
                raise CatalogError(f"trigger '{qname.describe()}' not found")
            return None
        return db, trigger

    def owner_for_create(self, qname: QualifiedName, session) -> tuple[Database, str, str]:
        """Where a CREATE places an object: (database, owner, name)."""
        database, owner, name = self._split(qname, session)
        return self.get_database(database), owner or session.user, name

    @staticmethod
    def _split(qname: QualifiedName, session) -> tuple[str, str | None, str]:
        database = qname.database or session.database
        return database, qname.owner, qname.object_name
