"""Native trigger catalog objects, with Sybase's documented restrictions.

Section 2.2 of the paper lists the native trigger limitations the ECA Agent
works around.  The ones that are *engine* behaviour are enforced here:

- a trigger applies to exactly one table;
- at most one trigger per (table, operation) — creating a new trigger for
  an operation that already has one silently replaces it, with no warning;
- triggers cannot be named events, cannot be reused, and know nothing of
  composite events (there is simply no such concept in the engine);
- trigger nesting is capped (Sybase's limit is 16 levels).
"""

from __future__ import annotations

from dataclasses import dataclass

from .statements import Statement

#: Maximum trigger nesting depth, matching Sybase.
MAX_TRIGGER_DEPTH = 16

OPERATIONS = ("insert", "update", "delete")


@dataclass
class Trigger:
    """A native statement-level trigger on one table.

    ``operations`` is the subset of insert/update/delete it fires for; the
    body sees the transition pseudo-tables ``inserted`` and ``deleted``.
    """

    name: str
    owner: str
    table_owner: str
    table_name: str
    operations: tuple[str, ...]
    body: tuple[Statement, ...]
    source: str

    @property
    def qualified_name(self) -> str:
        return f"{self.owner}.{self.name}"

    def fires_on(self, operation: str) -> bool:
        return operation in self.operations
