"""Scalar builtin functions, including the ``syb_sendmsg`` notification hook.

``syb_sendmsg(host, port, message)`` is the Sybase builtin the paper's
generated triggers call (Figure 11) to notify the ECA Agent over UDP.  Here
it delegates to the server's pluggable ``datagram_sink`` so the agent can
attach either a real UDP socket channel or an in-process queue.
"""

from __future__ import annotations

import datetime as _dt
from typing import Callable

from .errors import ExecutionError
from .types import format_datetime, parse_datetime


def _fn_getdate(ctx) -> _dt.datetime:
    """Current timestamp — drawn from the server clock so tests can freeze it."""
    return ctx.session.server.now()

def _fn_user_name(ctx) -> str:
    return ctx.session.user

def _fn_db_name(ctx) -> str:
    return ctx.session.database

def _fn_upper(ctx, value) -> object:
    return None if value is None else str(value).upper()

def _fn_lower(ctx, value) -> object:
    return None if value is None else str(value).lower()

def _fn_ltrim(ctx, value) -> object:
    return None if value is None else str(value).lstrip()

def _fn_rtrim(ctx, value) -> object:
    return None if value is None else str(value).rstrip()

def _fn_len(ctx, value) -> object:
    return None if value is None else len(str(value))

def _fn_abs(ctx, value) -> object:
    if value is None:
        return None
    if not isinstance(value, (int, float)):
        raise ExecutionError(f"abs() expects a number, got {value!r}")
    return abs(value)

def _fn_round(ctx, value, digits=0) -> object:
    if value is None:
        return None
    return round(float(value), int(digits))

def _fn_floor(ctx, value) -> object:
    import math

    return None if value is None else math.floor(float(value))

def _fn_ceiling(ctx, value) -> object:
    import math

    return None if value is None else math.ceil(float(value))

def _fn_isnull(ctx, value, fallback) -> object:
    return fallback if value is None else value

def _fn_coalesce(ctx, *values) -> object:
    for value in values:
        if value is not None:
            return value
    return None

def _fn_str(ctx, value, length=10) -> object:
    if value is None:
        return None
    text = str(value)
    return text[: int(length)]

def _fn_substring(ctx, value, start, length) -> object:
    if value is None:
        return None
    text = str(value)
    begin = max(int(start) - 1, 0)
    return text[begin : begin + int(length)]

def _fn_charindex(ctx, needle, haystack) -> object:
    if needle is None or haystack is None:
        return None
    return str(haystack).find(str(needle)) + 1

def _fn_convert(ctx, type_name, value) -> object:
    from .types import SqlType

    if not isinstance(type_name, str):
        raise ExecutionError("convert() first argument must be a type name")
    return SqlType.parse(type_name).coerce(value)

def _fn_datename(ctx, part, value) -> object:
    if value is None:
        return None
    if isinstance(value, str):
        value = parse_datetime(value)
    part = str(part).lower()
    mapping = {
        "year": "%Y", "yy": "%Y", "month": "%B", "mm": "%m", "day": "%d",
        "dd": "%d", "hour": "%H", "minute": "%M", "second": "%S",
        "weekday": "%A",
    }
    if part not in mapping:
        raise ExecutionError(f"unknown datename part {part!r}")
    return value.strftime(mapping[part])

_DATEDIFF_SECONDS = {
    "second": 1, "ss": 1, "minute": 60, "mi": 60, "hour": 3600, "hh": 3600,
    "day": 86400, "dd": 86400,
}

def _fn_datediff(ctx, part, start, end) -> object:
    if start is None or end is None:
        return None
    if isinstance(start, str):
        start = parse_datetime(start)
    if isinstance(end, str):
        end = parse_datetime(end)
    unit = _DATEDIFF_SECONDS.get(str(part).lower())
    if unit is None:
        raise ExecutionError(f"unknown datediff part {part!r}")
    return int((end - start).total_seconds() // unit)

def _fn_dateadd(ctx, part, amount, value) -> object:
    if value is None or amount is None:
        return None
    if isinstance(value, str):
        value = parse_datetime(value)
    unit = _DATEDIFF_SECONDS.get(str(part).lower())
    if unit is None:
        raise ExecutionError(f"unknown dateadd part {part!r}")
    return value + _dt.timedelta(seconds=unit * float(amount))

def _fn_format_datetime(ctx, value) -> object:
    if value is None:
        return None
    if isinstance(value, str):
        value = parse_datetime(value)
    return format_datetime(value)

def _fn_syb_sendmsg(ctx, host, port, message) -> int:
    """Send a datagram through the server's notification sink.

    Returns 0 on success like the Sybase builtin; raises if no sink is
    configured (the agent installs one at startup).
    """
    server = ctx.session.server
    server.send_datagram(str(host), int(port), str(message))
    return 0

def _fn_object_id(ctx, name) -> object:
    """Sybase-ish object_id(): non-NULL if the named table exists."""
    if name is None:
        return None
    from .statements import QualifiedName

    session = ctx.session
    try:
        qname = QualifiedName.of(str(name))
        table = session.server.catalog.resolve_table(qname, session, required=False)
    except Exception:
        return None
    if table is None:
        return None
    return abs(hash((table.owner, table.name))) % 2_000_000_000 + 1


def standard_functions() -> dict[str, Callable]:
    """The scalar builtin registry installed on every server."""
    return {
        "getdate": _fn_getdate,
        "user_name": _fn_user_name,
        "suser_name": _fn_user_name,
        "db_name": _fn_db_name,
        "upper": _fn_upper,
        "lower": _fn_lower,
        "ltrim": _fn_ltrim,
        "rtrim": _fn_rtrim,
        "len": _fn_len,
        "char_length": _fn_len,
        "datalength": _fn_len,
        "abs": _fn_abs,
        "round": _fn_round,
        "floor": _fn_floor,
        "ceiling": _fn_ceiling,
        "isnull": _fn_isnull,
        "coalesce": _fn_coalesce,
        "str": _fn_str,
        "substring": _fn_substring,
        "charindex": _fn_charindex,
        "convert": _fn_convert,
        "datename": _fn_datename,
        "datediff": _fn_datediff,
        "dateadd": _fn_dateadd,
        "format_datetime": _fn_format_datetime,
        "syb_sendmsg": _fn_syb_sendmsg,
        "object_id": _fn_object_id,
    }
