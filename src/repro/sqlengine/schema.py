"""Table schemas: ordered column definitions with case-insensitive lookup."""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import IntegrityError, SchemaError
from .types import SqlType


@dataclass(frozen=True)
class Column:
    """One column definition: name, resolved type, and nullability."""

    name: str
    sql_type: SqlType
    nullable: bool = True

    def describe(self) -> str:
        """Render the column as DDL, e.g. ``price float not null``."""
        null_clause = "null" if self.nullable else "not null"
        return f"{self.name} {self.sql_type.describe()} {null_clause}"


@dataclass
class TableSchema:
    """An ordered list of :class:`Column` with name-based access.

    Column names are matched case-insensitively (the friendlier of the two
    Sybase sort-order configurations), but their declared spelling is
    preserved for display.
    """

    columns: list[Column] = field(default_factory=list)

    def __post_init__(self) -> None:
        seen: set[str] = set()
        for column in self.columns:
            key = column.name.lower()
            if key in seen:
                raise SchemaError(f"duplicate column name '{column.name}'")
            seen.add(key)

    @property
    def column_names(self) -> list[str]:
        """Declared column names, in order."""
        return [column.name for column in self.columns]

    def __len__(self) -> int:
        return len(self.columns)

    def __iter__(self):
        return iter(self.columns)

    def has_column(self, name: str) -> bool:
        """Whether a column with this name (any case) exists."""
        return self.index_of(name, required=False) is not None

    def index_of(self, name: str, required: bool = True) -> int | None:
        """Position of the named column, or ``None``/raise when absent."""
        lowered = name.lower()
        for index, column in enumerate(self.columns):
            if column.name.lower() == lowered:
                return index
        if required:
            raise SchemaError(f"unknown column '{name}'")
        return None

    def column(self, name: str) -> Column:
        """The :class:`Column` with this name."""
        index = self.index_of(name)
        assert index is not None
        return self.columns[index]

    def add_column(self, column: Column) -> None:
        """Append a column (``ALTER TABLE ... ADD``).

        Sybase requires added columns to be nullable because existing rows
        receive NULL; we enforce the same rule.
        """
        if self.has_column(column.name):
            raise SchemaError(f"column '{column.name}' already exists")
        if not column.nullable:
            raise SchemaError(
                f"column '{column.name}' added by ALTER TABLE must allow nulls"
            )
        self.columns.append(column)

    def coerce_row(self, values: list[object]) -> list[object]:
        """Type-check and coerce a full-width row, enforcing NOT NULL."""
        if len(values) != len(self.columns):
            raise SchemaError(
                f"row has {len(values)} values but table has "
                f"{len(self.columns)} columns"
            )
        row: list[object] = []
        for column, value in zip(self.columns, values):
            coerced = column.sql_type.coerce(value)
            if coerced is None and not column.nullable:
                raise IntegrityError(
                    f"column '{column.name}' does not allow nulls"
                )
            row.append(coerced)
        return row

    def clone(self) -> "TableSchema":
        """Structural copy (columns are immutable so they are shared)."""
        return TableSchema(list(self.columns))

    def describe(self) -> str:
        """Render the schema as a parenthesized DDL column list."""
        inner = ", ".join(column.describe() for column in self.columns)
        return f"({inner})"
