"""Fine-grained engine locking: reader/writer locks and the lock manager.

Until this module existed the engine serialized every script under one
reentrant lock — a faithful model of a single scheduler, but a hard cap on
multi-session throughput.  The lock manager replaces that with a two-level
scheme decided per batch, *before* execution, from the parsed statements:

1. An engine-wide **gate** reader/writer lock.  Batches whose footprint
   can be analyzed statically (plain SELECT/INSERT/UPDATE/DELETE over
   resolvable base tables, no triggers, no transactions) take the gate
   *shared* and then lock just the tables they touch.  Everything the
   analyzer cannot bound — DDL, stored procedures, native triggers,
   ``syb_sendmsg`` notifications, views, transactions — escalates to the
   gate *exclusive*, which is exactly the old single-scheduler behaviour
   for that batch only.
2. Per-table **reader/writer locks** (a field on every
   :class:`~repro.sqlengine.table.Table`), acquired up front in one
   global order (object id) so two fine-grained batches can never
   deadlock, write beats read when a batch both scans and mutates a
   table.

The analysis is epoch-guarded: the catalog's ``schema_epoch`` is read
before analysis and re-checked after the gate is acquired; any DDL in the
window (DDL always holds the gate exclusively and always bumps the epoch)
forces a re-analysis.  Lock *ordering* across subsystems is documented in
docs/CONCURRENCY.md: table locks are taken before any engine work, the
LED's single dispatch lock is only ever taken afterwards (via
``syb_sendmsg`` under an exclusive gate), never the other way round.

Nested execution (a native trigger body, a stored procedure, rule-action
SQL issued from inside a client batch) re-enters the lock manager on the
same thread; inner scopes are no-ops because every path that can nest is
escalated to the exclusive gate by the analyzer.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager

from .expressions import (
    Between,
    BinaryOp,
    CaseExpr,
    Exists,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    ScalarSubquery,
    UnaryOp,
)
from .statements import (
    AssignSelect,
    DeclareStatement,
    DeleteStatement,
    IfStatement,
    InsertSelect,
    InsertValues,
    PrintStatement,
    ReturnStatement,
    SelectStatement,
    SetStatement,
    Statement,
    TruncateStatement,
    UnionSelect,
    UpdateStatement,
    WaitforStatement,
    WhileStatement,
)


class RWLock:
    """A reentrant reader/writer lock with writer preference.

    A thread holding the write side may re-acquire either side freely
    (nested execution under an exclusive gate).  Read-to-write upgrades
    are refused with :class:`RuntimeError` instead of deadlocking — the
    lock manager decides each batch's strongest mode up front precisely
    so upgrades never happen.
    """

    __slots__ = ("_cond", "_readers", "_writer", "_writer_depth",
                 "_write_waiters")

    def __init__(self) -> None:
        self._cond = threading.Condition(threading.Lock())
        #: per-thread reentrant read depth
        self._readers: dict[int, int] = {}
        self._writer: int | None = None
        self._writer_depth = 0
        self._write_waiters = 0

    def acquire_read(self) -> None:
        """Take the shared side (blocks while a writer holds or waits)."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                self._readers[me] += 1
                return
            while self._writer is not None or self._write_waiters:
                self._cond.wait()
            self._readers[me] = 1

    def release_read(self) -> None:
        """Release one shared hold by the current thread."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth -= 1
                return
            depth = self._readers.get(me, 0)
            if depth <= 0:
                raise RuntimeError("release_read without acquire_read")
            if depth == 1:
                del self._readers[me]
                if not self._readers:
                    self._cond.notify_all()
            else:
                self._readers[me] = depth - 1

    def acquire_write(self) -> None:
        """Take the exclusive side (blocks until sole holder)."""
        me = threading.get_ident()
        with self._cond:
            if self._writer == me:
                self._writer_depth += 1
                return
            if me in self._readers:
                raise RuntimeError(
                    "read-to-write lock upgrade would deadlock")
            self._write_waiters += 1
            try:
                while self._writer is not None or self._readers:
                    self._cond.wait()
            finally:
                self._write_waiters -= 1
            self._writer = me
            self._writer_depth = 1

    def release_write(self) -> None:
        """Release one exclusive hold by the current thread."""
        me = threading.get_ident()
        with self._cond:
            if self._writer != me:
                raise RuntimeError("release_write without acquire_write")
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    def held_write_by_current(self) -> bool:
        """True when the calling thread holds the exclusive side."""
        return self._writer == threading.get_ident()

    @contextmanager
    def read_locked(self):
        """Context manager for one shared hold."""
        self.acquire_read()
        try:
            yield
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        """Context manager for one exclusive hold."""
        self.acquire_write()
        try:
            yield
        finally:
            self.release_write()


#: expression types that carry a nested SELECT to recurse into
_SUBQUERY_CARRIERS = (InSubquery, Exists, ScalarSubquery)


def _walk_expr(expr: Expression | None, session, server, acc) -> bool:
    """Fold one expression into the footprint; False = escalate."""
    if expr is None:
        return True
    if isinstance(expr, FunctionCall):
        # syb_sendmsg reaches the notification channel and, through it,
        # arbitrary rule actions — unanalyzable, escalate.
        if expr.name == "syb_sendmsg":
            return False
        return all(_walk_expr(a, session, server, acc) for a in expr.args)
    if isinstance(expr, BinaryOp):
        return (_walk_expr(expr.left, session, server, acc)
                and _walk_expr(expr.right, session, server, acc))
    if isinstance(expr, UnaryOp):
        return _walk_expr(expr.operand, session, server, acc)
    if isinstance(expr, _SUBQUERY_CARRIERS):
        if isinstance(expr, InSubquery):
            if not _walk_expr(expr.operand, session, server, acc):
                return False
        return _collect_select(expr.subquery, session, server, acc)
    if isinstance(expr, InList):
        return (_walk_expr(expr.operand, session, server, acc)
                and all(_walk_expr(i, session, server, acc)
                        for i in expr.items))
    if isinstance(expr, Between):
        return (_walk_expr(expr.operand, session, server, acc)
                and _walk_expr(expr.low, session, server, acc)
                and _walk_expr(expr.high, session, server, acc))
    if isinstance(expr, IsNull):
        return _walk_expr(expr.operand, session, server, acc)
    if isinstance(expr, CaseExpr):
        for when, then in expr.whens:
            if not _walk_expr(when, session, server, acc):
                return False
            if not _walk_expr(then, session, server, acc):
                return False
        return (_walk_expr(expr.operand, session, server, acc)
                and _walk_expr(expr.default, session, server, acc))
    # Literal / ColumnRef / VariableRef / Star and friends touch nothing.
    return True


def _add_table(qname, write: bool, session, server, acc,
               operation: str = "") -> bool:
    """Resolve a table name into the footprint; False = escalate.

    ``operation`` is the DML kind (``insert``/``update``/``delete``) for
    write targets, used to escalate when a native trigger would fire —
    a trigger body is arbitrary SQL running nested inside the statement,
    and only the exclusive gate can cover it.  TRUNCATE passes ``""``
    because it skips triggers by definition.
    """
    catalog = server.catalog
    try:
        if catalog.resolve_view(qname, session) is not None:
            return False  # view expansion reads an unbounded table set
        table = catalog.resolve_table(qname, session, required=False)
    except Exception:
        return False  # unknown database etc. — let execution report it
    if table is None:
        return False  # missing table: escalate, execution raises the error
    if write and operation:
        try:
            db = catalog.get_database(qname.database or session.database)
        except Exception:
            return False
        if db.trigger_for(table, operation) is not None:
            return False
    entry = acc.get(id(table))
    if entry is None:
        acc[id(table)] = [table, write]
    elif write:
        entry[1] = True
    return True


def _collect_select(select, session, server, acc) -> bool:
    """Fold a SELECT/UNION into the footprint; False = escalate."""
    if isinstance(select, UnionSelect):
        if select.into is not None:
            return False
        return all(_collect_select(p, session, server, acc)
                   for p in select.parts)
    if select.into is not None:
        return False  # SELECT INTO creates a table: catalog write
    for ref in select.tables:
        if not _add_table(ref.name, False, session, server, acc):
            return False
    exprs: list[Expression | None] = [i.expr for i in select.items]
    exprs.append(select.where)
    exprs.extend(select.group_by)
    exprs.append(select.having)
    exprs.extend(o.expr for o in select.order_by)
    return all(_walk_expr(e, session, server, acc) for e in exprs)


def _collect_statement(statement: Statement, session, server, acc) -> bool:
    """Fold one statement into the footprint; False = escalate."""
    if isinstance(statement, (SelectStatement, UnionSelect)):
        return _collect_select(statement, session, server, acc)
    if isinstance(statement, AssignSelect):
        for ref in statement.tables:
            if not _add_table(ref.name, False, session, server, acc):
                return False
        return (_walk_expr(statement.where, session, server, acc)
                and all(_walk_expr(e, session, server, acc)
                        for _n, e in statement.assignments))
    if isinstance(statement, InsertValues):
        if not _add_table(statement.table, True, session, server, acc,
                          operation="insert"):
            return False
        return all(_walk_expr(e, session, server, acc)
                   for row in statement.rows for e in row)
    if isinstance(statement, InsertSelect):
        if not _add_table(statement.table, True, session, server, acc,
                          operation="insert"):
            return False
        return _collect_select(statement.select, session, server, acc)
    if isinstance(statement, UpdateStatement):
        if not _add_table(statement.table, True, session, server, acc,
                          operation="update"):
            return False
        return (_walk_expr(statement.where, session, server, acc)
                and all(_walk_expr(e, session, server, acc)
                        for _n, e in statement.assignments))
    if isinstance(statement, DeleteStatement):
        if not _add_table(statement.table, True, session, server, acc,
                          operation="delete"):
            return False
        return _walk_expr(statement.where, session, server, acc)
    if isinstance(statement, TruncateStatement):
        return _add_table(statement.table, True, session, server, acc)
    if isinstance(statement, IfStatement):
        if not _walk_expr(statement.condition, session, server, acc):
            return False
        for branch in (statement.then_branch, statement.else_branch):
            for inner in branch or ():
                if not _collect_statement(inner, session, server, acc):
                    return False
        return True
    if isinstance(statement, WhileStatement):
        if not _walk_expr(statement.condition, session, server, acc):
            return False
        return all(_collect_statement(inner, session, server, acc)
                   for inner in statement.body)
    if isinstance(statement, PrintStatement):
        return _walk_expr(statement.expr, session, server, acc)
    if isinstance(statement, SetStatement):
        return _walk_expr(statement.expr, session, server, acc)
    if isinstance(statement, ReturnStatement):
        return _walk_expr(statement.expr, session, server, acc)
    if isinstance(statement, (DeclareStatement, WaitforStatement)):
        return True
    # DDL, EXECUTE, USE, BEGIN/COMMIT/ROLLBACK, CREATE PROC/TRIGGER, and
    # anything added later that this analyzer does not know: escalate.
    return False


def analyze_batch(statements, session, server):
    """Static lock footprint of one parsed batch.

    Returns ``None`` when the batch must run under the exclusive gate,
    otherwise a dict ``id(table) -> [table, writes]`` of every base table
    the batch can touch.  Any analysis surprise (unexpected AST shape,
    catalog error) yields ``None`` — escalation is always safe, it is
    simply the pre-existing single-scheduler behaviour.
    """
    acc: dict[int, list] = {}
    try:
        for statement in statements:
            if not _collect_statement(statement, session, server, acc):
                return None
    except Exception:
        return None
    return acc


class EngineLockManager:
    """Decides and holds the locks for one batch execution.

    One instance per :class:`~repro.sqlengine.server.SqlServer`.  The
    executor notifies it when sessions open and close transactions so
    fine-grained batches can stand down while any snapshot-based
    transaction (whose rollback restores whole tables) is in flight.
    """

    def __init__(self, server) -> None:
        self._server = server
        self._gate = RWLock()
        self._local = threading.local()
        self._tx_lock = threading.Lock()
        #: ids of sessions with an open top-level transaction.  A set —
        #: not a counter — so a session that vanishes mid-transaction
        #: (client disconnect) can be cleared idempotently without ever
        #: leaving the engine pinned to the exclusive gate.
        self._tx_sessions: set[int] = set()
        #: batches run under the exclusive gate
        self.exclusive_batches = 0
        #: batches run under the shared gate + table locks
        self.shared_batches = 0
        #: shared acquisitions retried after a schema-epoch race
        self.retries = 0

    # -- transaction bookkeeping (called by the executor) ---------------

    def note_transaction_begin(self, session_id: int) -> None:
        """Session ``session_id`` opened a top-level transaction."""
        with self._tx_lock:
            self._tx_sessions.add(session_id)

    def note_transaction_end(self, session_id: int) -> None:
        """Session ``session_id`` resolved its top-level transaction
        (COMMIT, ROLLBACK, or close-time abandonment); idempotent."""
        with self._tx_lock:
            self._tx_sessions.discard(session_id)

    def transaction_sessions(self) -> set[int]:
        """Snapshot of session ids with an open transaction (tests)."""
        with self._tx_lock:
            return set(self._tx_sessions)

    # -- the per-batch scope --------------------------------------------

    def _depth(self) -> int:
        return getattr(self._local, "depth", 0)

    def in_batch(self) -> bool:
        """True while the calling thread is inside a batch scope.

        The agent's action handler uses this to recognize IMMEDIATE
        actions running nested inside an (exclusive) engine batch: those
        are already fully serialized by the gate and must not take any
        further lock — blocking inside the gate invites deadlock.
        """
        return self._depth() > 0

    @contextmanager
    def batch_scope(self, statements, session):
        """Hold the right locks for one batch of ``session``.

        Nested scopes on the same thread (trigger/procedure/rule-action
        SQL) are no-ops: every statement that can trigger nested
        execution escalates its outer batch to the exclusive gate.
        """
        if self._depth():
            self._local.depth += 1
            try:
                yield
            finally:
                self._local.depth -= 1
            return
        catalog = self._server.catalog
        while True:
            epoch = catalog.schema_epoch
            plan = analyze_batch(statements, session, self._server)
            if (plan is None or session.tx_log.active
                    or self._tx_sessions):
                self._gate.acquire_write()
                self.exclusive_batches += 1
                self._local.depth = 1
                try:
                    yield
                finally:
                    self._local.depth = 0
                    self._gate.release_write()
                return
            self._gate.acquire_read()
            # DDL and BEGIN TRAN only happen under the exclusive gate;
            # with the shared side held, re-checking both makes the
            # analysis (and the no-transactions assumption) stable for
            # the whole batch.
            if catalog.schema_epoch != epoch or self._tx_sessions:
                self._gate.release_read()
                self.retries += 1
                continue
            acquired: list[tuple[object, bool]] = []
            try:
                for _tid, (table, write) in sorted(plan.items()):
                    if write:
                        table.lock.acquire_write()
                    else:
                        table.lock.acquire_read()
                    acquired.append((table, write))
            except BaseException:
                for table, write in reversed(acquired):
                    (table.lock.release_write if write
                     else table.lock.release_read)()
                self._gate.release_read()
                raise
            self.shared_batches += 1
            self._local.depth = 1
            try:
                yield
            finally:
                self._local.depth = 0
                for table, write in reversed(acquired):
                    (table.lock.release_write if write
                     else table.lock.release_read)()
                self._gate.release_read()
            return

    @contextmanager
    def exclusive_scope(self):
        """The exclusive gate without batch analysis.

        For engine work that happens outside any client batch — today the
        close-time rollback of an abandoned transaction, which restores
        table snapshots and must not race in-flight batches.  Reentrant
        like :meth:`batch_scope` (a close issued from inside a batch just
        bumps the depth)."""
        if self._depth():
            self._local.depth += 1
            try:
                yield
            finally:
                self._local.depth -= 1
            return
        self._gate.acquire_write()
        self._local.depth = 1
        try:
            yield
        finally:
            self._local.depth = 0
            self._gate.release_write()

    def stats(self) -> dict[str, int]:
        """Counters for the admin plane and tests."""
        return {
            "exclusive_batches": self.exclusive_batches,
            "shared_batches": self.shared_batches,
            "retries": self.retries,
        }
