"""``repro.sqlengine`` — the passive relational engine substrate.

A from-scratch, in-memory SQL server playing the role of the paper's
Sybase SQL Server: multi-database catalog, a T-SQL-like dialect, stored
procedures, and native triggers with Sybase's documented limitations.
The ECA Agent (:mod:`repro.agent`) layers full active capability on top
of this engine without modifying it — that is the paper's whole point.

Quick use::

    from repro.sqlengine import SqlServer, connect

    server = SqlServer(default_database="sentineldb")
    conn = connect(server, user="sharma", database="sentineldb")
    conn.execute("create table stock (symbol varchar(10), price float)")
    conn.execute("insert stock values ('IBM', 101.5)")
    print(conn.execute("select * from stock").last.rows)
"""

from .client import ClientConnection, DirectEndpoint, SqlEndpoint, connect
from .errors import (
    CatalogError,
    ExecutionError,
    IntegrityError,
    SchemaError,
    SqlError,
    SqlParseError,
    SqlTypeError,
    TransactionError,
    TriggerRecursionError,
)
from .parser import parse_batch, parse_expression, parse_statement, split_batches
from .results import BatchResult, ResultSet
from .schema import Column, TableSchema
from .server import Session, SqlServer
from .table import Table
from .types import SqlType, format_datetime, parse_datetime, sql_repr

__all__ = [
    "BatchResult",
    "CatalogError",
    "ClientConnection",
    "Column",
    "DirectEndpoint",
    "ExecutionError",
    "IntegrityError",
    "ResultSet",
    "SchemaError",
    "Session",
    "SqlEndpoint",
    "SqlError",
    "SqlParseError",
    "SqlServer",
    "SqlType",
    "SqlTypeError",
    "Table",
    "TableSchema",
    "TransactionError",
    "TriggerRecursionError",
    "connect",
    "format_datetime",
    "parse_batch",
    "parse_datetime",
    "parse_expression",
    "parse_statement",
    "split_batches",
    "sql_repr",
]
