"""Recursive-descent parser for the engine's T-SQL-like dialect.

The grammar covers everything the ECA Agent's code generator emits
(Figures 11 and 14 of the paper) plus the statements the examples and
system tables need: full single/multi-table SELECT (including
``SELECT INTO``), INSERT (values and select forms), UPDATE, DELETE,
CREATE/DROP/ALTER TABLE, CREATE/DROP PROCEDURE, EXECUTE, CREATE/DROP
TRIGGER, PRINT, control flow (IF/WHILE/BEGIN-END), local variables, and
transaction control.

A *batch* is a sequence of statements.  Like Sybase, ``CREATE PROCEDURE``
and ``CREATE TRIGGER`` must begin their batch and consume the rest of it
as the body; the server layer splits scripts into batches on ``go`` lines.
"""

from __future__ import annotations

from .errors import SqlParseError
from .expressions import (
    Between,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Exists,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    ScalarSubquery,
    Star,
    UnaryOp,
    VariableRef,
)
from .statements import (
    AlterTableAddStatement,
    CreateIndexStatement,
    CreateViewStatement,
    DropIndexStatement,
    DropViewStatement,
    UnionSelect,
    AssignSelect,
    BeginTransactionStatement,
    ColumnDef,
    CommitStatement,
    CreateDatabaseStatement,
    CreateProcedureStatement,
    CreateTableStatement,
    CreateTriggerStatement,
    DeclareStatement,
    DeleteStatement,
    DropDatabaseStatement,
    DropProcedureStatement,
    DropTableStatement,
    DropTriggerStatement,
    ExecuteStatement,
    ExplainStatement,
    IfStatement,
    InsertSelect,
    InsertValues,
    OrderItem,
    PrintStatement,
    ProcedureParam,
    QualifiedName,
    ReturnStatement,
    RollbackStatement,
    SelectItem,
    SelectStatement,
    SetStatement,
    Statement,
    TableRef,
    TruncateStatement,
    UpdateStatement,
    UseStatement,
    WaitforStatement,
    WhileStatement,
)
from .tokenizer import EOF, IDENT, NUMBER, OP, STRING, VARIABLE, Token, tokenize
from .types import SqlType

#: Words that may never be parsed as a table alias or bare identifier
#: continuation — they always start a clause or a statement.
RESERVED = frozenset(
    """
    select insert update delete create drop alter exec execute print
    if else while begin end commit rollback return declare set use
    truncate from where group having order by into values and or not
    on for as like between is null in exists distinct top union go
    proc procedure trigger table database tran transaction work asc desc
    case when then view index unique
    """.split()
)

_COMPARISON_OPS = {"=", "==", "<>", "!=", "<", "<=", ">", ">="}


class _Parser:
    """Token-stream cursor with the grammar's productions as methods."""

    def __init__(self, text: str):
        self.text = text
        self.tokens = tokenize(text)
        self.pos = 0

    # ------------------------------------------------------------------
    # cursor helpers

    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def peek(self, ahead: int = 1) -> Token:
        index = min(self.pos + ahead, len(self.tokens) - 1)
        return self.tokens[index]

    def advance(self) -> Token:
        token = self.tokens[self.pos]
        if token.kind != EOF:
            self.pos += 1
        return token

    def at_keyword(self, *words: str) -> bool:
        token = self.current
        return token.kind == IDENT and token.upper in {w.upper() for w in words}

    def accept_keyword(self, *words: str) -> bool:
        if self.at_keyword(*words):
            self.advance()
            return True
        return False

    def expect_keyword(self, word: str) -> Token:
        if not self.at_keyword(word):
            self.fail(f"expected keyword {word.upper()}")
        return self.advance()

    def at_op(self, op: str) -> bool:
        token = self.current
        return token.kind == OP and token.value == op

    def accept_op(self, op: str) -> bool:
        if self.at_op(op):
            self.advance()
            return True
        return False

    def expect_op(self, op: str) -> Token:
        if not self.at_op(op):
            self.fail(f"expected '{op}'")
        return self.advance()

    def expect_ident(self, what: str = "identifier") -> str:
        token = self.current
        if token.kind != IDENT:
            self.fail(f"expected {what}")
        self.advance()
        return str(token.value)

    def fail(self, message: str) -> None:
        token = self.current
        found = "end of input" if token.kind == EOF else repr(token.value)
        raise SqlParseError(f"{message}, found {found}", token.line, token.column)

    # ------------------------------------------------------------------
    # batch / statement dispatch

    def parse_batch(self) -> list[Statement]:
        statements: list[Statement] = []
        while True:
            while self.accept_op(";"):
                pass
            if self.current.kind == EOF:
                break
            if self.at_keyword("create") and self.peek().kind == IDENT and self.peek().upper in (
                "PROC",
                "PROCEDURE",
                "TRIGGER",
            ):
                if statements:
                    self.fail(
                        "CREATE PROCEDURE/TRIGGER must be the first statement "
                        "in its batch"
                    )
                statements.append(self.parse_create_proc_or_trigger())
                if self.current.kind != EOF:
                    self.fail("CREATE PROCEDURE/TRIGGER must be alone in its batch")
                break
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> Statement:
        token = self.current
        if token.kind != IDENT:
            self.fail("expected a statement")
        word = token.upper
        handler = {
            "SELECT": self.parse_select_entry,
            "INSERT": self.parse_insert,
            "UPDATE": self.parse_update,
            "DELETE": self.parse_delete,
            "CREATE": self.parse_create,
            "DROP": self.parse_drop,
            "ALTER": self.parse_alter,
            "EXEC": self.parse_execute,
            "EXECUTE": self.parse_execute,
            "PRINT": self.parse_print,
            "USE": self.parse_use,
            "TRUNCATE": self.parse_truncate,
            "DECLARE": self.parse_declare,
            "SET": self.parse_set,
            "IF": self.parse_if,
            "WHILE": self.parse_while,
            "BEGIN": self.parse_begin,
            "COMMIT": self.parse_commit,
            "ROLLBACK": self.parse_rollback,
            "RETURN": self.parse_return,
            "WAITFOR": self.parse_waitfor,
            "EXPLAIN": self.parse_explain,
        }.get(word)
        if handler is None:
            self.fail(f"unknown statement start {word!r}")
        assert handler is not None
        return handler()

    # ------------------------------------------------------------------
    # names

    def parse_qualified_name(self) -> QualifiedName:
        parts = [self.expect_ident("object name")]
        while self.at_op(".") and self.peek().kind == IDENT:
            self.advance()
            parts.append(self.expect_ident())
        if len(parts) > 3:
            self.fail("object names have at most 3 parts (db.owner.name)")
        return QualifiedName(tuple(parts))

    def _maybe_alias(self) -> str | None:
        if self.accept_keyword("as"):
            return self.expect_ident("alias")
        token = self.current
        if token.kind == IDENT and token.upper.lower() not in RESERVED:
            self.advance()
            return str(token.value)
        return None

    # ------------------------------------------------------------------
    # SELECT

    def parse_select_entry(self) -> Statement:
        """SELECT that may be a query, a union chain, or an assignment."""
        checkpoint = self.pos
        self.expect_keyword("select")
        if self.current.kind == VARIABLE and self.peek().kind == OP and self.peek().value == "=":
            return self.parse_assign_select()
        self.pos = checkpoint
        return self.parse_select_or_union()

    def parse_select_or_union(self) -> "SelectStatement | UnionSelect":
        """A SELECT possibly continued by UNION [ALL] chains."""
        import dataclasses

        first = self.parse_select()
        if not self.at_keyword("union"):
            return first
        parts = [first]
        all_flags: list[bool] = []
        while self.accept_keyword("union"):
            all_flags.append(bool(self.accept_keyword("all")))
            parts.append(self.parse_select())
        # T-SQL: INTO belongs to the first part, ORDER BY to the last,
        # and both apply to the combined result.
        into = parts[0].into
        order_by = parts[-1].order_by
        for index, part in enumerate(parts):
            if index > 0 and part.into is not None:
                self.fail("INTO is only allowed in the first SELECT of a UNION")
            if index < len(parts) - 1 and part.order_by:
                self.fail("ORDER BY is only allowed after the last SELECT "
                          "of a UNION")
        parts[0] = dataclasses.replace(parts[0], into=None)
        parts[-1] = dataclasses.replace(parts[-1], order_by=())
        return UnionSelect(
            parts=tuple(parts),
            all_flags=tuple(all_flags),
            order_by=order_by,
            into=into,
        )

    def parse_assign_select(self) -> AssignSelect:
        assignments: list[tuple[str, Expression]] = []
        while True:
            if self.current.kind != VARIABLE:
                self.fail("expected @variable")
            name = str(self.advance().value)
            self.expect_op("=")
            assignments.append((name, self.parse_expression()))
            if not self.accept_op(","):
                break
        tables: tuple[TableRef, ...] = ()
        where = None
        if self.accept_keyword("from"):
            tables = self.parse_table_list()
        if self.accept_keyword("where"):
            where = self.parse_expression()
        return AssignSelect(tuple(assignments), tables, where)

    def parse_select(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = bool(self.accept_keyword("distinct"))
        top = None
        if self.accept_keyword("top"):
            token = self.current
            if token.kind != NUMBER or not isinstance(token.value, int):
                self.fail("expected integer after TOP")
            top = int(self.advance().value)  # type: ignore[arg-type]
        items = self.parse_select_items()
        into = None
        if self.accept_keyword("into"):
            into = self.parse_qualified_name()
        tables: tuple[TableRef, ...] = ()
        if self.accept_keyword("from"):
            tables = self.parse_table_list()
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expression()
        group_by: tuple[Expression, ...] = ()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = tuple(self.parse_expression_list())
        having = None
        if self.accept_keyword("having"):
            having = self.parse_expression()
        order_by: list[OrderItem] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            while True:
                expr = self.parse_expression()
                ascending = True
                if self.accept_keyword("desc"):
                    ascending = False
                else:
                    self.accept_keyword("asc")
                order_by.append(OrderItem(expr, ascending))
                if not self.accept_op(","):
                    break
        return SelectStatement(
            items=items,
            tables=tables,
            where=where,
            group_by=group_by,
            having=having,
            order_by=tuple(order_by),
            into=into,
            distinct=distinct,
            top=top,
        )

    def parse_select_items(self) -> tuple[SelectItem, ...]:
        items: list[SelectItem] = []
        while True:
            if self.at_op("*"):
                self.advance()
                items.append(SelectItem(Star()))
            else:
                # alias.* / db.owner.table.*
                star = self._try_qualified_star()
                if star is not None:
                    items.append(SelectItem(star))
                else:
                    expr = self.parse_expression()
                    alias = None
                    if self.accept_keyword("as"):
                        alias = self.expect_ident("column alias")
                    elif (
                        self.current.kind == IDENT
                        and self.current.upper.lower() not in RESERVED
                    ):
                        alias = self.expect_ident()
                    elif self.current.kind == STRING:
                        alias = str(self.advance().value)
                    items.append(SelectItem(expr, alias))
            if not self.accept_op(","):
                break
        return tuple(items)

    def _try_qualified_star(self) -> Star | None:
        """Parse ``name(.name)*.*`` if present, else restore and return None."""
        if self.current.kind != IDENT:
            return None
        checkpoint = self.pos
        parts = [self.expect_ident()]
        while self.at_op("."):
            if self.peek().kind == OP and self.peek().value == "*":
                self.advance()  # '.'
                self.advance()  # '*'
                return Star(tuple(parts))
            if self.peek().kind == IDENT:
                self.advance()
                parts.append(self.expect_ident())
            else:
                break
        self.pos = checkpoint
        return None

    def parse_table_list(self) -> tuple[TableRef, ...]:
        tables: list[TableRef] = []
        while True:
            name = self.parse_qualified_name()
            alias = self._maybe_alias()
            tables.append(TableRef(name, alias))
            if not self.accept_op(","):
                break
        return tuple(tables)

    def parse_expression_list(self) -> list[Expression]:
        exprs = [self.parse_expression()]
        while self.accept_op(","):
            exprs.append(self.parse_expression())
        return exprs

    # ------------------------------------------------------------------
    # DML

    def parse_insert(self) -> Statement:
        self.expect_keyword("insert")
        self.accept_keyword("into")
        table = self.parse_qualified_name()
        columns: tuple[str, ...] = ()
        if self.at_op("(") :
            # Could be a column list only if followed by idents then ')'
            checkpoint = self.pos
            self.advance()
            names: list[str] = []
            ok = True
            while True:
                if self.current.kind != IDENT:
                    ok = False
                    break
                names.append(self.expect_ident())
                if self.accept_op(")"):
                    break
                if not self.accept_op(","):
                    ok = False
                    break
            if ok and (self.at_keyword("values") or self.at_keyword("select")):
                columns = tuple(names)
            else:
                self.pos = checkpoint
        if self.accept_keyword("values"):
            rows: list[tuple[Expression, ...]] = []
            while True:
                self.expect_op("(")
                rows.append(tuple(self.parse_expression_list()))
                self.expect_op(")")
                if not self.accept_op(","):
                    break
            return InsertValues(table, columns, tuple(rows))
        if self.at_keyword("select"):
            select = self.parse_select_or_union()
            return InsertSelect(table, select, columns)
        self.fail("expected VALUES or SELECT in INSERT")
        raise AssertionError  # unreachable

    def parse_update(self) -> UpdateStatement:
        self.expect_keyword("update")
        table = self.parse_qualified_name()
        self.expect_keyword("set")
        assignments: list[tuple[str, Expression]] = []
        while True:
            column = self.expect_ident("column name")
            self.expect_op("=")
            assignments.append((column, self.parse_expression()))
            if not self.accept_op(","):
                break
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expression()
        return UpdateStatement(table, tuple(assignments), where)

    def parse_delete(self) -> DeleteStatement:
        self.expect_keyword("delete")
        self.accept_keyword("from")
        table = self.parse_qualified_name()
        where = None
        if self.accept_keyword("where"):
            where = self.parse_expression()
        return DeleteStatement(table, where)

    def parse_truncate(self) -> TruncateStatement:
        self.expect_keyword("truncate")
        self.expect_keyword("table")
        return TruncateStatement(self.parse_qualified_name())

    # ------------------------------------------------------------------
    # DDL

    def parse_create(self) -> Statement:
        self.expect_keyword("create")
        if self.accept_keyword("table"):
            table = self.parse_qualified_name()
            self.expect_op("(")
            columns = [self.parse_column_def()]
            while self.accept_op(","):
                columns.append(self.parse_column_def())
            self.expect_op(")")
            return CreateTableStatement(table, tuple(columns))
        if self.accept_keyword("database"):
            return CreateDatabaseStatement(self.expect_ident("database name"))
        if self.at_keyword("view"):
            start_offset = self.tokens[self.pos].offset
            self.advance()
            name = self.parse_qualified_name()
            self.expect_keyword("as")
            select = self.parse_select_or_union()
            end_offset = self.current.offset
            return CreateViewStatement(
                name, select,
                ("create " + self.text[start_offset:end_offset]).strip())
        unique = False
        if self.at_keyword("unique") and self.peek().upper == "INDEX":
            self.advance()
            unique = True
        if self.accept_keyword("index"):
            index_name = self.expect_ident("index name")
            self.expect_keyword("on")
            table = self.parse_qualified_name()
            self.expect_op("(")
            column = self.expect_ident("column name")
            self.expect_op(")")
            return CreateIndexStatement(index_name, table, column, unique)
        self.fail(
            "expected TABLE, DATABASE, VIEW, INDEX, PROC or TRIGGER "
            "after CREATE")
        raise AssertionError  # unreachable

    def parse_column_def(self) -> ColumnDef:
        name = self.expect_ident("column name")
        type_name = self.expect_ident("type name")
        length = None
        if self.accept_op("("):
            token = self.current
            if token.kind != NUMBER or not isinstance(token.value, int):
                self.fail("expected integer length")
            length = int(self.advance().value)  # type: ignore[arg-type]
            # numeric(10, 2): swallow the scale
            if self.accept_op(","):
                scale = self.current
                if scale.kind != NUMBER:
                    self.fail("expected integer scale")
                self.advance()
            self.expect_op(")")
        nullable = True
        if self.accept_keyword("not"):
            self.expect_keyword("null")
            nullable = False
        else:
            self.accept_keyword("null")
        return ColumnDef(name, SqlType.parse(type_name, length), nullable)

    def parse_drop(self) -> Statement:
        self.expect_keyword("drop")
        if self.accept_keyword("table"):
            names = [self.parse_qualified_name()]
            while self.accept_op(","):
                names.append(self.parse_qualified_name())
            return DropTableStatement(tuple(names))
        if self.accept_keyword("proc") or self.accept_keyword("procedure"):
            return DropProcedureStatement(self.parse_qualified_name())
        if self.accept_keyword("trigger"):
            return DropTriggerStatement(self.parse_qualified_name())
        if self.accept_keyword("database"):
            return DropDatabaseStatement(self.expect_ident("database name"))
        if self.accept_keyword("view"):
            return DropViewStatement(self.parse_qualified_name())
        if self.accept_keyword("index"):
            qualified = self.parse_qualified_name()
            if len(qualified.parts) < 2:
                self.fail("DROP INDEX expects table.index_name")
            return DropIndexStatement(
                QualifiedName(qualified.parts[:-1]), qualified.object_name)
        self.fail(
            "expected TABLE, VIEW, INDEX, PROC, TRIGGER or DATABASE "
            "after DROP")
        raise AssertionError  # unreachable

    def parse_alter(self) -> AlterTableAddStatement:
        self.expect_keyword("alter")
        self.expect_keyword("table")
        table = self.parse_qualified_name()
        self.expect_keyword("add")
        columns = [self.parse_column_def()]
        while self.accept_op(","):
            columns.append(self.parse_column_def())
        return AlterTableAddStatement(table, tuple(columns))

    # ------------------------------------------------------------------
    # procedures and triggers

    def parse_create_proc_or_trigger(self) -> Statement:
        start_offset = self.current.offset
        self.expect_keyword("create")
        if self.accept_keyword("proc") or self.accept_keyword("procedure"):
            name = self.parse_qualified_name()
            params: list[ProcedureParam] = []
            if self.current.kind == VARIABLE:
                while True:
                    param_name = str(self.advance().value)
                    type_name = self.expect_ident("parameter type")
                    length = None
                    if self.accept_op("("):
                        token = self.current
                        if token.kind != NUMBER:
                            self.fail("expected integer length")
                        length = int(self.advance().value)  # type: ignore[arg-type]
                        self.expect_op(")")
                    default = None
                    if self.accept_op("="):
                        default = self.parse_primary()
                    params.append(
                        ProcedureParam(param_name, SqlType.parse(type_name, length), default)
                    )
                    if not self.accept_op(","):
                        break
            self.expect_keyword("as")
            body = self.parse_statements_until_eof()
            return CreateProcedureStatement(
                name, tuple(params), tuple(body), self.text[start_offset:].strip()
            )
        if self.accept_keyword("trigger"):
            name = self.parse_qualified_name()
            self.expect_keyword("on")
            table = self.parse_qualified_name()
            self.expect_keyword("for")
            operations = [self._parse_trigger_op()]
            while self.accept_op(","):
                operations.append(self._parse_trigger_op())
            self.expect_keyword("as")
            body = self.parse_statements_until_eof()
            return CreateTriggerStatement(
                name,
                table,
                tuple(operations),
                tuple(body),
                self.text[start_offset:].strip(),
            )
        self.fail("expected PROC or TRIGGER")
        raise AssertionError  # unreachable

    def _parse_trigger_op(self) -> str:
        word = self.expect_ident("trigger operation").lower()
        if word not in ("insert", "update", "delete"):
            self.fail("trigger operation must be INSERT, UPDATE or DELETE")
        return word

    def parse_statements_until_eof(self) -> list[Statement]:
        statements: list[Statement] = []
        while True:
            while self.accept_op(";"):
                pass
            if self.current.kind == EOF:
                break
            statements.append(self.parse_statement())
        return statements

    def parse_execute(self) -> ExecuteStatement:
        self.advance()  # EXEC or EXECUTE
        name = self.parse_qualified_name()
        args: list[Expression] = []
        named: list[tuple[str, Expression]] = []
        if self._at_argument_start():
            while True:
                if self.current.kind == VARIABLE and self.peek().kind == OP and self.peek().value == "=":
                    param = str(self.advance().value)
                    self.advance()  # '='
                    named.append((param, self.parse_expression()))
                else:
                    args.append(self.parse_expression())
                if not self.accept_op(","):
                    break
        return ExecuteStatement(name, tuple(args), tuple(named))

    def _at_argument_start(self) -> bool:
        token = self.current
        if token.kind in (NUMBER, STRING, VARIABLE):
            return True
        if token.kind == OP and token.value in ("-", "("):
            return True
        if token.kind == IDENT and token.upper.lower() not in RESERVED:
            return True
        if token.kind == IDENT and token.upper == "NULL":
            return True
        return False

    # ------------------------------------------------------------------
    # misc statements

    def parse_print(self) -> PrintStatement:
        self.expect_keyword("print")
        return PrintStatement(self.parse_expression())

    def parse_use(self) -> UseStatement:
        self.expect_keyword("use")
        return UseStatement(self.expect_ident("database name"))

    def parse_declare(self) -> DeclareStatement:
        self.expect_keyword("declare")
        variables: list[tuple[str, SqlType]] = []
        while True:
            if self.current.kind != VARIABLE:
                self.fail("expected @variable")
            name = str(self.advance().value)
            type_name = self.expect_ident("type name")
            length = None
            if self.accept_op("("):
                token = self.current
                if token.kind != NUMBER:
                    self.fail("expected integer length")
                length = int(self.advance().value)  # type: ignore[arg-type]
                self.expect_op(")")
            variables.append((name, SqlType.parse(type_name, length)))
            if not self.accept_op(","):
                break
        return DeclareStatement(tuple(variables))

    def parse_set(self) -> SetStatement:
        self.expect_keyword("set")
        if self.current.kind != VARIABLE:
            self.fail("expected @variable after SET")
        name = str(self.advance().value)
        self.expect_op("=")
        return SetStatement(name, self.parse_expression())

    def parse_if(self) -> IfStatement:
        self.expect_keyword("if")
        condition = self.parse_expression()
        then_branch = self.parse_block_or_single()
        else_branch: tuple[Statement, ...] = ()
        if self.accept_keyword("else"):
            else_branch = self.parse_block_or_single()
        return IfStatement(condition, then_branch, else_branch)

    def parse_while(self) -> WhileStatement:
        self.expect_keyword("while")
        condition = self.parse_expression()
        return WhileStatement(condition, self.parse_block_or_single())

    def parse_block_or_single(self) -> tuple[Statement, ...]:
        if self.at_keyword("begin") and not self._begin_is_transaction():
            self.expect_keyword("begin")
            statements: list[Statement] = []
            while not self.at_keyword("end"):
                while self.accept_op(";"):
                    pass
                if self.at_keyword("end"):
                    break
                if self.current.kind == EOF:
                    self.fail("unterminated BEGIN block")
                statements.append(self.parse_statement())
            self.expect_keyword("end")
            return tuple(statements)
        return (self.parse_statement(),)

    def _begin_is_transaction(self) -> bool:
        nxt = self.peek()
        return nxt.kind == IDENT and nxt.upper in ("TRAN", "TRANSACTION")

    def parse_begin(self) -> Statement:
        if self._begin_is_transaction():
            self.advance()
            self.advance()
            return BeginTransactionStatement()
        # Bare BEGIN ... END used as a statement grouping.
        block = self.parse_block_or_single()
        if len(block) == 1:
            return block[0]
        return IfStatement(Literal(1), block, ())

    def parse_commit(self) -> CommitStatement:
        self.expect_keyword("commit")
        if self.at_keyword("tran", "transaction", "work"):
            self.advance()
        return CommitStatement()

    def parse_rollback(self) -> RollbackStatement:
        self.expect_keyword("rollback")
        if self.at_keyword("tran", "transaction", "work"):
            self.advance()
        return RollbackStatement()

    def parse_waitfor(self) -> WaitforStatement:
        """``WAITFOR DELAY "hh:mm[:ss[.mmm]]"`` (the DELAY form only)."""
        self.expect_keyword("waitfor")
        self.expect_keyword("delay")
        token = self.current
        if token.kind != STRING:
            self.fail("expected a quoted delay after WAITFOR DELAY")
        self.advance()
        parts = str(token.value).split(":")
        if not 1 <= len(parts) <= 3:
            self.fail("WAITFOR DELAY expects hh:mm[:ss[.mmm]]")
        try:
            fields = [float(part) for part in parts]
        except ValueError:
            self.fail("WAITFOR DELAY expects numeric time fields")
        seconds = 0.0
        for value in fields:
            seconds = seconds * 60.0 + value
        return WaitforStatement(seconds=seconds)

    def parse_explain(self) -> ExplainStatement:
        """``EXPLAIN <select | insert | update | delete>``.

        ``EXPLAIN`` is deliberately not a reserved word: it only acts as
        a statement starter, so existing schemas may still use it as an
        identifier.
        """
        self.advance()  # EXPLAIN
        target = self.parse_statement()
        if not isinstance(target, (SelectStatement, UnionSelect,
                                   InsertValues, InsertSelect,
                                   UpdateStatement, DeleteStatement)):
            self.fail(
                "EXPLAIN supports SELECT, INSERT, UPDATE, and DELETE "
                "statements")
        return ExplainStatement(target=target)

    def parse_return(self) -> ReturnStatement:
        self.expect_keyword("return")
        token = self.current
        if token.kind in (NUMBER, STRING, VARIABLE) or (
            token.kind == OP and token.value in ("-", "(")
        ):
            return ReturnStatement(self.parse_expression())
        return ReturnStatement(None)

    # ------------------------------------------------------------------
    # expressions (precedence climbing)

    def parse_expression(self) -> Expression:
        return self.parse_or()

    def parse_or(self) -> Expression:
        left = self.parse_and()
        while self.accept_keyword("or"):
            left = BinaryOp("OR", left, self.parse_and())
        return left

    def parse_and(self) -> Expression:
        left = self.parse_not()
        while self.accept_keyword("and"):
            left = BinaryOp("AND", left, self.parse_not())
        return left

    def parse_not(self) -> Expression:
        if self.at_keyword("not") and not self._not_is_postfix():
            self.advance()
            return UnaryOp("NOT", self.parse_not())
        return self.parse_comparison()

    def _not_is_postfix(self) -> bool:
        # NOT LIKE / NOT IN / NOT BETWEEN are handled inside comparison.
        return False

    def parse_comparison(self) -> Expression:
        left = self.parse_additive()
        while True:
            token = self.current
            if token.kind == OP and token.value in _COMPARISON_OPS:
                op = str(self.advance().value)
                if op in ("==",):
                    op = "="
                if op == "!=":
                    op = "<>"
                left = BinaryOp(op, left, self.parse_additive())
                continue
            if self.at_keyword("like"):
                self.advance()
                left = BinaryOp("LIKE", left, self.parse_additive())
                continue
            if self.at_keyword("is"):
                self.advance()
                negated = bool(self.accept_keyword("not"))
                self.expect_keyword("null")
                left = IsNull(left, negated)
                continue
            if self.at_keyword("between"):
                self.advance()
                low = self.parse_additive()
                self.expect_keyword("and")
                high = self.parse_additive()
                left = Between(left, low, high, negated=False)
                continue
            if self.at_keyword("in"):
                self.advance()
                left = self._parse_in_tail(left, negated=False)
                continue
            if self.at_keyword("not"):
                nxt = self.peek()
                if nxt.kind == IDENT and nxt.upper in ("LIKE", "IN", "BETWEEN"):
                    self.advance()  # NOT
                    if self.accept_keyword("like"):
                        left = BinaryOp("NOT LIKE", left, self.parse_additive())
                    elif self.accept_keyword("between"):
                        low = self.parse_additive()
                        self.expect_keyword("and")
                        high = self.parse_additive()
                        left = Between(left, low, high, negated=True)
                    else:
                        self.expect_keyword("in")
                        left = self._parse_in_tail(left, negated=True)
                    continue
            break
        return left

    def _parse_in_tail(self, operand: Expression, negated: bool) -> Expression:
        self.expect_op("(")
        if self.at_keyword("select"):
            subquery = self.parse_select_or_union()
            self.expect_op(")")
            return InSubquery(operand, subquery, negated)
        items = tuple(self.parse_expression_list())
        self.expect_op(")")
        return InList(operand, items, negated)

    def parse_additive(self) -> Expression:
        left = self.parse_multiplicative()
        while True:
            if self.at_op("+"):
                self.advance()
                left = BinaryOp("+", left, self.parse_multiplicative())
            elif self.at_op("-"):
                self.advance()
                left = BinaryOp("-", left, self.parse_multiplicative())
            else:
                break
        return left

    def parse_multiplicative(self) -> Expression:
        left = self.parse_unary()
        while True:
            if self.at_op("*"):
                self.advance()
                left = BinaryOp("*", left, self.parse_unary())
            elif self.at_op("/"):
                self.advance()
                left = BinaryOp("/", left, self.parse_unary())
            elif self.at_op("%"):
                self.advance()
                left = BinaryOp("%", left, self.parse_unary())
            else:
                break
        return left

    def parse_unary(self) -> Expression:
        if self.at_op("-"):
            self.advance()
            return UnaryOp("-", self.parse_unary())
        if self.at_op("+"):
            self.advance()
            return self.parse_unary()
        return self.parse_primary()

    def parse_primary(self) -> Expression:
        token = self.current

        if token.kind == NUMBER:
            self.advance()
            return Literal(token.value)
        if token.kind == STRING:
            self.advance()
            return Literal(token.value)
        if token.kind == VARIABLE:
            self.advance()
            return VariableRef(str(token.value))

        if token.kind == OP and token.value == "(":
            self.advance()
            if self.at_keyword("select"):
                subquery = self.parse_select_or_union()
                self.expect_op(")")
                return ScalarSubquery(subquery)
            expr = self.parse_expression()
            self.expect_op(")")
            return expr

        if token.kind == IDENT:
            upper = token.upper
            if upper == "CASE":
                return self.parse_case()
            if upper == "NULL":
                self.advance()
                return Literal(None)
            if upper == "EXISTS":
                self.advance()
                self.expect_op("(")
                subquery = self.parse_select_or_union()
                self.expect_op(")")
                return Exists(subquery)
            if upper == "NOT":
                self.advance()
                return UnaryOp("NOT", self.parse_primary())
            if upper.lower() in RESERVED:
                self.fail("expected an expression")
            # function call?
            if self.peek().kind == OP and self.peek().value == "(":
                name = self.expect_ident().lower()
                self.expect_op("(")
                if self.accept_op("*"):
                    self.expect_op(")")
                    return FunctionCall(name, (), star=True)
                if self.accept_op(")"):
                    return FunctionCall(name, ())
                distinct = bool(self.accept_keyword("distinct"))
                args = tuple(self.parse_expression_list())
                self.expect_op(")")
                return FunctionCall(name, args, distinct=distinct)
            # column reference (possibly qualified)
            parts = [self.expect_ident()]
            while self.at_op(".") and self.peek().kind == IDENT:
                self.advance()
                parts.append(self.expect_ident())
            return ColumnRef(tuple(parts))

        self.fail("expected an expression")
        raise AssertionError  # unreachable

    def parse_case(self) -> CaseExpr:
        """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``."""
        self.expect_keyword("case")
        operand = None
        if not self.at_keyword("when"):
            operand = self.parse_expression()
        whens: list[tuple[Expression, Expression]] = []
        while self.accept_keyword("when"):
            condition = self.parse_expression()
            self.expect_keyword("then")
            whens.append((condition, self.parse_expression()))
        if not whens:
            self.fail("CASE requires at least one WHEN clause")
        default = None
        if self.accept_keyword("else"):
            default = self.parse_expression()
        self.expect_keyword("end")
        return CaseExpr(tuple(whens), operand, default)


def parse_batch(text: str) -> list[Statement]:
    """Parse one batch of SQL text into statement nodes."""
    return _Parser(text).parse_batch()


def parse_statement(text: str) -> Statement:
    """Parse text expected to contain exactly one statement."""
    statements = parse_batch(text)
    if len(statements) != 1:
        raise SqlParseError(
            f"expected exactly one statement, found {len(statements)}"
        )
    return statements[0]


def parse_expression(text: str) -> Expression:
    """Parse standalone expression text (used by tests and the agent)."""
    parser = _Parser(text)
    expr = parser.parse_expression()
    if parser.current.kind != EOF:
        parser.fail("unexpected trailing input after expression")
    return expr


def split_batches(script: str) -> list[str]:
    """Split a script into batches on lines containing only ``go``.

    Mirrors ``isql`` behaviour; the agent's generated scripts use ``go``
    between the snapshot-table DDL, the procedure, and the trigger.
    """
    batches: list[str] = []
    current: list[str] = []
    # Split on '\n' only: str.splitlines() would also split on exotic
    # Unicode boundaries (\\x1e, \\u2028, ...) that may occur inside
    # string literals.
    for line in script.split("\n"):
        if line.strip().lower() == "go":
            if any(piece.strip() for piece in current):
                batches.append("\n".join(current))
            current = []
        else:
            current.append(line)
    if any(piece.strip() for piece in current):
        batches.append("\n".join(current))
    return batches
