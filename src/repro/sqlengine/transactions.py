"""Session transaction support: lazy table snapshots with full rollback.

The engine implements ``BEGIN TRAN`` / ``COMMIT`` / ``ROLLBACK`` with a
simple but correct scheme: the first time a transaction touches a table it
snapshots that table; catalog changes (create/drop of tables, procedures,
triggers) are recorded as undo actions.  ``ROLLBACK`` replays the undo log
in reverse.  Nested ``BEGIN TRAN`` increments a counter the way Sybase's
``@@trancount`` does; only the outermost pair is real.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .errors import TransactionError
from .table import Table, TableSnapshot


@dataclass
class TransactionLog:
    """Undo state for one session's open transaction."""

    depth: int = 0
    _table_snapshots: dict[int, tuple[Table, TableSnapshot]] = field(default_factory=dict)
    _undo_actions: list[Callable[[], None]] = field(default_factory=list)

    @property
    def active(self) -> bool:
        return self.depth > 0

    def begin(self) -> None:
        self.depth += 1

    def before_table_mutation(self, table: Table) -> None:
        """Snapshot a table once, before its first mutation in this txn."""
        if not self.active:
            return
        key = id(table)
        if key not in self._table_snapshots:
            self._table_snapshots[key] = (table, table.snapshot())

    def record_undo(self, action: Callable[[], None]) -> None:
        """Record a catalog undo action (e.g. re-add a dropped table)."""
        if self.active:
            self._undo_actions.append(action)

    def commit(self) -> int:
        if not self.active:
            raise TransactionError("COMMIT without a matching BEGIN TRANSACTION")
        self.depth -= 1
        if self.depth == 0:
            self._clear()
        return self.depth

    def rollback(self) -> None:
        if not self.active:
            raise TransactionError("ROLLBACK without a matching BEGIN TRANSACTION")
        for table, snapshot in self._table_snapshots.values():
            table.restore(snapshot)
        for action in reversed(self._undo_actions):
            action()
        self.depth = 0
        self._clear()

    def _clear(self) -> None:
        self._table_snapshots.clear()
        self._undo_actions.clear()
