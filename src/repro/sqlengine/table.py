"""Row storage: heap tables with snapshot support for transactions,
plus lazily-rebuilt equality indexes (``CREATE INDEX``)."""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from .errors import IntegrityError
from .schema import Column, TableSchema
from .types import SqlType


def _index_key(value: object) -> object:
    """Normalize a cell value to a hashable, type-stable index key."""
    if isinstance(value, bool):
        return float(int(value))
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, _dt.datetime):
        return value
    # Strings index as-is: the engine's '=' is case-sensitive, and the
    # index must agree with the scan it replaces.
    return value


@dataclass
class TableIndex:
    """An equality-lookup index over one column.

    The index rebuilds itself lazily: any table mutation bumps the
    table's version counter, and the next lookup against a stale index
    pays one O(n) rebuild, after which lookups are O(1) until the next
    mutation.  This keeps every mutation path trivially correct while
    still giving read-mostly workloads their speedup.
    """

    name: str
    column: str
    unique: bool = False
    _built_version: int = -1
    _map: dict = field(default_factory=dict)

    def lookup(self, table: "Table", value: object) -> list[list[object]]:
        """Rows whose indexed column equals ``value`` (NULL matches none)."""
        if value is None:
            return []
        self._ensure(table)
        return self._map.get(_index_key(value), [])

    def _ensure(self, table: "Table") -> None:
        if self._built_version == table.version:
            return
        column_index = table.schema.index_of(self.column)
        assert column_index is not None
        mapping: dict = {}
        for row in table.rows:
            value = row[column_index]
            if value is None:
                continue
            mapping.setdefault(_index_key(value), []).append(row)
        self._map = mapping
        self._built_version = table.version

    def check_unique(self, table: "Table") -> None:
        """Raise if the indexed column currently contains duplicates."""
        if not self.unique:
            return
        self._built_version = -1  # force rebuild against current rows
        self._ensure(table)
        for key, rows in self._map.items():
            if len(rows) > 1:
                raise IntegrityError(
                    f"unique index '{self.name}' on "
                    f"{table.qualified_name}({self.column}) violated by "
                    f"duplicate value {key!r}"
                )


@dataclass
class Table:
    """An in-memory heap table: a schema plus a list of rows.

    Rows are stored as plain Python lists aligned with the schema's column
    order.  All mutation goes through the methods here (or bumps
    :attr:`version` via :meth:`mark_modified`) so the transaction layer
    can snapshot/restore tables wholesale and indexes can invalidate.
    """

    name: str
    owner: str
    schema: TableSchema
    rows: list[list[object]] = field(default_factory=list)
    indexes: dict[str, TableIndex] = field(default_factory=dict)
    version: int = 0

    @property
    def qualified_name(self) -> str:
        """``owner.name`` — how the table is listed in catalog output."""
        return f"{self.owner}.{self.name}"

    def __len__(self) -> int:
        return len(self.rows)

    def mark_modified(self) -> None:
        """Invalidate indexes after in-place row mutation (UPDATE)."""
        self.version += 1

    def insert_row(self, values: list[object]) -> list[object]:
        """Coerce and append one full-width row; returns the stored row."""
        row = self.schema.coerce_row(values)
        for index in self.indexes.values():
            if index.unique:
                column_index = self.schema.index_of(index.column)
                assert column_index is not None
                if index.lookup(self, row[column_index]):
                    raise IntegrityError(
                        f"unique index '{index.name}' on "
                        f"{self.qualified_name}({index.column}) would be "
                        f"violated by value {row[column_index]!r}"
                    )
        self.rows.append(row)
        self.version += 1
        return row

    def insert_partial(self, column_names: list[str], values: list[object]) -> list[object]:
        """Insert a row given an explicit column list; others become NULL."""
        full: list[object] = [None] * len(self.schema)
        for column_name, value in zip(column_names, values):
            index = self.schema.index_of(column_name)
            assert index is not None
            full[index] = value
        return self.insert_row(full)

    def delete_rows(self, predicate) -> list[list[object]]:
        """Delete rows matching ``predicate(row)``; returns deleted rows."""
        kept: list[list[object]] = []
        deleted: list[list[object]] = []
        for row in self.rows:
            if predicate(row):
                deleted.append(row)
            else:
                kept.append(row)
        self.rows = kept
        self.version += 1
        return deleted

    def add_column(self, column: Column) -> None:
        """``ALTER TABLE ADD``: extend the schema, NULL-fill existing rows."""
        self.schema.add_column(column)
        for row in self.rows:
            row.append(None)
        self.version += 1

    def snapshot(self) -> "TableSnapshot":
        """Capture current schema and rows for transaction rollback."""
        return TableSnapshot(
            schema=self.schema.clone(),
            rows=[list(row) for row in self.rows],
        )

    def restore(self, snapshot: "TableSnapshot") -> None:
        """Restore state captured by :meth:`snapshot`."""
        self.schema = snapshot.schema.clone()
        self.rows = [list(row) for row in snapshot.rows]
        self.version += 1

    def index_on(self, column: str) -> TableIndex | None:
        """The first index over ``column`` (any case), if one exists."""
        lowered = column.lower()
        for index in self.indexes.values():
            if index.column.lower() == lowered:
                return index
        return None

    def add_index(self, index: TableIndex) -> None:
        key = index.name.lower()
        if key in self.indexes:
            raise IntegrityError(
                f"index '{index.name}' already exists on {self.qualified_name}")
        self.schema.index_of(index.column)  # column must exist
        index.check_unique(self)
        self.indexes[key] = index

    def drop_index(self, name: str) -> None:
        if self.indexes.pop(name.lower(), None) is None:
            raise IntegrityError(
                f"index '{name}' does not exist on {self.qualified_name}")

    def clone_empty(self, new_name: str, new_owner: str) -> "Table":
        """A new empty table with the same schema (``SELECT INTO ... WHERE 1=2``)."""
        return Table(name=new_name, owner=new_owner, schema=self.schema.clone())


@dataclass
class TableSnapshot:
    """Frozen copy of a table's schema and rows, used for rollback."""

    schema: TableSchema
    rows: list[list[object]]


def table_from_columns(name: str, owner: str, columns: list[tuple[str, str, int | None, bool]]) -> Table:
    """Convenience constructor used by the system-catalog bootstrap.

    ``columns`` entries are ``(name, type_name, length, nullable)``.
    """
    schema = TableSchema(
        [
            Column(col_name, SqlType.parse(type_name, length), nullable)
            for col_name, type_name, length, nullable in columns
        ]
    )
    return Table(name=name, owner=owner, schema=schema)
