"""Row storage: heap tables with snapshot support for transactions,
plus lazily-rebuilt equality indexes (``CREATE INDEX``)."""

from __future__ import annotations

import datetime as _dt
from dataclasses import dataclass, field

from .errors import IntegrityError
from .locks import RWLock
from .schema import Column, TableSchema
from .types import SqlType


def _index_key(value: object) -> object:
    """Normalize a cell value to a hashable, type-stable index key."""
    if isinstance(value, bool):
        return float(int(value))
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, _dt.datetime):
        return value
    # Strings index as-is: the engine's '=' is case-sensitive, and the
    # index must agree with the scan it replaces.
    return value


@dataclass
class TableIndex:
    """An equality-lookup index over one column.

    The index is maintained incrementally: inserts and deletes adjust the
    affected bucket in O(1)/O(bucket), so a workload of N inserts followed
    by a lookup pays at most ONE O(n) build — not N rebuilds.  Mutations
    the index cannot track cheaply (in-place UPDATE, transaction restore,
    schema change) set a dirty flag and the next lookup rebuilds once.
    :attr:`rebuild_count` exposes how many full builds have happened, so
    tests and the admin plane can prove maintenance stays incremental.
    """

    name: str
    column: str
    unique: bool = False
    _dirty: bool = True
    _map: dict = field(default_factory=dict)
    _column_index: int = -1
    rebuild_count: int = 0

    def lookup(self, table: "Table", value: object) -> list[list[object]]:
        """Rows whose indexed column equals ``value`` (NULL matches none).

        Returns a copy: buckets are maintained in place on insert, and a
        caller iterating a live bucket while inserting into the same
        table (``insert t select * from t where ...``) must not observe
        its own writes.
        """
        if value is None:
            return []
        self._ensure(table)
        return list(self._map.get(_index_key(value), ()))

    def mark_dirty(self) -> None:
        """Schedule a full rebuild before the next lookup."""
        self._dirty = True

    def note_insert(self, row: list[object]) -> None:
        """Fold one appended row into the index (no-op while dirty)."""
        if self._dirty:
            return
        value = row[self._column_index]
        if value is None:
            return
        self._map.setdefault(_index_key(value), []).append(row)

    def note_delete(self, rows: list[list[object]]) -> None:
        """Remove deleted rows (by identity) from their buckets."""
        if self._dirty:
            return
        for row in rows:
            value = row[self._column_index]
            if value is None:
                continue
            key = _index_key(value)
            bucket = self._map.get(key)
            if bucket is None:
                self._dirty = True  # bucket drift: fall back to rebuild
                return
            for position, candidate in enumerate(bucket):
                if candidate is row:
                    del bucket[position]
                    break
            else:
                self._dirty = True
                return
            if not bucket:
                del self._map[key]

    def _ensure(self, table: "Table") -> None:
        if not self._dirty:
            return
        column_index = table.schema.index_of(self.column)
        assert column_index is not None
        mapping: dict = {}
        for row in table.rows:
            value = row[column_index]
            if value is None:
                continue
            mapping.setdefault(_index_key(value), []).append(row)
        self._map = mapping
        self._column_index = column_index
        self._dirty = False
        self.rebuild_count += 1

    def check_unique(self, table: "Table") -> None:
        """Raise if the indexed column currently contains duplicates."""
        if not self.unique:
            return
        self._dirty = True  # force rebuild against current rows
        self._ensure(table)
        for key, rows in self._map.items():
            if len(rows) > 1:
                raise IntegrityError(
                    f"unique index '{self.name}' on "
                    f"{table.qualified_name}({self.column}) violated by "
                    f"duplicate value {key!r}"
                )


@dataclass
class Table:
    """An in-memory heap table: a schema plus a list of rows.

    Rows are stored as plain Python lists aligned with the schema's column
    order.  All mutation goes through the methods here (or bumps
    :attr:`version` via :meth:`mark_modified`) so the transaction layer
    can snapshot/restore tables wholesale and indexes can invalidate.
    """

    name: str
    owner: str
    schema: TableSchema
    rows: list[list[object]] = field(default_factory=list)
    indexes: dict[str, TableIndex] = field(default_factory=dict)
    version: int = 0
    #: per-table reader/writer lock, acquired by the engine's lock
    #: manager for fine-grained batches (compare=False keeps dataclass
    #: equality about the data, repr=False keeps debug output readable)
    lock: RWLock = field(default_factory=lambda: RWLock(),
                         compare=False, repr=False)

    @property
    def qualified_name(self) -> str:
        """``owner.name`` — how the table is listed in catalog output."""
        return f"{self.owner}.{self.name}"

    def __len__(self) -> int:
        return len(self.rows)

    def mark_modified(self, columns: "set[str] | None" = None) -> None:
        """Invalidate indexes after in-place row mutation (UPDATE).

        ``columns`` limits invalidation to indexes over one of the
        mutated columns (indexes on untouched columns still map the same
        rows to the same keys); None invalidates every index.
        """
        self.version += 1
        touched = (None if columns is None
                   else {column.lower() for column in columns})
        for index in self.indexes.values():
            if touched is None or index.column.lower() in touched:
                index.mark_dirty()

    def insert_row(self, values: list[object]) -> list[object]:
        """Coerce and append one full-width row; returns the stored row."""
        row = self.schema.coerce_row(values)
        for index in self.indexes.values():
            if index.unique:
                column_index = self.schema.index_of(index.column)
                assert column_index is not None
                if index.lookup(self, row[column_index]):
                    raise IntegrityError(
                        f"unique index '{index.name}' on "
                        f"{self.qualified_name}({index.column}) would be "
                        f"violated by value {row[column_index]!r}"
                    )
        self.rows.append(row)
        self.version += 1
        for index in self.indexes.values():
            index.note_insert(row)
        return row

    def insert_partial(self, column_names: list[str], values: list[object]) -> list[object]:
        """Insert a row given an explicit column list; others become NULL."""
        full: list[object] = [None] * len(self.schema)
        for column_name, value in zip(column_names, values):
            index = self.schema.index_of(column_name)
            assert index is not None
            full[index] = value
        return self.insert_row(full)

    def delete_rows(self, predicate) -> list[list[object]]:
        """Delete rows matching ``predicate(row)``; returns deleted rows."""
        kept: list[list[object]] = []
        deleted: list[list[object]] = []
        for row in self.rows:
            if predicate(row):
                deleted.append(row)
            else:
                kept.append(row)
        self.rows = kept
        self.version += 1
        for index in self.indexes.values():
            index.note_delete(deleted)
        return deleted

    def truncate(self) -> int:
        """Remove every row (``TRUNCATE TABLE``); returns the old count."""
        count = len(self.rows)
        self.rows = []
        self.version += 1
        for index in self.indexes.values():
            index.mark_dirty()
        return count

    def add_column(self, column: Column) -> None:
        """``ALTER TABLE ADD``: extend the schema, NULL-fill existing rows."""
        self.schema.add_column(column)
        for row in self.rows:
            row.append(None)
        self.version += 1
        for index in self.indexes.values():
            index.mark_dirty()

    def snapshot(self) -> "TableSnapshot":
        """Capture current schema and rows for transaction rollback."""
        return TableSnapshot(
            schema=self.schema.clone(),
            rows=[list(row) for row in self.rows],
        )

    def restore(self, snapshot: "TableSnapshot") -> None:
        """Restore state captured by :meth:`snapshot`."""
        self.schema = snapshot.schema.clone()
        self.rows = [list(row) for row in snapshot.rows]
        self.version += 1
        for index in self.indexes.values():
            index.mark_dirty()

    def index_on(self, column: str) -> TableIndex | None:
        """The first index over ``column`` (any case), if one exists."""
        lowered = column.lower()
        for index in self.indexes.values():
            if index.column.lower() == lowered:
                return index
        return None

    def add_index(self, index: TableIndex) -> None:
        key = index.name.lower()
        if key in self.indexes:
            raise IntegrityError(
                f"index '{index.name}' already exists on {self.qualified_name}")
        self.schema.index_of(index.column)  # column must exist
        index.check_unique(self)
        self.indexes[key] = index

    def drop_index(self, name: str) -> None:
        if self.indexes.pop(name.lower(), None) is None:
            raise IntegrityError(
                f"index '{name}' does not exist on {self.qualified_name}")

    def clone_empty(self, new_name: str, new_owner: str) -> "Table":
        """A new empty table with the same schema (``SELECT INTO ... WHERE 1=2``)."""
        return Table(name=new_name, owner=new_owner, schema=self.schema.clone())


@dataclass
class TableSnapshot:
    """Frozen copy of a table's schema and rows, used for rollback."""

    schema: TableSchema
    rows: list[list[object]]


def table_from_columns(name: str, owner: str, columns: list[tuple[str, str, int | None, bool]]) -> Table:
    """Convenience constructor used by the system-catalog bootstrap.

    ``columns`` entries are ``(name, type_name, length, nullable)``.
    """
    schema = TableSchema(
        [
            Column(col_name, SqlType.parse(type_name, length), nullable)
            for col_name, type_name, length, nullable in columns
        ]
    )
    return Table(name=name, owner=owner, schema=schema)
