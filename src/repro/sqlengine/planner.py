"""Cost-based planner: lower a parsed statement into an operator DAG.

The legacy executor walks the AST directly: nested cross-product loops
with the full WHERE evaluated innermost, plus the ad-hoc index overrides
bolted on by ``Executor._scan_plan``.  This module gives statements an
explicit plan instead — Scan/IndexScan, Join, Filter, Aggregate, Sort,
Project, Limit, and the write operators — produced once per statement
and reused across executions via the plan memo in
:class:`~repro.sqlengine.plancache.PlanCache`.

Optimizer rules applied during lowering:

- **constant folding** — pure literal arithmetic/comparisons collapse to
  literals; a WHERE that folds false short-circuits the whole scan.
- **predicate pushdown** — single-source, subquery-free conjuncts move
  below the joins into their scan; ORs spanning tables, subqueries, and
  outer (correlated) references stay in the residual filter.
- **index selection** — PR 4's equality / IN-list / join-probe override
  rules, ported verbatim so planned runs choose the same indexes (and
  count the same ``index_scans``) as the legacy walker.
- **join ordering** — greedy order over live per-table cardinalities:
  smallest effective input first, then whichever remaining table has an
  equi-join edge to the tables already placed.

Plans are *logical* and session-safe: they hold table keys, column
names, and expression references — never ``Table`` objects or column
indexes — so a memoized plan re-binds cleanly inside triggers (pseudo
tables), across sessions, and across owner-qualified resolutions.  The
executing side (:mod:`repro.sqlengine.dagexec`) re-validates every index
hint against the runtime table and degrades gracefully when an index is
gone, keeping staleness a performance matter, never correctness.

Output-order fidelity: the legacy walker emits rows in FROM-order
cross-product order.  Every scan here tags candidates with their
enumeration ordinal, and the DAG executor restores the legacy order by
sorting surviving bindings on the FROM-position ordinal tuple — so
DISTINCT, TOP, grouping, and unsorted SELECTs stay byte-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .evaluator import EvalContext, RowEnvironment, evaluate, is_true
from .expressions import (
    AGGREGATE_FUNCTIONS,
    Between,
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Exists,
    Expression,
    FunctionCall,
    InList,
    InSubquery,
    IsNull,
    Literal,
    ScalarSubquery,
    Star,
    UnaryOp,
    VariableRef,
    contains_aggregate,
)
from .statements import SelectStatement

__all__ = [
    "DEFAULT_ENABLED",
    "AggregateOp",
    "DeleteOp",
    "DmlPlan",
    "FilterOp",
    "IndexHint",
    "InsertOp",
    "JoinOp",
    "JoinSpec",
    "LimitOp",
    "ProjectOp",
    "ScanOp",
    "SelectPlan",
    "SortOp",
    "ValuesOp",
    "describe_expr",
    "fold_constants",
    "plan_dml",
    "plan_select",
    "render_plan",
]

#: Default for ``SqlServer.planner_enabled`` — the DAG executor is on by
#: default; tests and the difftest axis monkeypatch this to pin a mode.
DEFAULT_ENABLED = True

#: Textbook selectivity factors for cardinality estimates.  They only
#: steer join ordering and EXPLAIN output — never correctness.
_SELECTIVITY = {"eq": 0.1, "in": 0.25, "range": 0.4, "other": 0.6}
_RANGE_OPS = {"<", ">", "<=", ">="}

#: Canonical type name -> comparison family.  A hash join is only exact
#: (same matches as SQL ``=``) when both join columns share a family;
#: cross-family joins fall back to legacy semantics.
_TYPE_FAMILIES = {
    "int": "num", "float": "num", "bit": "num",
    "varchar": "str", "char": "str", "text": "str",
    "datetime": "dt",
}


# ----------------------------------------------------------------------
# plan nodes (the operator DAG)


@dataclass(frozen=True)
class IndexHint:
    """A static index narrowing chosen at plan time (PR 4 port).

    ``kind`` is ``eq`` (one row-free value) or ``in`` (the IN-list
    items); ``exprs`` are evaluated fresh each execution.  The hint is
    re-validated at runtime: a missing index degrades to a full scan.
    """

    kind: str
    column: str
    exprs: tuple
    index_name: str


@dataclass(frozen=True)
class JoinSpec:
    """How a scan joins the tables already placed before it.

    ``strategy`` is ``probe`` (legacy index probe — bucket lookup per
    outer binding) or ``hash`` (build a hash table over this scan's
    candidates, probe with the outer side's value).  ``same_family``
    records whether both columns share a comparison type family, which
    is what licenses the hash fallback when a probe's index is gone.
    """

    strategy: str
    outer_position: int
    inner_expr: Expression
    outer_expr: Expression
    probe_column: str | None
    same_family: bool
    accounted: bool


@dataclass(frozen=True)
class ScanOp:
    """One FROM-clause input: a full scan or an index-narrowed scan."""

    position: int
    name: str
    alias: str | None
    pushed: tuple
    hint: IndexHint | None
    join: JoinSpec | None
    base_rows: int
    estimate: float

    def describe(self) -> str:
        """One EXPLAIN line for this scan."""
        label = self.name + (f" as {self.alias}" if self.alias else "")
        if self.hint is not None:
            if self.hint.kind == "eq":
                detail = (f"{self.hint.column} = "
                          f"{describe_expr(self.hint.exprs[0])}")
            else:
                items = ", ".join(describe_expr(e) for e in self.hint.exprs)
                detail = f"{self.hint.column} in ({items})"
            head = (f"IndexScan {label} "
                    f"(index {self.hint.index_name}: {detail})")
        else:
            head = f"Scan {label}"
        if self.pushed:
            preds = " and ".join(describe_expr(p) for p in self.pushed)
            head += f" pushed=[{preds}]"
        return f"{head} (~{self.estimate:.0f} of {self.base_rows} rows)"


@dataclass(frozen=True)
class JoinOp:
    """Join of everything planned so far (``outer``) with one scan."""

    outer: object
    scan: ScanOp
    estimate: float

    def describe(self) -> str:
        """One EXPLAIN line for this join."""
        spec = self.scan.join
        if spec is None:
            return f"Join [nested cross] (~{self.estimate:.0f} rows)"
        cond = (f"{describe_expr(spec.outer_expr)} = "
                f"{describe_expr(spec.inner_expr)}")
        if spec.strategy == "probe":
            return (f"Join [index probe on {spec.probe_column}: {cond}] "
                    f"(~{self.estimate:.0f} rows)")
        return f"Join [hash: {cond}] (~{self.estimate:.0f} rows)"


@dataclass(frozen=True)
class FilterOp:
    """The residual predicate: conjuncts pushdown could not claim."""

    child: object
    predicates: tuple
    estimate: float

    def describe(self) -> str:
        """One EXPLAIN line for the residual filter."""
        preds = " and ".join(describe_expr(p) for p in self.predicates)
        return f"Filter [{preds}] (~{self.estimate:.0f} rows)"


@dataclass(frozen=True)
class AggregateOp:
    """GROUP BY / aggregate-function evaluation over the join output."""

    child: object
    group_by: tuple
    having: Expression | None

    def describe(self) -> str:
        """One EXPLAIN line for the aggregation."""
        parts = []
        if self.group_by:
            keys = ", ".join(describe_expr(e) for e in self.group_by)
            parts.append(f"group by {keys}")
        if self.having is not None:
            parts.append(f"having {describe_expr(self.having)}")
        detail = "; ".join(parts) or "scalar aggregates"
        return f"Aggregate [{detail}]"


@dataclass(frozen=True)
class SortOp:
    """ORDER BY over the (projected) result rows."""

    child: object
    order_by: tuple

    def describe(self) -> str:
        """One EXPLAIN line for the sort."""
        keys = ", ".join(
            describe_expr(item.expr) + ("" if item.ascending else " desc")
            for item in self.order_by)
        return f"Sort [{keys}]"


@dataclass(frozen=True)
class ProjectOp:
    """The select list (with the DISTINCT flag, applied after sorting)."""

    child: object
    columns: tuple
    distinct: bool

    def describe(self) -> str:
        """One EXPLAIN line for the projection."""
        cols = ", ".join(self.columns) or "*"
        head = "Project [distinct]" if self.distinct else "Project"
        return f"{head} [{cols}]"


@dataclass(frozen=True)
class LimitOp:
    """TOP n, applied last like the legacy walker."""

    child: object
    top: int

    def describe(self) -> str:
        """One EXPLAIN line for the row limit."""
        return f"Limit [{self.top}]"


@dataclass(frozen=True)
class ValuesOp:
    """Literal VALUES rows feeding an INSERT."""

    row_count: int

    def describe(self) -> str:
        """One EXPLAIN line for the VALUES input."""
        return f"Values [{self.row_count} rows]"


@dataclass(frozen=True)
class InsertOp:
    """INSERT write operator over a Values or select subtree."""

    child: object
    table: str
    columns: tuple

    def describe(self) -> str:
        """One EXPLAIN line for the insert."""
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        return f"Insert {self.table}{cols}"


@dataclass(frozen=True)
class UpdateOp:
    """UPDATE write operator over a filtered scan."""

    child: object
    table: str
    columns: tuple

    def describe(self) -> str:
        """One EXPLAIN line for the update."""
        return f"Update {self.table} set [{', '.join(self.columns)}]"


@dataclass(frozen=True)
class DeleteOp:
    """DELETE write operator over a filtered scan."""

    child: object
    table: str

    def describe(self) -> str:
        """One EXPLAIN line for the delete."""
        return f"Delete {self.table}"


@dataclass
class SelectPlan:
    """An optimized SELECT: the operator tree plus the executable shape.

    ``steps`` lists the scans in chosen join order; ``residual`` holds
    the conjuncts every surviving binding is still checked against
    (exactly mirroring the legacy full-WHERE re-check, so index and
    hash narrowing can only ever *skip* work, never change answers).
    """

    statement: SelectStatement
    epoch: int
    table_keys: tuple
    order: tuple
    steps: tuple
    residual: tuple
    empty: bool
    grouped: bool
    root: object = None

    @property
    def reordered(self) -> bool:
        """True when the join order differs from FROM order."""
        return self.order != tuple(range(len(self.order)))


@dataclass
class DmlPlan:
    """An optimized single-table UPDATE/DELETE: hint + write operator."""

    statement: object
    epoch: int
    table_keys: tuple
    hint: IndexHint | None
    root: object = None


# ----------------------------------------------------------------------
# expression utilities

_FOLD_CTX = EvalContext(session=None, variables={}, run_subquery=None,
                        functions=None)


def _is_pure(expr: Expression) -> bool:
    """True for expressions built only from literals and operators —
    the only shapes constant folding may evaluate at plan time."""
    if isinstance(expr, Literal):
        return True
    if isinstance(expr, UnaryOp):
        return _is_pure(expr.operand)
    if isinstance(expr, BinaryOp):
        return _is_pure(expr.left) and _is_pure(expr.right)
    return False


def fold_constants(expr: Expression) -> Expression:
    """Collapse pure literal subtrees to literals, bottom-up.

    Anything that could differ per execution — variables, functions,
    column references, subqueries — is left untouched, as is any pure
    subtree whose evaluation raises (the error must keep surfacing at
    execution time, exactly where the legacy walker raises it).  A
    short-circuit rewrite handles ``false AND x`` / ``true OR x`` even
    when ``x`` is not foldable, mirroring the evaluator's 3VL.
    """
    if isinstance(expr, UnaryOp):
        folded = UnaryOp(expr.op, fold_constants(expr.operand))
        return _try_fold(folded)
    if isinstance(expr, BinaryOp):
        left = fold_constants(expr.left)
        right = fold_constants(expr.right)
        folded = BinaryOp(expr.op, left, right)
        op = expr.op.upper()
        if op in ("AND", "OR") and isinstance(left, Literal):
            try:
                truth = left.value is not None and is_true(left.value)
            except Exception:
                return folded
            if op == "AND" and left.value is not None and not truth:
                return Literal(False)
            if op == "OR" and truth:
                return Literal(True)
            return folded
        return _try_fold(folded)
    return expr


def _try_fold(expr: Expression) -> Expression:
    """Evaluate a rebuilt operator node if it is pure; keep it if not
    (or if evaluating raises)."""
    if not _is_pure(expr):
        return expr
    try:
        return Literal(evaluate(expr, RowEnvironment([]), _FOLD_CTX))
    except Exception:
        return expr


def describe_expr(expr: Expression) -> str:
    """A compact, stable rendering of an expression for EXPLAIN text."""
    if isinstance(expr, Literal):
        if expr.value is None:
            return "NULL"
        if isinstance(expr.value, str):
            return f"'{expr.value}'"
        return str(expr.value)
    if isinstance(expr, ColumnRef):
        return ".".join(expr.parts)
    if isinstance(expr, VariableRef):
        return expr.name
    if isinstance(expr, Star):
        return ".".join(expr.qualifier) + ".*" if expr.qualifier else "*"
    if isinstance(expr, UnaryOp):
        joint = "" if expr.op == "-" else " "
        return f"{expr.op.lower()}{joint}{describe_expr(expr.operand)}"
    if isinstance(expr, BinaryOp):
        left, right = describe_expr(expr.left), describe_expr(expr.right)
        if isinstance(expr.left, BinaryOp):
            left = f"({left})"
        if isinstance(expr.right, BinaryOp):
            right = f"({right})"
        return f"{left} {expr.op.lower()} {right}"
    if isinstance(expr, FunctionCall):
        if expr.star:
            return f"{expr.name}(*)"
        args = ", ".join(describe_expr(a) for a in expr.args)
        prefix = "distinct " if expr.distinct else ""
        return f"{expr.name}({prefix}{args})"
    if isinstance(expr, InList):
        items = ", ".join(describe_expr(i) for i in expr.items)
        joint = "not in" if expr.negated else "in"
        return f"{describe_expr(expr.operand)} {joint} ({items})"
    if isinstance(expr, InSubquery):
        joint = "not in" if expr.negated else "in"
        return f"{describe_expr(expr.operand)} {joint} (subquery)"
    if isinstance(expr, Between):
        return (f"{describe_expr(expr.operand)} between "
                f"{describe_expr(expr.low)} and {describe_expr(expr.high)}")
    if isinstance(expr, IsNull):
        tail = "is not null" if expr.negated else "is null"
        return f"{describe_expr(expr.operand)} {tail}"
    if isinstance(expr, Exists):
        return "exists (subquery)"
    if isinstance(expr, ScalarSubquery):
        return "(subquery)"
    if isinstance(expr, CaseExpr):
        return "case ... end"
    return type(expr).__name__.lower()


_SUBQUERY_NODES = (ScalarSubquery, InSubquery, Exists)


def _conjunct_info(conjunct: Expression, sources, env) -> tuple:
    """Classify one WHERE conjunct: ``(positions, pushable)``.

    ``positions`` are the inner FROM positions it references; a conjunct
    is only pushable when every reference resolves to exactly one inner
    source and it contains no subquery and no side-effecting function
    call (``syb_sendmsg`` — its datagram count is observable).  Outer
    (correlated) and unresolvable references make it residual-only, so
    any resolution error still surfaces during execution, where the
    legacy walker raises it.
    """
    positions: set[int] = set()
    pushable = True

    def visit(node) -> None:
        nonlocal pushable
        if isinstance(node, _SUBQUERY_NODES):
            pushable = False
            return
        if isinstance(node, FunctionCall):
            if node.name.lower() == "syb_sendmsg":
                pushable = False
            for arg in node.args:
                visit(arg)
            return
        if isinstance(node, ColumnRef):
            try:
                source, _index = env.resolve(node)
            except Exception:
                pushable = False
                return
            for position, candidate in enumerate(sources):
                if candidate is source:
                    positions.add(position)
                    return
            pushable = False  # resolved into an outer query's sources
            return
        if isinstance(node, BinaryOp):
            visit(node.left)
            visit(node.right)
        elif isinstance(node, UnaryOp):
            visit(node.operand)
        elif isinstance(node, InList):
            visit(node.operand)
            for item in node.items:
                visit(item)
        elif isinstance(node, Between):
            visit(node.operand)
            visit(node.low)
            visit(node.high)
        elif isinstance(node, IsNull):
            visit(node.operand)
        elif isinstance(node, CaseExpr):
            if node.operand is not None:
                visit(node.operand)
            for when, then in node.whens:
                visit(when)
                visit(then)
            if node.default is not None:
                visit(node.default)
        elif isinstance(node, Star):
            pushable = False

    visit(conjunct)
    return positions, pushable


def _column_family(column: ColumnRef, env) -> str | None:
    """The comparison type family of a resolved column, or None."""
    try:
        source, index = env.resolve(column)
    except Exception:
        return None
    return _TYPE_FAMILIES.get(source.schema.columns[index].sql_type.name)


def _selectivity(conjunct: Expression) -> float:
    """Selectivity factor of one pushed conjunct (estimates only)."""
    if isinstance(conjunct, BinaryOp):
        if conjunct.op == "=":
            return _SELECTIVITY["eq"]
        if conjunct.op in _RANGE_OPS:
            return _SELECTIVITY["range"]
    if isinstance(conjunct, InList) and not conjunct.negated:
        return _SELECTIVITY["in"]
    if isinstance(conjunct, Between):
        return _SELECTIVITY["range"]
    return _SELECTIVITY["other"]


# ----------------------------------------------------------------------
# planning


@dataclass
class _Draft:
    """Mutable per-position working state while planning a SELECT."""

    pushed: list = field(default_factory=list)
    hint: IndexHint | None = None
    probe: tuple | None = None  # (column, other_position, other_expr,
    #                              own_expr, index_name, same_family)


def plan_select(executor, statement: SelectStatement, sources, tables,
                table_keys: tuple, env, epoch: int) -> SelectPlan:
    """Lower one SELECT into an optimized :class:`SelectPlan`.

    Planning happens at execution time (tables must be resolved to see
    schemas, indexes, and live cardinalities) and the result is memoized
    by the plan cache, keyed on statement identity + schema epoch +
    the per-position table keys.
    """
    n = len(sources)
    conjuncts = [fold_constants(c) for c in _conjuncts(statement.where)]

    drafts = [_Draft() for _ in range(n)]
    edges: list[tuple] = []
    residual: list[Expression] = []
    empty = False

    for conjunct in conjuncts:
        if isinstance(conjunct, Literal):
            try:
                if conjunct.value is not None and is_true(conjunct.value):
                    continue  # folded true: drop entirely
            except Exception:
                residual.append(conjunct)
                continue
            empty = True  # folded false/NULL: no row can qualify
            continue
        positions, pushable = _conjunct_info(conjunct, sources, env)
        if pushable and len(positions) == 1:
            drafts[positions.pop()].pushed.append(conjunct)
        else:
            residual.append(conjunct)
            if (isinstance(conjunct, BinaryOp) and conjunct.op == "="
                    and isinstance(conjunct.left, ColumnRef)
                    and isinstance(conjunct.right, ColumnRef)
                    and len(positions) == 2 and pushable is not False):
                left_pos = _position_of(conjunct.left, sources, env)
                right_pos = _position_of(conjunct.right, sources, env)
                if (left_pos is not None and right_pos is not None
                        and left_pos != right_pos):
                    family_l = _column_family(conjunct.left, env)
                    family_r = _column_family(conjunct.right, env)
                    same = (family_l is not None and family_l == family_r)
                    edges.append((left_pos, conjunct.left,
                                  right_pos, conjunct.right, same,
                                  conjunct))

    _port_index_hints(executor, conjuncts, sources, tables, env, drafts)

    # Greedy join order from live cardinalities: cheapest effective
    # input first, then prefer tables connected to what's placed.
    estimates = [
        _scan_estimate(len(tables[p].rows), drafts[p]) for p in range(n)]
    order: list[int] = []
    remaining = set(range(n))
    while remaining:
        if not order:
            pick = min(remaining, key=lambda p: (estimates[p], p))
        else:
            placed = set(order)

            def score(p: int) -> tuple:
                connected = any(
                    (a in placed and b == p) or (b in placed and a == p)
                    for a, _el, b, _er, _s, _c in edges
                ) or (drafts[p].probe is not None
                      and drafts[p].probe[1] in placed)
                return (0 if connected else 1, estimates[p], p)

            pick = min(remaining, key=score)
        order.append(pick)
        remaining.discard(pick)

    # Build the scan steps in join order, attaching join specs.
    steps: list[ScanOp] = []
    consumed_edges: set[int] = set()
    running = 1.0
    outer_node = None
    for position in order:
        draft = drafts[position]
        placed = {step.position for step in steps}
        spec = _join_spec(draft, position, placed, edges, consumed_edges)
        ref = statement.tables[position]
        estimate = max(1.0, estimates[position])
        scan = ScanOp(
            position=position,
            name=ref.name.describe(),
            alias=ref.alias,
            pushed=tuple(draft.pushed),
            hint=draft.hint,
            join=spec,
            base_rows=len(tables[position].rows),
            estimate=estimate,
        )
        if outer_node is None:
            running = estimate
            outer_node = scan
        else:
            running = max(1.0, running * estimate *
                          (_SELECTIVITY["eq"] if spec is not None else 1.0))
            outer_node = JoinOp(outer=outer_node, scan=scan,
                                estimate=running)
        steps.append(scan)

    # Drop residual conjuncts fully accounted for by exact hash joins.
    final_residual = tuple(
        c for c in residual if id(c) not in consumed_edges)

    grouped = bool(statement.group_by) or any(
        contains_aggregate(item.expr) for item in statement.items
    ) or (statement.having is not None)

    node = outer_node
    if final_residual and node is not None:
        node = FilterOp(child=node, predicates=final_residual,
                        estimate=max(1.0, running * _SELECTIVITY["other"]))
    if grouped:
        node = AggregateOp(child=node, group_by=tuple(statement.group_by),
                           having=statement.having)
    if statement.order_by:
        node = SortOp(child=node, order_by=tuple(statement.order_by))
    node = ProjectOp(
        child=node,
        columns=tuple(
            _item_label(item) for item in statement.items),
        distinct=statement.distinct,
    )
    if statement.top is not None:
        node = LimitOp(child=node, top=statement.top)

    return SelectPlan(
        statement=statement,
        epoch=epoch,
        table_keys=table_keys,
        order=tuple(order),
        steps=tuple(steps),
        residual=final_residual,
        empty=empty,
        grouped=grouped,
        root=node,
    )


def _join_spec(draft: _Draft, position: int, placed: set, edges: list,
               consumed_edges: set) -> JoinSpec | None:
    """Pick the join strategy for one scan given what's already placed.

    The legacy index probe wins when its outer side is placed (it keeps
    PR 4's ``index_scans`` accounting and exact bucket order); otherwise
    the first same-family equi-edge becomes a hash join, whose conjunct
    is *exact* (same matches as ``=``) and leaves the residual.
    """
    if draft.probe is not None and draft.probe[1] in placed:
        column, other_pos, other_expr, own_expr, _name, same = draft.probe
        return JoinSpec(strategy="probe", outer_position=other_pos,
                        inner_expr=own_expr, outer_expr=other_expr,
                        probe_column=column, same_family=same,
                        accounted=False)
    for left_pos, left_expr, right_pos, right_expr, same, conjunct in edges:
        if not same:
            continue
        own, other = None, None
        if left_pos == position and right_pos in placed:
            own, other, other_pos = left_expr, right_expr, right_pos
        elif right_pos == position and left_pos in placed:
            own, other, other_pos = right_expr, left_expr, left_pos
        if own is None:
            continue
        consumed_edges.add(id(conjunct))
        return JoinSpec(strategy="hash", outer_position=other_pos,
                        inner_expr=own, outer_expr=other,
                        probe_column=None, same_family=True,
                        accounted=True)
    return None


def _port_index_hints(executor, conjuncts, sources, tables, env,
                      drafts) -> None:
    """PR 4's ``_scan_plan`` selection, ported as planner rules.

    Control flow mirrors the legacy code exactly — first matching
    conjunct wins, at most one hint per position, probes only fire when
    the other side binds earlier in FROM order — so a planned run picks
    the same indexes, counts the same ``index_scans``, and (for IN
    hints, whose item-major candidate order is observable) enumerates
    candidates in the same order as the legacy walker.
    """
    hinted: set[int] = set()
    for conjunct in conjuncts:
        if isinstance(conjunct, InList) and not conjunct.negated:
            if any(_expr_has_columns(item) for item in conjunct.items):
                continue
            resolved = _indexed_position(
                executor, conjunct.operand, sources, tables, env, hinted)
            if resolved is None:
                continue
            position, table_index = resolved
            drafts[position].hint = IndexHint(
                kind="in", column=conjunct.operand.column_name,
                exprs=tuple(conjunct.items),
                index_name=table_index.name)
            hinted.add(position)
            continue
        if not (isinstance(conjunct, BinaryOp) and conjunct.op == "="):
            continue
        left, right = conjunct.left, conjunct.right
        if isinstance(left, ColumnRef) and isinstance(right, ColumnRef):
            resolved_left = _indexed_position(
                executor, left, sources, tables, env, set())
            resolved_right = _indexed_position(
                executor, right, sources, tables, env, set())
            best = None
            for own, other, own_expr in ((resolved_right, left, right),
                                         (resolved_left, right, left)):
                if own is None:
                    continue
                position, table_index = own
                if position in hinted:
                    continue
                other_source = _position_of(other, sources, env)
                if other_source is None or other_source >= position:
                    continue
                best = (position, table_index, other, own_expr)
                break
            if best is None:
                continue
            position, table_index, probe_expr, own_expr = best
            family_own = _column_family(own_expr, env)
            family_other = _column_family(probe_expr, env)
            drafts[position].probe = (
                own_expr.column_name, _position_of(probe_expr, sources, env),
                probe_expr, own_expr, table_index.name,
                family_own is not None and family_own == family_other)
            hinted.add(position)
            continue
        for column_side, value_side in ((left, right), (right, left)):
            if _expr_has_columns(value_side):
                continue
            resolved = _indexed_position(
                executor, column_side, sources, tables, env, hinted)
            if resolved is None:
                continue
            position, table_index = resolved
            drafts[position].hint = IndexHint(
                kind="eq", column=column_side.column_name,
                exprs=(value_side,), index_name=table_index.name)
            hinted.add(position)
            break


def _indexed_position(executor, column, sources, tables, env,
                      taken: set) -> tuple | None:
    """Legacy ``_indexed_position`` over a taken-set instead of the
    overrides dict (same semantics: skip already-hinted positions)."""
    if not isinstance(column, ColumnRef):
        return None
    try:
        source, _column_index = env.resolve(column)
    except Exception:
        return None
    for position, candidate in enumerate(sources):
        if candidate is source:
            break
    else:
        return None  # resolved into an outer query's sources
    if position in taken:
        return None
    table_index = tables[position].index_on(column.column_name)
    if table_index is None:
        return None
    return position, table_index


def _position_of(column, sources, env) -> int | None:
    """The inner FROM position a column reference binds to, or None."""
    if not isinstance(column, ColumnRef):
        return None
    try:
        source, _column_index = env.resolve(column)
    except Exception:
        return None
    for position, candidate in enumerate(sources):
        if candidate is source:
            return position
    return None


def _scan_estimate(base_rows: int, draft: _Draft) -> float:
    """Effective input size after hints and pushed predicates."""
    estimate = float(base_rows)
    if draft.hint is not None:
        estimate *= _SELECTIVITY[draft.hint.kind]
    for conjunct in draft.pushed:
        estimate *= _selectivity(conjunct)
    return max(1.0, estimate)


def _item_label(item) -> str:
    """Display label for one select-list item in EXPLAIN output."""
    if item.alias:
        return item.alias
    return describe_expr(item.expr)


def plan_dml(executor, statement, where, sources, tables, table_keys,
             env, epoch: int, kind: str, columns: tuple = ()) -> DmlPlan:
    """Plan a single-table UPDATE or DELETE: the write operator over a
    (possibly index-narrowed) scan.  Execution reuses the legacy DML
    machinery — triggers, tx-log, unique re-checks — candidate
    selection is all the planner changes."""
    conjuncts = [fold_constants(c) for c in _conjuncts(where)]
    drafts = [_Draft()]
    _port_index_hints(executor, conjuncts, sources, tables, env, drafts)
    draft = drafts[0]
    base = len(tables[0].rows)
    scan = ScanOp(
        position=0, name=statement.table.describe(), alias=None,
        pushed=(), hint=draft.hint, join=None, base_rows=base,
        estimate=_scan_estimate(base, draft))
    node: object = scan
    if where is not None:
        node = FilterOp(child=node, predicates=(where,),
                        estimate=max(1.0, scan.estimate *
                                     _SELECTIVITY["other"]))
    if kind == "update":
        node = UpdateOp(child=node, table=statement.table.describe(),
                        columns=columns)
    else:
        node = DeleteOp(child=node, table=statement.table.describe())
    return DmlPlan(statement=statement, epoch=epoch, table_keys=table_keys,
                   hint=draft.hint, root=node)


# ----------------------------------------------------------------------
# rendering


def render_plan(root, indent: int = 0) -> list[str]:
    """The indented EXPLAIN lines for an operator tree, root first."""
    if root is None:
        return []
    lines = [("  " * indent) + root.describe()]
    if isinstance(root, JoinOp):
        lines.extend(render_plan(root.outer, indent + 1))
        lines.extend(render_plan(root.scan, indent + 1))
        return lines
    child = getattr(root, "child", None)
    if child is not None:
        lines.extend(render_plan(child, indent + 1))
    return lines


def _conjuncts(expr: Expression | None) -> list[Expression]:
    """Flatten top-level ANDs into a conjunct list (empty for None)."""
    if expr is None:
        return []
    if isinstance(expr, BinaryOp) and expr.op.upper() == "AND":
        return _conjuncts(expr.left) + _conjuncts(expr.right)
    return [expr]


def _expr_has_columns(expr: Expression) -> bool:
    """True when an expression references any column (subqueries are
    conservatively treated as row-dependent) — legacy port."""
    if isinstance(expr, ColumnRef):
        return True
    if isinstance(expr, _SUBQUERY_NODES):
        return True
    if isinstance(expr, BinaryOp):
        return _expr_has_columns(expr.left) or _expr_has_columns(expr.right)
    if isinstance(expr, UnaryOp):
        return _expr_has_columns(expr.operand)
    if isinstance(expr, FunctionCall):
        return expr.star or any(_expr_has_columns(a) for a in expr.args)
    if isinstance(expr, InList):
        return _expr_has_columns(expr.operand) or any(
            _expr_has_columns(i) for i in expr.items)
    if isinstance(expr, Between):
        return (_expr_has_columns(expr.operand)
                or _expr_has_columns(expr.low)
                or _expr_has_columns(expr.high))
    if isinstance(expr, IsNull):
        return _expr_has_columns(expr.operand)
    if isinstance(expr, CaseExpr):
        parts = [expr.operand, expr.default]
        for when, then in expr.whens:
            parts.extend((when, then))
        return any(p is not None and _expr_has_columns(p) for p in parts)
    if isinstance(expr, Star):
        return True
    return False
