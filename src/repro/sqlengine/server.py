"""The SQL server: sessions, batch execution, and integration hooks.

This is the stand-in for the Sybase SQL Server of the paper.  It is a
passive engine: it knows nothing about ECA rules, Snoop, or composite
events.  The only outward-facing hooks are:

- ``datagram_sink`` — where the ``syb_sendmsg`` builtin delivers its
  messages (the ECA Agent plugs its notification channel in here, playing
  the role of the UDP network between the server and the agent);
- ``clock`` — the source for ``getdate()``, overridable for deterministic
  tests;
- an :class:`~repro.sqlengine.locks.EngineLockManager` deciding, per
  batch, between fine-grained per-table reader/writer locks and an
  engine-wide exclusive gate (the old single-scheduler behaviour, kept
  for everything the static analyzer cannot bound: DDL, procedures,
  triggers, transactions, notifications).  Nested execution — a
  notification handler immediately issuing SQL from within a batch —
  always runs under the exclusive gate, which is reentrant.
"""

from __future__ import annotations

import datetime as _dt
import threading
from typing import Callable

from .builtins import standard_functions
from .catalog import Catalog
from .errors import SqlError
from .executor import ExecutionState, Executor
from . import planner
from .locks import EngineLockManager
from .parser import parse_batch, split_batches
from .plancache import PlanCache
from .results import BatchResult
from .transactions import TransactionLog

#: Signature of a datagram sink: (host, port, message) -> None
DatagramSink = Callable[[str, int, str], None]


class Session:
    """One client session: identity, current database, transaction state."""

    _next_id = 1
    _id_lock = threading.Lock()

    def __init__(self, server: "SqlServer", user: str, database: str):
        with Session._id_lock:
            self.session_id = Session._next_id
            Session._next_id += 1
        self.server = server
        self.user = user
        self.database = database
        self.tx_log = TransactionLog()
        self.global_vars: dict[str, object] = {"@@rowcount": 0, "@@trancount": 0}
        self._closed = False

    @property
    def closed(self) -> bool:
        """Whether this session was closed (execute() refuses it)."""
        return self._closed

    @closed.setter
    def closed(self, value: bool) -> None:
        """Close (or reopen) the session.

        A client that disconnects mid-transaction never sends ROLLBACK,
        so closing a session with an open transaction rolls it back here
        — under the exclusive gate, since the rollback restores table
        snapshots — and releases the lock manager's transaction pin.
        Without this, an abandoned BEGIN TRAN would force every later
        batch engine-wide onto the exclusive gate forever.
        """
        value = bool(value)
        if value and not self._closed and self.tx_log.active:
            lock_manager = self.server.lock_manager
            with lock_manager.exclusive_scope():
                self.tx_log.rollback()
                self.global_vars["@@trancount"] = 0
                lock_manager.note_transaction_end(self.session_id)
                self.server.on_transaction_end(self, committed=False)
        self._closed = value

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Session({self.session_id}, user={self.user!r}, db={self.database!r})"


class SqlServer:
    """An in-memory multi-database SQL server.

    Args:
        default_database: created at startup (plus ``master``).
        clock: zero-argument callable returning the current datetime;
            ``getdate()`` and default timestamps use it.
    """

    def __init__(self, default_database: str = "master",
                 clock: Callable[[], _dt.datetime] | None = None):
        self.catalog = Catalog()
        self.catalog.create_database("master")
        if default_database.lower() != "master":
            self.catalog.create_database(default_database)
        self.default_database = default_database
        self.functions = standard_functions()
        self.executor = Executor(self)
        self.clock = clock or _dt.datetime.now
        self.triggers_enabled = True
        self.last_displaced_triggers: list[str] = []
        self._datagram_sink: DatagramSink | None = None
        #: datagrams sent while no sink is attached (inspectable by tests)
        self.unsunk_datagrams: list[tuple[str, int, str]] = []
        #: per-batch lock decisions: fine-grained table locks vs the
        #: engine-wide exclusive gate (see repro.sqlengine.locks)
        self.lock_manager = EngineLockManager(self)
        self._tx_end_listeners: list[Callable[[Session, bool], None]] = []
        #: count of batches executed, for the overhead benches
        self.batches_executed = 0
        #: parsed-batch cache; epoch-checked against catalog.schema_epoch
        self.plan_cache = PlanCache()
        #: cost-based DAG executor toggle; False falls back to the legacy
        #: AST walker (kept for one release as the difftest reference)
        self.planner_enabled = planner.DEFAULT_ENABLED
        #: count of index-backed scan narrowings (eq/IN/join probes)
        self.index_scans = 0
        #: optional metrics sink (attach_metrics); like the datagram sink,
        #: an outward-facing hook that leaves the engine itself passive
        self.metrics = None
        self._m_statements = None
        self._m_statement_seconds = None
        self._m_plan_cache = None
        self._m_plan_cache_origin = None
        self._m_index_scans = None
        self._m_plan_ops = None
        self._m_planner_seconds = None
        #: optional resource-accounting sink (attach_accounting); the
        #: executor charges row scans and cache lookups to whatever
        #: per-session/per-rule frames the agent has open
        self.accounting = None

    # ------------------------------------------------------------------
    # hooks

    def now(self) -> _dt.datetime:
        """Current time per the configured clock."""
        return self.clock()

    def attach_metrics(self, registry) -> None:
        """Attach (or detach, with ``None``) a metrics registry.

        While attached and enabled, the executor reports statement counts
        and latency by statement type (``sql_statements_total`` /
        ``sql_statement_seconds``); otherwise the hook is one branch per
        statement.
        """
        self.metrics = registry
        if registry is None:
            self._m_statements = None
            self._m_statement_seconds = None
            self._m_plan_cache = None
            self._m_plan_cache_origin = None
            self._m_index_scans = None
            self._m_plan_ops = None
            self._m_planner_seconds = None
            return
        self._m_statements = registry.counter(
            "sql_statements_total",
            "SQL statements executed by the engine", ("type",))
        self._m_statement_seconds = registry.histogram(
            "sql_statement_seconds",
            "SQL statement execution latency (seconds)", ("type",))
        self._m_plan_cache = registry.counter(
            "sql_plan_cache_total",
            "Plan cache lookups by outcome", ("outcome",))
        self._m_plan_cache_origin = registry.counter(
            "sql_plan_cache_origin_total",
            "Plan cache lookups by statement origin and outcome",
            ("origin", "outcome"))
        self._m_index_scans = registry.counter(
            "sql_index_scans_total",
            "Index-backed scan narrowings by predicate kind", ("kind",))
        self._m_plan_ops = registry.counter(
            "sql_plan_operator_total",
            "Rows produced by DAG plan operators", ("op",))
        self._m_planner_seconds = registry.histogram(
            "sql_planner_seconds",
            "Time spent lowering and optimizing statement plans", ())

    def attach_accounting(self, accounting) -> None:
        """Attach (or detach, with ``None``) a resource-accounting plane.

        While attached, the executor and plan cache charge rows scanned,
        scan kinds, and cache outcomes to the ambient
        :class:`~repro.obs.opcontext.OpContext` frames the agent opened;
        detached, every hook is one ``None`` check.
        """
        self.accounting = accounting

    def note_plan_ops(self, counts: dict) -> None:
        """Fold one execution's per-operator row counts into the
        ``sql_plan_operator_total{op=...}`` counter (no-op unmetered)."""
        if self._m_plan_ops is None or not counts:
            return
        for op, amount in counts.items():
            if amount:
                self._m_plan_ops.labels(op).inc(amount)

    def note_planner_time(self, seconds: float) -> None:
        """Record one fresh plan's lowering+optimization latency."""
        if self._m_planner_seconds is not None:
            self._m_planner_seconds.observe(seconds)

    def explain_text(self, sql: str, session) -> str | None:
        """Best-effort EXPLAIN of the first explainable statement in
        ``sql``, for the flight recorder's slow-op entries.  Returns the
        joined plan lines (truncated), or None when the text does not
        parse, touches unknown tables, or contains nothing plannable —
        diagnostics must never fail the capture path."""
        try:
            batches = split_batches(sql)
            if not batches:
                return None
            statements = parse_batch(batches[0])
            result = BatchResult()
            state = ExecutionState(session, result)
            for statement in statements:
                lines = self.executor._explain_lines(statement, state,
                                                     required=False)
                if lines:
                    return "\n".join(lines)[:2000]
        except Exception:
            return None
        return None

    def _statement_origin(self) -> str:
        """Classify the statement being parsed for cache accounting:
        LED-generated per-occurrence ``rule`` SQL, a ``client`` batch
        inside a gateway command, or agent-internal ``system`` SQL."""
        accounting = self.accounting
        if accounting is None:
            return "system"
        return accounting.origin()

    def set_datagram_sink(self, sink: DatagramSink | None) -> None:
        """Attach (or detach) the destination for ``syb_sendmsg`` output."""
        self._datagram_sink = sink

    def send_datagram(self, host: str, port: int, message: str) -> None:
        """Deliver one ``syb_sendmsg`` datagram to the sink (or stash it)."""
        if self._datagram_sink is not None:
            self._datagram_sink(host, port, message)
        else:
            self.unsunk_datagrams.append((host, port, message))

    def add_transaction_end_listener(
            self, listener: Callable[[Session, bool], None]) -> None:
        """Register a callback fired at top-level COMMIT/ROLLBACK.

        The ECA Agent uses this to release DEFERRED-coupled rule actions at
        transaction end.
        """
        self._tx_end_listeners.append(listener)

    def on_transaction_end(self, session: Session, committed: bool) -> None:
        for listener in self._tx_end_listeners:
            listener(session, committed)

    # ------------------------------------------------------------------
    # sessions and execution

    def create_session(self, user: str = "dbo",
                       database: str | None = None) -> Session:
        """Open a session for ``user`` in ``database`` (default database)."""
        name = database or self.default_database
        self.catalog.get_database(name)  # existence check
        return Session(self, user, name)

    def execute(self, sql: str, session: Session,
                params: dict[str, object] | None = None) -> BatchResult:
        """Execute a script (possibly several ``go``-separated batches).

        All results and messages are merged into one :class:`BatchResult`,
        which is what a TDS client would accumulate.  Engine errors raise
        :class:`~repro.sqlengine.errors.SqlError` subclasses.

        ``params`` pre-seeds each batch's local variables (``@name`` ->
        value).  The agent's generated per-occurrence SQL uses this to
        keep its batch text constant — parameter slots instead of inlined
        literals — so the plan cache can serve rule-origin statements.

        Locking is per batch, not per script: the lock manager analyzes
        each parsed batch and takes either its table locks (shared gate)
        or the exclusive gate.  A multi-batch script is therefore no
        longer atomic against concurrent sessions between its batches —
        the same contract a real TDS client gets from a server that
        schedules batches independently.
        """
        if session.closed:
            raise SqlError("session is closed")
        result = BatchResult()
        for batch_text in split_batches(sql):
            statements = self._parse_cached(batch_text)
            with self.lock_manager.batch_scope(statements, session):
                self.batches_executed += 1
                self.executor.execute_batch(
                    statements, session, result,
                    variables=dict(params) if params else None)
        return result

    def _parse_cached(self, batch_text: str):
        """Parse one batch, consulting the plan cache when enabled.

        Parsing stays interleaved with execution — a later batch's syntax
        error must still surface only after the earlier batches ran — so
        caching happens per batch inside the script loop, not per script.
        Statements are late-bound (names resolve at execution), so a hit
        is semantically identical to a fresh parse at the same epoch.
        """
        cache = self.plan_cache
        if not cache.enabled:
            return parse_batch(batch_text)
        epoch = self.catalog.schema_epoch
        accounting = self.accounting
        origin = "system" if accounting is None else accounting.origin()
        statements = cache.get(batch_text, epoch, origin=origin)
        if origin != "system":
            accounting.note_plan_cache(statements is not None)
        if statements is not None:
            if self._m_plan_cache is not None:
                self._m_plan_cache.labels("hit").inc()
                self._m_plan_cache_origin.labels(origin, "hit").inc()
            return statements
        if self._m_plan_cache is not None:
            self._m_plan_cache.labels("miss").inc()
            self._m_plan_cache_origin.labels(origin, "miss").inc()
        statements = tuple(parse_batch(batch_text))
        # Only cache under an unchanged epoch: if parsing itself executed
        # nothing, the epoch cannot move, but guard anyway for safety.
        if self.catalog.schema_epoch == epoch:
            cache.put(batch_text, epoch, statements)
        return statements

    # ------------------------------------------------------------------
    # convenience introspection (used by tests, benches, and the agent)

    def table_names(self, database: str) -> list[str]:
        """All ``owner.name`` tables in a database, sorted."""
        db = self.catalog.get_database(database)
        return sorted(table.qualified_name for table in db.tables.values())

    def view_names(self, database: str) -> list[str]:
        db = self.catalog.get_database(database)
        return sorted(view.qualified_name for view in db.views.values())

    def procedure_names(self, database: str) -> list[str]:
        db = self.catalog.get_database(database)
        return sorted(proc.qualified_name for proc in db.procedures.values())

    def trigger_names(self, database: str) -> list[str]:
        db = self.catalog.get_database(database)
        return sorted(trigger.qualified_name for trigger in db.triggers.values())
