"""Unified telemetry export: metrics + spans + provenance as JSONL.

The admin plane (`show agent stats/trace/events`) answers questions from
a live terminal; this module serves the other consumer — offline
analysis.  A :class:`TelemetryExporter` snapshots the three in-memory
telemetry surfaces (``MetricsRegistry``, ``PipelineTrace``,
``ProvenanceJournal``) into one append-only JSONL file that rotates by
size, so a long benchmark or soak run leaves behind a bounded,
machine-readable artifact (CI uploads it as ``BENCH_telemetry.jsonl``).

Line schema — every line is one JSON object with a ``type`` field:

- ``{"type": "snapshot", "label", "at", "lines", ...}`` — one per
  :meth:`TelemetryExporter.export_snapshot` call, written first.
- ``{"type": "metric", "name", "kind", "labels", "value"}`` — one per
  metric child; histogram values are summary dicts.
- ``{"type": "span", "seq", "step", "detail", "start", "duration",
  "depth", "parent", "trace_id"}`` — one per trace record.
- ``{"type": "provenance", "seq", "kind", "name", "context", "detail",
  "parents", "at", "duration", "trace_id"}`` — one per journal record.
- ``{"type": "node_stat", "name", "context", "fires", "consumed",
  "latency": {...summary...}}`` — one per (event node, context).
- ``{"type": "slow_op", ...}`` — one per flight-recorder capture (the
  full :meth:`~repro.obs.flightrec.SlowOp.as_dict` payload).
- ``{"type": "op_totals", "scope": "session"|"rule", "key", ...}`` —
  one per tracked session / rule in the accounting plane.

Spans, provenance and slow ops export *incrementally*: each snapshot
only writes records newer than the previous snapshot's high-water mark,
spans and provenance optionally thinned by deterministic stride sampling
(``sample=0.1`` keeps every 10th record by sequence number —
reproducible, no RNG).
"""

from __future__ import annotations

import json
import os
import threading
import time

__all__ = ["TelemetryExporter"]


def _stride(sample: float) -> int:
    """Sampling rate -> keep-every-Nth stride (1.0 -> 1, 0.1 -> 10)."""
    if not 0.0 < sample <= 1.0:
        raise ValueError(f"sample rate must be in (0, 1], got {sample}")
    return max(1, round(1.0 / sample))


class TelemetryExporter:
    """Snapshots telemetry surfaces into rotating, size-bounded JSONL.

    Args:
        path: target JSONL file.  On rotation it becomes ``path.1``,
            ``path.1`` becomes ``path.2``, … up to ``max_files`` rotated
            generations (the oldest is deleted).
        max_bytes: rotate before a snapshot would push the file past
            this size (0 disables rotation).
        max_files: rotated generations kept besides the live file.
        span_sample: fraction of trace spans to export (deterministic
            stride by span seq; 1.0 exports everything).
        provenance_sample: same for provenance records.
        clock: wall-clock source for snapshot timestamps.
    """

    def __init__(self, path: str, max_bytes: int = 5_000_000,
                 max_files: int = 3, span_sample: float = 1.0,
                 provenance_sample: float = 1.0, clock=time.time):
        self.path = path
        self.max_bytes = max_bytes
        self.max_files = max_files
        self._span_stride = _stride(span_sample)
        self._prov_stride = _stride(provenance_sample)
        self._clock = clock
        self._lock = threading.Lock()
        # Incremental high-water marks: only records with seq strictly
        # above these are written by the next snapshot.
        self._last_span_seq = 0
        self._last_prov_seq = 0
        self._last_slow_seq = 0
        self.snapshots_written = 0

    # ------------------------------------------------------------------

    def export_snapshot(self, metrics=None, trace=None, journal=None,
                        flightrec=None, accounting=None,
                        label: str = "") -> int:
        """Write one snapshot of the given surfaces; returns lines written.

        Any subset of ``metrics`` / ``trace`` / ``journal`` /
        ``flightrec`` / ``accounting`` may be None.  Thread-safe;
        concurrent snapshots serialize on the exporter lock.
        """
        lines: list[str] = []
        metric_lines = self._metric_lines(metrics) if metrics is not None else []
        span_lines, span_mark = (
            self._span_lines(trace) if trace is not None else ([], None))
        prov_lines, node_lines, prov_mark = (
            self._provenance_lines(journal) if journal is not None
            else ([], [], None))
        slow_lines, slow_mark = (
            self._slow_op_lines(flightrec) if flightrec is not None
            else ([], None))
        totals_lines = (
            self._op_totals_lines(accounting) if accounting is not None
            else [])
        header = {
            "type": "snapshot",
            "label": label,
            "at": self._clock(),
            "lines": (len(metric_lines) + len(span_lines)
                      + len(prov_lines) + len(node_lines)
                      + len(slow_lines) + len(totals_lines)),
        }
        lines.append(json.dumps(header, sort_keys=True))
        lines.extend(metric_lines)
        lines.extend(span_lines)
        lines.extend(prov_lines)
        lines.extend(node_lines)
        lines.extend(slow_lines)
        lines.extend(totals_lines)
        payload = "\n".join(lines) + "\n"
        with self._lock:
            self._rotate_if_needed(len(payload.encode("utf-8")))
            with open(self.path, "a", encoding="utf-8") as handle:
                handle.write(payload)
            if span_mark is not None:
                self._last_span_seq = max(self._last_span_seq, span_mark)
            if prov_mark is not None:
                self._last_prov_seq = max(self._last_prov_seq, prov_mark)
            if slow_mark is not None:
                self._last_slow_seq = max(self._last_slow_seq, slow_mark)
            self.snapshots_written += 1
        return len(lines)

    # ------------------------------------------------------------------
    # per-surface serialization

    def _metric_lines(self, metrics) -> list[str]:
        out: list[str] = []
        for name, family in sorted(metrics.as_dict().items()):
            for entry in family["values"]:
                out.append(json.dumps({
                    "type": "metric",
                    "name": name,
                    "kind": family["type"],
                    "labels": entry["labels"],
                    "value": entry["value"],
                }, sort_keys=True))
        return out

    def _span_lines(self, trace) -> tuple[list[str], int]:
        out: list[str] = []
        mark = self._last_span_seq
        for record in trace.snapshot():
            if record.seq <= self._last_span_seq:
                continue
            mark = max(mark, record.seq)
            if record.seq % self._span_stride:
                continue
            out.append(json.dumps({
                "type": "span",
                "seq": record.seq,
                "step": record.step,
                "detail": record.detail,
                "start": record.start,
                "duration": record.duration,
                "depth": record.depth,
                "parent": record.parent,
                "trace_id": record.trace_id,
            }, sort_keys=True))
        return out, mark

    def _provenance_lines(self, journal) -> tuple[list[str], list[str], int]:
        records: list[str] = []
        mark = self._last_prov_seq
        for record in journal.snapshot():
            if record.seq <= self._last_prov_seq:
                continue
            mark = max(mark, record.seq)
            if record.seq % self._prov_stride:
                continue
            records.append(json.dumps({
                "type": "provenance",
                "seq": record.seq,
                "kind": record.kind,
                "name": record.name,
                "context": record.context,
                "detail": record.detail,
                "parents": list(record.parents),
                "at": record.at,
                "duration": record.duration,
                "trace_id": record.trace_id,
            }, sort_keys=True))
        nodes: list[str] = []
        for name, context, stat in journal.node_stats():
            nodes.append(json.dumps({
                "type": "node_stat",
                "name": name,
                "context": context,
                "fires": stat.fires,
                "consumed": stat.consumed,
                "latency": stat.summary().as_dict(),
            }, sort_keys=True))
        return records, nodes, mark

    def _slow_op_lines(self, flightrec) -> tuple[list[str], int]:
        out: list[str] = []
        mark = self._last_slow_seq
        for record in flightrec.snapshot():
            if record.seq <= self._last_slow_seq:
                continue
            mark = max(mark, record.seq)
            payload = record.as_dict()
            payload["type"] = "slow_op"
            out.append(json.dumps(payload, sort_keys=True, default=str))
        return out, mark

    def _op_totals_lines(self, accounting) -> list[str]:
        out: list[str] = []
        for totals in accounting.top_sessions(accounting.max_sessions):
            payload = totals.as_dict()
            payload["type"] = "op_totals"
            payload["scope"] = "session"
            out.append(json.dumps(payload, sort_keys=True, default=str))
        for totals in accounting.top_rules(accounting.max_rules):
            payload = totals.as_dict()
            payload["type"] = "op_totals"
            payload["scope"] = "rule"
            out.append(json.dumps(payload, sort_keys=True, default=str))
        return out

    # ------------------------------------------------------------------
    # rotation

    def _rotate_if_needed(self, incoming_bytes: int) -> None:
        """Rotate ``path`` -> ``path.1`` -> … before an oversize append."""
        if self.max_bytes <= 0:
            return
        try:
            current = os.path.getsize(self.path)
        except OSError:
            return
        if current == 0 or current + incoming_bytes <= self.max_bytes:
            return
        oldest = f"{self.path}.{self.max_files}"
        if os.path.exists(oldest):
            os.remove(oldest)
        for index in range(self.max_files - 1, 0, -1):
            src = f"{self.path}.{index}"
            if os.path.exists(src):
                os.replace(src, f"{self.path}.{index + 1}")
        if self.max_files > 0:
            os.replace(self.path, f"{self.path}.1")
