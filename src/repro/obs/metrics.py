"""Thread-safe metrics primitives and the process-wide registry.

The paper's evaluation (Figures 15-17) is entirely about *where time
goes* inside the ECA Agent; this module provides the counters, gauges and
latency histograms the instrumented pipeline reports into, plus the
summary math the benchmark suite reuses for tail-latency reporting.

Design constraints:

- **Thread-safe**: the agent fires rules from notification-listener and
  detached-action threads concurrently with client commands; every
  mutation takes the metric's lock, so increments are never lost.
- **Bounded**: histograms keep a fixed-size ring of the most recent
  samples (count/sum/max are exact over *all* observations; percentiles
  are computed over the retained window).
- **Cheap when disabled**: every mutator starts with one branch on the
  registry's ``enabled`` flag and returns immediately when off.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricFamily",
    "MetricsRegistry",
    "percentile",
    "summarize",
]

#: Default number of samples a histogram retains for percentile math.
DEFAULT_RESERVOIR = 1024


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already *sorted* sample list.

    ``percentile(sorted(range(1, 101)), 95) == 95``.  Raises on an empty
    sample set (callers guard on count).
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sample set")
    if not 0 < q <= 100:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    rank = math.ceil(q / 100.0 * len(sorted_values))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class HistogramSummary:
    """Point-in-time summary of one histogram (or raw sample list)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @property
    def median(self) -> float:
        return self.p50

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


_EMPTY_SUMMARY = HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarize(samples: list[float]) -> HistogramSummary:
    """Summary statistics over a raw sample list (benchmark helper)."""
    if not samples:
        return _EMPTY_SUMMARY
    ordered = sorted(samples)
    return HistogramSummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=percentile(ordered, 50),
        p95=percentile(ordered, 95),
        p99=percentile(ordered, 99),
        max=ordered[-1],
    )


class _Metric:
    """Base: one labeled child of a family."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self._lock = threading.Lock()

    def value(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count (resettable by the operator)."""

    kind = "counter"

    def __init__(self, registry: "MetricsRegistry"):
        super().__init__(registry)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge(_Metric):
    """A value that can go up and down (queue depths, open sessions)."""

    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry"):
        super().__init__(registry)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Metric):
    """Latency/size distribution with a bounded sample reservoir.

    ``count``/``sum``/``max`` are exact over every observation; the
    percentile window is a ring of the most recent ``reservoir`` samples
    (deterministic, allocation-free at steady state).
    """

    kind = "histogram"

    def __init__(self, registry: "MetricsRegistry",
                 reservoir: int = DEFAULT_RESERVOIR):
        super().__init__(registry)
        if reservoir < 1:
            raise ValueError("histogram reservoir must be >= 1")
        self._reservoir_size = reservoir
        self._samples: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._max = 0.0

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            if len(self._samples) < self._reservoir_size:
                self._samples.append(value)
            else:
                self._samples[self._count % self._reservoir_size] = value
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    @property
    def count(self) -> int:
        return self._count

    def summary(self) -> HistogramSummary:
        with self._lock:
            if not self._count:
                return _EMPTY_SUMMARY
            ordered = sorted(self._samples)
            return HistogramSummary(
                count=self._count,
                mean=self._sum / self._count,
                p50=percentile(ordered, 50),
                p95=percentile(ordered, 95),
                p99=percentile(ordered, 99),
                max=self._max,
            )

    def value(self) -> HistogramSummary:
        return self.summary()

    def reset(self) -> None:
        with self._lock:
            self._samples = []
            self._count = 0
            self._sum = 0.0
            self._max = 0.0


class MetricFamily:
    """One named metric with a fixed label schema and per-label children.

    An unlabeled family acts as its own single child: ``inc``/``set``/
    ``observe`` proxy to ``labels()`` with no values.
    """

    def __init__(self, registry: "MetricsRegistry", name: str,
                 metric_cls: type, help: str, labelnames: tuple[str, ...],
                 **metric_kwargs):
        self.registry = registry
        self.name = name
        self.metric_cls = metric_cls
        self.help = help
        self.labelnames = tuple(labelnames)
        self._metric_kwargs = metric_kwargs
        self._children: dict[tuple[str, ...], _Metric] = {}
        self._lock = threading.Lock()

    @property
    def kind(self) -> str:
        return self.metric_cls.kind

    def labels(self, *values) -> _Metric:
        """The child metric for one label-value tuple (created on demand)."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric '{self.name}' takes {len(self.labelnames)} label "
                f"values ({', '.join(self.labelnames)}), got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self.metric_cls(self.registry, **self._metric_kwargs)
                    self._children[key] = child
        return child

    # -- unlabeled convenience proxies ---------------------------------

    def inc(self, amount=1) -> None:
        self.labels().inc(amount)

    def dec(self, amount=1) -> None:
        self.labels().dec(amount)

    def set(self, value) -> None:
        self.labels().set(value)

    def observe(self, value) -> None:
        self.labels().observe(value)

    def value(self):
        return self.labels().value()

    def summary(self):
        return self.labels().summary()

    # -- iteration ------------------------------------------------------

    def children(self) -> list[tuple[dict[str, str], _Metric]]:
        """(labels dict, metric) pairs, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), metric)
            for key, metric in items
        ]

    def reset(self) -> None:
        with self._lock:
            children = list(self._children.values())
        for child in children:
            child.reset()


class MetricsRegistry:
    """Registry of labeled metric families (one per process or per agent).

    Registration is idempotent: asking for an existing name returns the
    existing family (the kind and label schema must match).  All mutators
    on child metrics are no-ops while ``enabled`` is False.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------

    def _family(self, name: str, metric_cls: type, help: str,
                labelnames: tuple[str, ...], **kwargs) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.metric_cls is not metric_cls:
                    raise ValueError(
                        f"metric '{name}' already registered as "
                        f"{family.kind}, not {metric_cls.kind}")
                if family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric '{name}' already registered with labels "
                        f"{family.labelnames}, not {tuple(labelnames)}")
                return family
            family = MetricFamily(
                self, name, metric_cls, help, tuple(labelnames), **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, Counter, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, Gauge, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  reservoir: int = DEFAULT_RESERVOIR) -> MetricFamily:
        return self._family(
            name, Histogram, help, labelnames, reservoir=reservoir)

    # -- introspection / export ----------------------------------------

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def as_dict(self) -> dict[str, dict]:
        """Nested-dict export: ``{name: {type, help, values: [...]}}``."""
        out: dict[str, dict] = {}
        for family in self.families():
            values = []
            for labels, metric in family.children():
                value = metric.value()
                if isinstance(value, HistogramSummary):
                    value = value.as_dict()
                values.append({"labels": labels, "value": value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return out

    def render_text(self) -> str:
        """Prometheus-style text exposition of every family."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, metric in family.children():
                suffix = _render_labels(labels)
                value = metric.value()
                if isinstance(value, HistogramSummary):
                    for stat, stat_value in value.as_dict().items():
                        lines.append(
                            f"{family.name}_{stat}{suffix} {_fmt(stat_value)}")
                else:
                    lines.append(f"{family.name}{suffix} {_fmt(value)}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every metric (families and label schemas survive)."""
        for family in self.families():
            family.reset()


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double quote, and line feed."""
    return (value.replace("\\", r"\\")
                 .replace('"', r"\"")
                 .replace("\n", r"\n"))


def _escape_help(text: str) -> str:
    """Escape HELP text per the exposition format (backslash, line feed)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in labels.items()
    )
    return "{" + inner + "}"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.9g}"
    return str(value)
