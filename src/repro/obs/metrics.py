"""Thread-safe metrics primitives and the process-wide registry.

The paper's evaluation (Figures 15-17) is entirely about *where time
goes* inside the ECA Agent; this module provides the counters, gauges and
latency histograms the instrumented pipeline reports into, plus the
summary math the benchmark suite reuses for tail-latency reporting.

Design constraints:

- **Thread-safe**: the agent fires rules from notification-listener and
  detached-action threads concurrently with client commands; every
  mutation takes the metric's lock, so increments are never lost.
- **Bounded**: histograms are *log-bucketed* — a fixed 1-2-5 decade
  series of upper bounds from 1µs to 10s by default — so memory is
  constant regardless of observation count.  ``count``/``sum``/``max``
  are exact; p50/p95/p99 are estimated by cumulative walk with linear
  interpolation inside the selected bucket, clamped to the observed
  maximum (so a quantile never exceeds any real observation).
- **Cheap when disabled**: every mutator starts with one branch on the
  registry's ``enabled`` flag and returns immediately when off.

The text exposition renders histograms in the Prometheus native format —
cumulative ``_bucket{le="..."}`` lines ending at ``le="+Inf"`` plus
``_sum`` — alongside the pre-digested ``_count``/``_mean``/``_p50``/
``_p95``/``_p99``/``_max`` summary lines the admin plane shows.
"""

from __future__ import annotations

import bisect
import math
import threading
from collections import deque
from dataclasses import dataclass

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricFamily",
    "MetricsRegistry",
    "bucket_bounds",
    "percentile",
    "quantile_from_buckets",
    "summarize",
]


def _one_two_five(low_exp: int = -6, high_exp: int = 1) -> tuple[float, ...]:
    """A 1-2-5 decade series of bucket upper bounds: 1e<low_exp> ..
    1e<high_exp> (each bound parsed from its decimal literal, so the
    rendered ``le`` labels are the familiar short forms)."""
    bounds = [
        float(f"{mantissa}e{exponent}")
        for exponent in range(low_exp, high_exp)
        for mantissa in (1, 2, 5)
    ]
    bounds.append(float(f"1e{high_exp}"))
    return tuple(bounds)


#: Default latency bucket upper bounds (seconds): 1µs .. 10s in 1-2-5
#: steps, 22 buckets plus the implicit +Inf overflow bucket.
DEFAULT_BUCKETS = _one_two_five()


def quantile_from_buckets(bounds: tuple[float, ...], counts,
                          q: float, maximum: float | None = None) -> float:
    """Estimate the q-th percentile from per-bucket counts.

    ``bounds`` are ascending upper bounds; ``counts`` has one entry per
    bucket plus a trailing overflow count.  The estimator finds the
    nearest-rank bucket in the cumulative distribution, then linearly
    interpolates between the bucket's lower and upper bound (the first
    bucket interpolates up from 0; the overflow bucket reports
    ``maximum``).  The result is clamped to ``maximum`` so an estimate
    never exceeds a real observation.  Returns 0.0 for empty counts.
    """
    if not 0 < q <= 100:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    total = sum(counts)
    if not total:
        return 0.0
    rank = math.ceil(q / 100.0 * total)
    seen = 0
    for index, bucket_count in enumerate(counts):
        if not bucket_count:
            continue
        seen += bucket_count
        if seen < rank:
            continue
        if index == len(bounds):  # overflow bucket: no finite upper bound
            return maximum if maximum is not None else bounds[-1]
        lower = bounds[index - 1] if index else 0.0
        upper = bounds[index]
        fraction = (rank - (seen - bucket_count)) / bucket_count
        estimate = lower + fraction * (upper - lower)
        if maximum is not None and estimate > maximum:
            return maximum
        return estimate
    return maximum if maximum is not None else bounds[-1]


def bucket_bounds(value: float,
                  bounds: tuple[float, ...] = DEFAULT_BUCKETS
                  ) -> tuple[float, float]:
    """The (lower, upper) bounds of the bucket ``value`` falls into.

    The benchmark suite uses the returned width as the agreement
    tolerance between histogram-estimated and wall-clock quantiles.
    The overflow bucket's upper bound is ``+Inf``.
    """
    index = bisect.bisect_left(bounds, value)
    if index >= len(bounds):
        return bounds[-1], math.inf
    return (bounds[index - 1] if index else 0.0, bounds[index])


def percentile(sorted_values: list[float], q: float) -> float:
    """Nearest-rank percentile of an already *sorted* sample list.

    ``percentile(sorted(range(1, 101)), 95) == 95``.  Raises on an empty
    sample set (callers guard on count).
    """
    if not sorted_values:
        raise ValueError("percentile of an empty sample set")
    if not 0 < q <= 100:
        raise ValueError(f"percentile q must be in (0, 100], got {q}")
    rank = math.ceil(q / 100.0 * len(sorted_values))
    return sorted_values[min(rank, len(sorted_values)) - 1]


@dataclass(frozen=True)
class HistogramSummary:
    """Point-in-time summary of one histogram (or raw sample list)."""

    count: int
    mean: float
    p50: float
    p95: float
    p99: float
    max: float

    @property
    def median(self) -> float:
        return self.p50

    def as_dict(self) -> dict[str, float]:
        return {
            "count": self.count,
            "mean": self.mean,
            "p50": self.p50,
            "p95": self.p95,
            "p99": self.p99,
            "max": self.max,
        }


_EMPTY_SUMMARY = HistogramSummary(0, 0.0, 0.0, 0.0, 0.0, 0.0)


def summarize(samples: list[float]) -> HistogramSummary:
    """Summary statistics over a raw sample list (benchmark helper)."""
    if not samples:
        return _EMPTY_SUMMARY
    ordered = sorted(samples)
    return HistogramSummary(
        count=len(ordered),
        mean=sum(ordered) / len(ordered),
        p50=percentile(ordered, 50),
        p95=percentile(ordered, 95),
        p99=percentile(ordered, 99),
        max=ordered[-1],
    )


class _Metric:
    """Base: one labeled child of a family."""

    kind = "untyped"

    def __init__(self, registry: "MetricsRegistry"):
        self._registry = registry
        self._lock = threading.Lock()

    def value(self):  # pragma: no cover - overridden
        raise NotImplementedError

    def reset(self) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class Counter(_Metric):
    """Monotonically increasing count (resettable by the operator)."""

    kind = "counter"

    def __init__(self, registry: "MetricsRegistry"):
        super().__init__(registry)
        self._value = 0

    def inc(self, amount: int = 1) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def value(self) -> int:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0


class Gauge(_Metric):
    """A value that can go up and down (queue depths, open sessions)."""

    kind = "gauge"

    def __init__(self, registry: "MetricsRegistry"):
        super().__init__(registry)
        self._value = 0.0

    def set(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value = value

    def inc(self, amount: float = 1.0) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.inc(-amount)

    def value(self) -> float:
        return self._value

    def reset(self) -> None:
        with self._lock:
            self._value = 0.0


class Histogram(_Metric):
    """Log-bucketed latency/size distribution.

    Observations land in the first bucket whose upper bound is >= the
    value (Prometheus ``le`` semantics); values above the last bound go
    to the implicit +Inf overflow bucket.  ``count``/``sum``/``max`` are
    exact; quantiles are bucket-interpolated estimates (see
    :func:`quantile_from_buckets`), so memory stays O(buckets) at any
    observation rate.
    """

    kind = "histogram"

    #: Exemplars retained per bucket (newest last); tiny, so tracing a
    #: command never turns the histogram into a trace store.
    EXEMPLARS_PER_BUCKET = 3

    def __init__(self, registry: "MetricsRegistry",
                 buckets: tuple[float, ...] | None = None):
        super().__init__(registry)
        bounds = tuple(
            float(bound)
            for bound in (DEFAULT_BUCKETS if buckets is None else buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket boundary")
        if any(upper <= lower for lower, upper in zip(bounds, bounds[1:])):
            raise ValueError(
                "histogram bucket boundaries must be strictly increasing")
        self.buckets = bounds
        self._counts = [0] * (len(bounds) + 1)  # trailing +Inf overflow
        self._count = 0
        self._sum = 0.0
        self._max = 0.0
        #: bucket index -> deque of (trace_id, value); lazily created so
        #: histograms that never see a traced observation pay nothing
        self._exemplars: dict[int, deque] | None = None

    def observe(self, value: float) -> None:
        if not self._registry.enabled:
            return
        with self._lock:
            self._counts[bisect.bisect_left(self.buckets, value)] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value

    def observe_with_trace(self, value: float, trace_id: str | None) -> None:
        """Observe ``value`` and pin ``trace_id`` as an exemplar on the
        bucket it lands in — the correlation hook letting an operator
        jump from a latency bucket to ``show agent trace <id>``."""
        if not self._registry.enabled:
            return
        with self._lock:
            index = bisect.bisect_left(self.buckets, value)
            self._counts[index] += 1
            self._count += 1
            self._sum += value
            if value > self._max:
                self._max = value
            if trace_id is not None:
                if self._exemplars is None:
                    self._exemplars = {}
                bucket = self._exemplars.get(index)
                if bucket is None:
                    bucket = deque(maxlen=self.EXEMPLARS_PER_BUCKET)
                    self._exemplars[index] = bucket
                bucket.append((trace_id, value))

    def exemplars(self) -> dict[int, list[tuple[str, float]]]:
        """Retained (trace id, value) exemplars keyed by bucket index
        (the +Inf overflow bucket is ``len(self.buckets)``), oldest
        first within each bucket."""
        with self._lock:
            if not self._exemplars:
                return {}
            return {index: list(items)
                    for index, items in self._exemplars.items()}

    @property
    def count(self) -> int:
        return self._count

    @property
    def sum(self) -> float:
        return self._sum

    def quantile(self, q: float) -> float:
        """Bucket-interpolated percentile estimate (0.0 when empty)."""
        with self._lock:
            return quantile_from_buckets(
                self.buckets, self._counts, q, self._max)

    def cumulative_buckets(self) -> list[tuple[float, int]]:
        """Prometheus-style ``(upper bound, cumulative count)`` pairs,
        ending with the ``(+Inf, total)`` overflow bucket."""
        with self._lock:
            counts = list(self._counts)
        out: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.buckets, counts):
            cumulative += bucket_count
            out.append((bound, cumulative))
        out.append((math.inf, cumulative + counts[-1]))
        return out

    def summary(self) -> HistogramSummary:
        with self._lock:
            if not self._count:
                return _EMPTY_SUMMARY
            return HistogramSummary(
                count=self._count,
                mean=self._sum / self._count,
                p50=quantile_from_buckets(
                    self.buckets, self._counts, 50, self._max),
                p95=quantile_from_buckets(
                    self.buckets, self._counts, 95, self._max),
                p99=quantile_from_buckets(
                    self.buckets, self._counts, 99, self._max),
                max=self._max,
            )

    def value(self) -> HistogramSummary:
        return self.summary()

    def reset(self) -> None:
        with self._lock:
            self._counts = [0] * (len(self.buckets) + 1)
            self._count = 0
            self._sum = 0.0
            self._max = 0.0
            self._exemplars = None


class MetricFamily:
    """One named metric with a fixed label schema and per-label children.

    An unlabeled family acts as its own single child: ``inc``/``set``/
    ``observe`` proxy to ``labels()`` with no values.
    """

    def __init__(self, registry: "MetricsRegistry", name: str,
                 metric_cls: type, help: str, labelnames: tuple[str, ...],
                 **metric_kwargs):
        self.registry = registry
        self.name = name
        self.metric_cls = metric_cls
        self.help = help
        self.labelnames = tuple(labelnames)
        self._metric_kwargs = metric_kwargs
        self._children: dict[tuple[str, ...], _Metric] = {}
        self._lock = threading.Lock()

    @property
    def kind(self) -> str:
        return self.metric_cls.kind

    def labels(self, *values) -> _Metric:
        """The child metric for one label-value tuple (created on demand)."""
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"metric '{self.name}' takes {len(self.labelnames)} label "
                f"values ({', '.join(self.labelnames)}), got {len(values)}"
            )
        key = tuple(str(value) for value in values)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.get(key)
                if child is None:
                    child = self.metric_cls(self.registry, **self._metric_kwargs)
                    self._children[key] = child
        return child

    # -- unlabeled convenience proxies ---------------------------------

    def inc(self, amount=1) -> None:
        self.labels().inc(amount)

    def dec(self, amount=1) -> None:
        self.labels().dec(amount)

    def set(self, value) -> None:
        self.labels().set(value)

    def observe(self, value) -> None:
        self.labels().observe(value)

    def observe_with_trace(self, value, trace_id) -> None:
        self.labels().observe_with_trace(value, trace_id)

    def value(self):
        return self.labels().value()

    def summary(self):
        return self.labels().summary()

    def quantile(self, q):
        return self.labels().quantile(q)

    # -- iteration ------------------------------------------------------

    def children(self) -> list[tuple[dict[str, str], _Metric]]:
        """(labels dict, metric) pairs, sorted by label values."""
        with self._lock:
            items = sorted(self._children.items())
        return [
            (dict(zip(self.labelnames, key)), metric)
            for key, metric in items
        ]

    def reset(self) -> None:
        with self._lock:
            children = list(self._children.values())
        for child in children:
            child.reset()


class MetricsRegistry:
    """Registry of labeled metric families (one per process or per agent).

    Registration is idempotent: asking for an existing name returns the
    existing family (the kind and label schema must match).  All mutators
    on child metrics are no-ops while ``enabled`` is False.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self._families: dict[str, MetricFamily] = {}
        self._lock = threading.Lock()

    # -- registration ---------------------------------------------------

    def _family(self, name: str, metric_cls: type, help: str,
                labelnames: tuple[str, ...], **kwargs) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is not None:
                if family.metric_cls is not metric_cls:
                    raise ValueError(
                        f"metric '{name}' already registered as "
                        f"{family.kind}, not {metric_cls.kind}")
                if family.labelnames != tuple(labelnames):
                    raise ValueError(
                        f"metric '{name}' already registered with labels "
                        f"{family.labelnames}, not {tuple(labelnames)}")
                return family
            family = MetricFamily(
                self, name, metric_cls, help, tuple(labelnames), **kwargs)
            self._families[name] = family
            return family

    def counter(self, name: str, help: str = "",
                labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, Counter, help, labelnames)

    def gauge(self, name: str, help: str = "",
              labelnames: tuple[str, ...] = ()) -> MetricFamily:
        return self._family(name, Gauge, help, labelnames)

    def histogram(self, name: str, help: str = "",
                  labelnames: tuple[str, ...] = (),
                  buckets: tuple[float, ...] | None = None) -> MetricFamily:
        return self._family(
            name, Histogram, help, labelnames, buckets=buckets)

    # -- introspection / export ----------------------------------------

    def families(self) -> list[MetricFamily]:
        with self._lock:
            return sorted(self._families.values(), key=lambda f: f.name)

    def get(self, name: str) -> MetricFamily | None:
        with self._lock:
            return self._families.get(name)

    def as_dict(self) -> dict[str, dict]:
        """Nested-dict export: ``{name: {type, help, values: [...]}}``."""
        out: dict[str, dict] = {}
        for family in self.families():
            values = []
            for labels, metric in family.children():
                value = metric.value()
                if isinstance(value, HistogramSummary):
                    value = value.as_dict()
                    if isinstance(metric, Histogram):
                        value["buckets"] = [
                            [_le_text(bound), cumulative]
                            for bound, cumulative
                            in metric.cumulative_buckets()
                        ]
                values.append({"labels": labels, "value": value})
            out[family.name] = {
                "type": family.kind,
                "help": family.help,
                "values": values,
            }
        return out

    def render_text(self) -> str:
        """Prometheus-style text exposition of every family."""
        lines: list[str] = []
        for family in self.families():
            if family.help:
                lines.append(
                    f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for labels, metric in family.children():
                suffix = _render_labels(labels)
                value = metric.value()
                if isinstance(value, HistogramSummary):
                    if isinstance(metric, Histogram):
                        exemplars = metric.exemplars()
                        for index, (bound, cumulative) in enumerate(
                                metric.cumulative_buckets()):
                            bucket_labels = dict(labels)
                            bucket_labels["le"] = _le_text(bound)
                            line = (f"{family.name}_bucket"
                                    f"{_render_labels(bucket_labels)} "
                                    f"{cumulative}")
                            pinned = exemplars.get(index)
                            if pinned:
                                # OpenMetrics exemplar syntax: newest
                                # retained trace id for this bucket.
                                trace_id, observed = pinned[-1]
                                line += (' # {trace_id="'
                                         f'{_escape_label_value(trace_id)}'
                                         f'"}} {_fmt(observed)}')
                            lines.append(line)
                        lines.append(
                            f"{family.name}_sum{suffix} {_fmt(metric.sum)}")
                    for stat, stat_value in value.as_dict().items():
                        lines.append(
                            f"{family.name}_{stat}{suffix} {_fmt(stat_value)}")
                else:
                    lines.append(f"{family.name}{suffix} {_fmt(value)}")
        return "\n".join(lines)

    def reset(self) -> None:
        """Zero every metric (families and label schemas survive)."""
        for family in self.families():
            family.reset()


def _le_text(bound: float) -> str:
    """The ``le`` label text for one bucket bound (``+Inf`` for the
    overflow bucket)."""
    return "+Inf" if bound == math.inf else _fmt(bound)


def _escape_label_value(value: str) -> str:
    """Escape a label value per the Prometheus exposition format:
    backslash, double quote, and line feed."""
    return (value.replace("\\", r"\\")
                 .replace('"', r"\"")
                 .replace("\n", r"\n"))


def _escape_help(text: str) -> str:
    """Escape HELP text per the exposition format (backslash, line feed)."""
    return text.replace("\\", r"\\").replace("\n", r"\n")


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    inner = ",".join(
        f'{key}="{_escape_label_value(value)}"'
        for key, value in labels.items()
    )
    return "{" + inner + "}"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.9g}"
    return str(value)
