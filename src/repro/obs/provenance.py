"""Causality-aware event journal: the lineage of every rule firing.

The metrics registry answers "how many" and the span trace answers "how
long", but neither answers the operator's diagnostic question: *why did
this rule fire, and which occurrences did it consume?*  This module adds
the missing provenance layer.  Every hop of the paper's Figure 4 flow —
notification receipt, primitive-event raise, operator-node propagation,
composite detection, condition evaluation, rule firing, action execution
— appends one :class:`ProvenanceRecord` with links to the records that
caused it, so the full lineage of any firing is reconstructible per
parameter context (RECENT / CHRONICLE / CONTINUOUS / CUMULATIVE).

Design constraints (shared with the rest of ``repro.obs``):

- **Cheap when disabled**: every hook in the instrumented pipeline is one
  ``journal is not None and journal.enabled`` branch; nothing is
  allocated while off (the default).
- **Bounded**: the record buffer drops its oldest tenth when full, like
  :class:`~repro.obs.tracing.PipelineTrace`.  Parent ids always point
  *backwards* (a parent id is smaller than its child's), so links never
  dangle: a parent id either resolves within the retained window or is
  older than every retained record.
- **Thread-safe**: notification-listener threads, detached action
  workers, and client threads append concurrently under one lock; the
  ambient parent chain (notification → raise) is tracked per thread.

Besides the journal itself, per-node aggregates (`fires`, `consumed`,
a bounded latency window) are kept per ``(event node, context)`` — these
are exact counters that survive record eviction and feed the
``explain trigger`` admin command's per-node statistics.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass

from .metrics import HistogramSummary, summarize

__all__ = [
    "KIND_NOTIFICATION",
    "KIND_RAISE",
    "KIND_TIMER",
    "KIND_DETECTION",
    "KIND_CONDITION",
    "KIND_FIRING",
    "KIND_ACTION",
    "NodeStat",
    "ProvenanceJournal",
    "ProvenanceRecord",
]

#: Record kinds, in causal order along the Figure 4 pipeline.
KIND_NOTIFICATION = "notification"   # payload received by the notifier
KIND_RAISE = "raise"                 # primitive event raised in the LED
KIND_TIMER = "timer"                 # synthetic timer occurrence (P/P*/PLUS)
KIND_DETECTION = "detection"         # composite occurrence emitted by a node
KIND_CONDITION = "condition"         # rule condition evaluated
KIND_FIRING = "firing"               # rule dispatched/executed by the LED
KIND_ACTION = "action"               # agent action procedure executed

#: Context tag used for context-independent records (primitive raises).
NO_CONTEXT = "-"

#: Longest detail string retained per record (keeps the journal bounded
#: in bytes, not just record count).
_DETAIL_LIMIT = 120


@dataclass
class ProvenanceRecord:
    """One journal entry: a named pipeline hop and its causal parents.

    ``parents`` holds the ids of the records that caused this one — a
    detection's parents are the occurrences it composed, a firing's
    parent is the detection (or raise) that triggered the rule.  Ids are
    assigned in append order, so every parent id is smaller than its
    child's id.
    """

    seq: int
    kind: str
    name: str
    context: str = NO_CONTEXT
    detail: str = ""
    parents: tuple[int, ...] = ()
    at: float = 0.0
    duration: float | None = None
    #: trace id of the client command this hop belongs to (stamped from
    #: the bound :class:`~repro.obs.tracing.PipelineTrace`, None when
    #: no trace context is active)
    trace_id: str | None = None


class NodeStat:
    """Aggregate statistics for one (event node, context) pair.

    ``fires`` counts detections (or raises, for primitives); ``consumed``
    counts the constituent occurrences incorporated into detections in
    *consuming* contexts (everything but RECENT, whose initiators are
    reused, not consumed).  ``latencies`` is a bounded window of per-hop
    propagation times feeding the p95 column of ``explain trigger``.
    """

    __slots__ = ("fires", "consumed", "latencies")

    def __init__(self, latency_window: int):
        self.fires = 0
        self.consumed = 0
        self.latencies: deque[float] = deque(maxlen=latency_window)

    def summary(self) -> HistogramSummary:
        """Latency summary over the retained window."""
        return summarize(list(self.latencies))


class ProvenanceJournal:
    """Bounded, thread-safe journal of causally linked pipeline records.

    Args:
        enabled: start collecting immediately (default False — the agent
            enables it at runtime via ``set agent provenance on``).
        capacity: maximum retained records; the oldest tenth is dropped
            when full (always at least one, so tiny capacities stay
            bounded).
        latency_window: per-(node, context) latency samples retained for
            the p95 statistics.
        clock: timestamp source for record ``at`` fields and propagation
            latencies (default ``time.perf_counter``; injectable for
            deterministic tests).
    """

    def __init__(self, enabled: bool = False, capacity: int = 10_000,
                 latency_window: int = 512, clock=time.perf_counter):
        if capacity < 1:
            raise ValueError("journal capacity must be >= 1")
        self.enabled = enabled
        self.capacity = capacity
        self.records: list[ProvenanceRecord] = []
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._clock = clock
        self._local = threading.local()
        self._latency_window = latency_window
        #: occurrence identity -> (pinned occurrence, record id).  The
        #: occurrence object is pinned so its ``id()`` cannot be reused
        #: while the mapping entry lives; entries are evicted FIFO.
        self._occ_ids: dict[int, tuple[object, int]] = {}
        #: composed-occurrence identity -> direct-part record ids, staged
        #: by the operator's ``_compose`` and consumed by the detection
        #: record (gives true operator-level lineage edges instead of the
        #: flattened primitive constituents).
        self._pending_parts: dict[int, tuple[object, tuple[int, ...]]] = {}
        self._stats: dict[tuple[str, str], NodeStat] = {}
        #: PipelineTrace supplying the active trace id per record (the
        #: agent binds its own trace; None = records carry no trace id)
        self._trace = None

    def bind_trace(self, trace) -> None:
        """Bind the :class:`~repro.obs.tracing.PipelineTrace` whose
        active context stamps every appended record's ``trace_id``."""
        self._trace = trace

    def now(self) -> float:
        """The journal's clock (used by hooks timing propagation hops)."""
        return self._clock()

    # ------------------------------------------------------------------
    # ambient per-thread parent chain (notification -> raise nesting)

    def _stack(self) -> list[int]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def push(self, record_id: int) -> None:
        """Make ``record_id`` the ambient parent for this thread."""
        self._stack().append(record_id)

    def pop(self) -> None:
        """Drop this thread's innermost ambient parent."""
        stack = self._stack()
        if stack:
            stack.pop()

    def ambient(self) -> int | None:
        """This thread's innermost ambient parent record id, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def ambient_parents(self) -> tuple[int, ...]:
        """The ambient parent as a ``parents`` tuple (empty when none)."""
        parent = self.ambient()
        return (parent,) if parent is not None else ()

    @contextmanager
    def inherit(self, parents: tuple[int, ...]):
        """Adopt an explicit parent chain on this thread for the ``with``
        body — the cross-thread hand-off hook: a dispatcher captures
        :meth:`ambient_parents` before spawning, and the spawned thread
        inherits them here instead of relying on its own (empty) ambient
        stack."""
        pushed = 0
        for parent in parents:
            self.push(parent)
            pushed += 1
        try:
            yield
        finally:
            for _ in range(pushed):
                self.pop()

    def reset_thread(self) -> None:
        """Drop this thread's ambient parent stack (worker-pool hygiene
        between tasks)."""
        self._local.stack = []

    # ------------------------------------------------------------------
    # recording

    def append(self, kind: str, name: str, context: str = NO_CONTEXT,
               detail: str = "", parents: tuple[int, ...] = (),
               duration: float | None = None) -> ProvenanceRecord:
        """Append one record (callers have already checked ``enabled``)."""
        trace = self._trace
        record = ProvenanceRecord(
            seq=next(self._seq), kind=kind, name=name,
            context=context or NO_CONTEXT,
            detail=detail[:_DETAIL_LIMIT], parents=parents,
            at=self._clock(), duration=duration,
            trace_id=(trace.active_trace_id()
                      if trace is not None else None),
        )
        with self._lock:
            if len(self.records) >= self.capacity:
                del self.records[: max(1, self.capacity // 10)]
            self.records.append(record)
        return record

    def register(self, occurrence, record_id: int) -> None:
        """Bind an occurrence to the record that created it, so later
        hops (detections, conditions, firings, actions) can link back."""
        with self._lock:
            self._occ_ids[id(occurrence)] = (occurrence, record_id)
            while len(self._occ_ids) > self.capacity:
                self._occ_ids.pop(next(iter(self._occ_ids)))

    def id_for(self, occurrence) -> int | None:
        """The record id an occurrence was registered under, if retained."""
        entry = self._occ_ids.get(id(occurrence))
        if entry is not None and entry[0] is occurrence:
            return entry[1]
        return None

    def ids_for(self, occurrences) -> tuple[int, ...]:
        """Resolved record ids for a sequence of occurrences (deduplicated,
        order preserved; unregistered occurrences are skipped)."""
        out: list[int] = []
        for occurrence in occurrences:
            rid = self.id_for(occurrence)
            if rid is not None and rid not in out:
                out.append(rid)
        return tuple(out)

    def note_parts(self, composed, parts) -> None:
        """Stage the direct parts of a freshly composed occurrence; the
        next :meth:`record_detection` for it uses them as parents."""
        parents = self.ids_for(parts)
        with self._lock:
            self._pending_parts[id(composed)] = (composed, parents)
            while len(self._pending_parts) > 256:
                self._pending_parts.pop(next(iter(self._pending_parts)))

    def record_detection(self, name: str, context: str, occurrence,
                         consuming: bool) -> ProvenanceRecord:
        """Record a composite detection, linked to the occurrences that
        composed it, and update the node's aggregate statistics."""
        with self._lock:
            staged = self._pending_parts.pop(id(occurrence), None)
        if staged is not None and staged[0] is occurrence and staged[1]:
            parents = staged[1]
        else:
            parents = self.ids_for(occurrence.flatten())
        if not parents:
            parents = self.ambient_parents()
        record = self.append(
            KIND_DETECTION, name, context=context,
            detail=occurrence.describe(), parents=parents)
        self.register(occurrence, record.seq)
        self.observe_node(
            name, context, fires=1,
            consumed=len(occurrence.flatten()) if consuming else 0)
        return record

    def record_action(self, name: str, context: str, occurrence,
                      error: BaseException | None = None,
                      duration: float | None = None) -> ProvenanceRecord:
        """Record one executed action, linked to its triggering occurrence."""
        detail = "ok" if error is None else f"error: {error}"
        return self.append(
            KIND_ACTION, name, context=context, detail=detail,
            parents=self.ids_for((occurrence,)) or self.ambient_parents(),
            duration=duration)

    # ------------------------------------------------------------------
    # per-node aggregates

    def observe_node(self, name: str, context: str, fires: int = 0,
                     consumed: int = 0, latency: float | None = None) -> None:
        """Fold one observation into the (node, context) aggregate."""
        key = (name, context or NO_CONTEXT)
        with self._lock:
            stat = self._stats.get(key)
            if stat is None:
                stat = NodeStat(self._latency_window)
                self._stats[key] = stat
            stat.fires += fires
            stat.consumed += consumed
            if latency is not None:
                stat.latencies.append(latency)

    def node_summary(self, name: str, context: str) -> dict | None:
        """Aggregate dict for one (node, context), or None if never seen:
        ``{fires, consumed, latency_count, mean_ms, p95_ms}``."""
        with self._lock:
            stat = self._stats.get((name, context or NO_CONTEXT))
            if stat is None:
                return None
            fires, consumed = stat.fires, stat.consumed
            samples = list(stat.latencies)
        latency = summarize(samples)
        return {
            "fires": fires,
            "consumed": consumed,
            "latency_count": latency.count,
            "mean_ms": latency.mean * 1e3,
            "p95_ms": latency.p95 * 1e3,
        }

    def node_stats(self) -> list[tuple[str, str, NodeStat]]:
        """(name, context, stat) triples, sorted — for export and dumps."""
        with self._lock:
            items = sorted(self._stats.items())
        return [(name, context, stat) for (name, context), stat in items]

    # ------------------------------------------------------------------
    # inspection

    def __len__(self) -> int:
        return len(self.records)

    def tail(self, count: int) -> list[ProvenanceRecord]:
        """The most recent ``count`` records, oldest first."""
        with self._lock:
            if count <= 0:
                return []
            return list(self.records[-count:])

    def snapshot(self) -> list[ProvenanceRecord]:
        """A consistent copy of every retained record."""
        with self._lock:
            return list(self.records)

    def last_seq(self) -> int:
        """The newest retained record's sequence number (0 when empty) —
        the flight recorder's high-water mark."""
        with self._lock:
            return self.records[-1].seq if self.records else 0

    def since(self, seq: int,
              limit: int | None = None) -> list[ProvenanceRecord]:
        """Retained records with sequence numbers above ``seq``, oldest
        first (at most ``limit``).  Scans backwards from the tail, so
        the cost is proportional to the slice, not the journal."""
        with self._lock:
            out: list[ProvenanceRecord] = []
            for record in reversed(self.records):
                if record.seq <= seq:
                    break
                out.append(record)
                if limit is not None and len(out) >= limit:
                    break
        out.reverse()
        return out

    def resolve(self, record_id: int) -> ProvenanceRecord | None:
        """The retained record with ``seq == record_id``, if any."""
        with self._lock:
            records = self.records
            if not records:
                return None
            # Ids are append-ordered: binary-search the retained window.
            lo, hi = 0, len(records)
            while lo < hi:
                mid = (lo + hi) // 2
                if records[mid].seq < record_id:
                    lo = mid + 1
                else:
                    hi = mid
            if lo < len(records) and records[lo].seq == record_id:
                return records[lo]
            return None

    def lineage(self, record_id: int, max_depth: int = 32) -> list[ProvenanceRecord]:
        """The ancestor chain of one record (nearest first), following
        first parents through the retained window."""
        out: list[ProvenanceRecord] = []
        current = self.resolve(record_id)
        while current is not None and len(out) < max_depth:
            out.append(current)
            if not current.parents:
                break
            current = self.resolve(current.parents[0])
        return out

    def clear(self) -> None:
        """Drop every record, registration, and node aggregate (the
        ``reset agent provenance`` command; ``enabled`` is untouched)."""
        with self._lock:
            self.records.clear()
            self._occ_ids.clear()
            self._pending_parts.clear()
            self._stats.clear()
