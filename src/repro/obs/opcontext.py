"""Ambient per-operation resource accounting (``OpContext``).

``show agent stats`` answers *how much* work the agent did; this module
answers *who caused it*.  The gateway begins an :class:`OpContext` frame
for every client command, and the action handler pushes a nested rule
frame around every rule action; instrumentation points deep in the stack
(the SQL executor's row scans, the plan cache, the LED's raises and
detections) charge the innermost frames without knowing anything about
sessions or rules.  When a frame finishes, its counters fold into
per-session and per-rule totals, surfaced by ``show agent top
[rules|sessions] [N]``.

Design constraints, mirroring the rest of ``repro.obs``:

- **Ambient**: frames live on a per-thread stack, so the executor needs
  no extra parameters — a rule action's SQL is charged to both the rule
  frame and the enclosing client command's frame (the session pays for
  the rules it triggers, which is the paper's transparency cost made
  visible).  Detached actions run on their own threads with only a rule
  frame, so their cost attributes to the rule alone.
- **Always-on but cheap**: plain int adds on at most two frames per
  note; no locks on the hot path (totals fold under a lock only at
  frame exit).  ``enabled = False`` reduces every hook to one branch.
- **Bounded**: at most ``max_sessions`` / ``max_rules`` distinct rows;
  overflow aggregates under the ``"(other)"`` key so a session storm
  cannot grow memory without bound.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

__all__ = ["OpAccounting", "OpContext", "RuleTotals", "SessionTotals"]

#: Aggregation keys for rows beyond the per-scope capacity.
OVERFLOW_KEY = "(other)"

#: The counters carried by every frame and folded into totals.
_COUNTER_FIELDS = (
    "commands",
    "sql_statements",
    "rows_scanned",
    "index_scans",
    "full_scans",
    "plan_cache_hits",
    "plan_cache_misses",
    "events_raised",
    "detections",
    "actions",
    "action_errors",
)


class OpContext:
    """One accounting frame: a client command or a rule action."""

    __slots__ = _COUNTER_FIELDS + (
        "session_id", "user", "database", "rule", "seconds",
        "action_seconds")

    def __init__(self, session_id: int | None = None, user: str = "",
                 database: str = "", rule: str | None = None):
        self.session_id = session_id
        self.user = user
        self.database = database
        self.rule = rule
        self.seconds = 0.0
        self.action_seconds = 0.0
        # Unrolled (one frame is allocated per client command; the loop
        # over _COUNTER_FIELDS showed up in the gateway bench).
        self.commands = 0
        self.sql_statements = 0
        self.rows_scanned = 0
        self.index_scans = 0
        self.full_scans = 0
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        self.events_raised = 0
        self.detections = 0
        self.actions = 0
        self.action_errors = 0

    def as_dict(self) -> dict[str, object]:
        """Counter snapshot (flight-recorder and telemetry payloads)."""
        out: dict[str, object] = {
            field: getattr(self, field) for field in _COUNTER_FIELDS}
        out["action_seconds"] = self.action_seconds
        return out


class _Totals:
    """Folded counters shared by the session and rule aggregates."""

    __slots__ = _COUNTER_FIELDS + ("seconds", "action_seconds",
                                   "max_seconds")

    def __init__(self):
        self.seconds = 0.0
        self.action_seconds = 0.0
        self.max_seconds = 0.0
        for field in _COUNTER_FIELDS:
            setattr(self, field, 0)

    def fold(self, frame: OpContext, seconds: float) -> None:
        # Unrolled: runs under the fold lock once per command.
        self.commands += frame.commands
        self.sql_statements += frame.sql_statements
        self.rows_scanned += frame.rows_scanned
        self.index_scans += frame.index_scans
        self.full_scans += frame.full_scans
        self.plan_cache_hits += frame.plan_cache_hits
        self.plan_cache_misses += frame.plan_cache_misses
        self.events_raised += frame.events_raised
        self.detections += frame.detections
        self.actions += frame.actions
        self.action_errors += frame.action_errors
        self.seconds += seconds
        self.action_seconds += frame.action_seconds
        if seconds > self.max_seconds:
            self.max_seconds = seconds

    def as_dict(self) -> dict[str, object]:
        out: dict[str, object] = {
            field: getattr(self, field) for field in _COUNTER_FIELDS}
        out["seconds"] = self.seconds
        out["action_seconds"] = self.action_seconds
        out["max_seconds"] = self.max_seconds
        return out


class SessionTotals(_Totals):
    """Aggregate resource usage of one client session."""

    __slots__ = ("session_id", "user", "database")

    def __init__(self, session_id, user: str, database: str):
        super().__init__()
        self.session_id = session_id
        self.user = user
        self.database = database

    def as_dict(self) -> dict[str, object]:
        out = super().as_dict()
        out["session_id"] = self.session_id
        out["user"] = self.user
        out["database"] = self.database
        return out


class RuleTotals(_Totals):
    """Aggregate resource usage of one ECA rule's actions."""

    __slots__ = ("rule",)

    def __init__(self, rule: str):
        super().__init__()
        self.rule = rule

    def as_dict(self) -> dict[str, object]:
        out = super().as_dict()
        out["rule"] = self.rule
        return out


class _NullScope:
    """Reusable no-op rule scope (accounting disabled)."""

    __slots__ = ()

    def mark_error(self) -> None:
        pass

    def __enter__(self):
        return None

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class _RuleScope:
    """Context manager pushing/folding one rule frame."""

    __slots__ = ("_accounting", "_frame", "_start", "_error")

    def __init__(self, accounting: "OpAccounting", rule: str):
        self._accounting = accounting
        self._frame = OpContext(rule=rule)
        self._start = 0.0
        self._error = False

    def mark_error(self) -> None:
        """Record a failure the caller swallows instead of raising."""
        self._error = True

    def __enter__(self) -> OpContext:
        self._start = time.perf_counter()
        self._accounting._push(self._frame)
        return self._frame

    def __exit__(self, exc_type, _exc, _tb) -> bool:
        seconds = time.perf_counter() - self._start
        self._accounting._pop(self._frame)
        self._accounting._fold_rule(
            self._frame, seconds, error=self._error or exc_type is not None)
        return False


class OpAccounting:
    """Per-session and per-rule resource accounting over ambient frames.

    The agent owns one instance; the server and LED hold references and
    charge the innermost frames through the ``note_*`` hooks.
    """

    def __init__(self, enabled: bool = True, max_sessions: int = 1024,
                 max_rules: int = 4096):
        self.enabled = enabled
        self.max_sessions = max_sessions
        self.max_rules = max_rules
        self._local = threading.local()
        self._lock = threading.Lock()
        self._sessions: dict[object, SessionTotals] = {}
        self._rules: dict[str, RuleTotals] = {}
        #: always-on global tallies the health evaluator reads
        self.ops_total = 0
        self.actions_total = 0
        self.action_errors_total = 0

    # ------------------------------------------------------------------
    # frame stack

    def _frames(self) -> list[OpContext]:
        frames = getattr(self._local, "frames", None)
        if frames is None:
            frames = []
            self._local.frames = frames
        return frames

    def _push(self, frame: OpContext) -> None:
        self._frames().append(frame)

    def _pop(self, frame: OpContext) -> None:
        frames = self._frames()
        if frames and frames[-1] is frame:
            frames.pop()
        elif frame in frames:  # pragma: no cover - unbalanced exit guard
            frames.remove(frame)

    def active(self) -> bool:
        """Whether any frame is open on this thread (hook fast-path)."""
        frames = getattr(self._local, "frames", None)
        return bool(frames)

    def current(self) -> OpContext | None:
        """The innermost open frame on this thread, if any."""
        frames = getattr(self._local, "frames", None)
        return frames[-1] if frames else None

    def command_frame(self) -> OpContext | None:
        """The outermost client-command frame open on this thread (the
        frame with a session identity), if any — what a dispatcher
        captures before handing work to another thread."""
        frames = getattr(self._local, "frames", None)
        if not frames:
            return None
        for frame in frames:
            if frame.session_id is not None:
                return frame
        return None

    def reset_thread(self) -> None:
        """Drop this thread's frame stack (worker-pool hygiene between
        tasks) — a leaked frame must never charge later commands' work
        to a finished command's session."""
        self._local.frames = []

    @contextmanager
    def inherit_scope(self, origin: OpContext | None):
        """Charge the ``with`` body to the session identified by a frame
        captured on another thread.  A *new* frame with the origin's
        identity (but ``commands = 0``) opens here and folds into the
        session's totals on exit — the origin frame itself may already
        have folded by the time this thread runs, so it is never shared
        across threads."""
        if not self.enabled or origin is None or origin.session_id is None:
            yield None
            return
        frame = OpContext(
            session_id=origin.session_id,
            user=origin.user,
            database=origin.database,
        )
        start = time.perf_counter()
        self._push(frame)
        try:
            yield frame
        finally:
            self.finish(frame, time.perf_counter() - start)

    def in_rule(self) -> bool:
        """Whether the innermost frames include a rule scope — i.e. the
        current SQL statement is LED-generated per-occurrence SQL, not a
        client batch (the plan cache's origin classification)."""
        frames = getattr(self._local, "frames", None)
        if not frames:
            return False
        return any(frame.rule is not None for frame in frames)

    def origin(self) -> str:
        """Statement-origin classification with one frame-stack read:
        ``"rule"`` inside a rule action, ``"client"`` inside a client
        command, ``"system"`` otherwise (agent-internal SQL)."""
        frames = getattr(self._local, "frames", None)
        if not frames:
            return "system"
        for frame in frames:
            if frame.rule is not None:
                return "rule"
        return "client"

    # ------------------------------------------------------------------
    # gateway surface (op frames)

    def begin(self, session) -> OpContext | None:
        """Open the accounting frame for one client command."""
        if not self.enabled:
            return None
        frame = OpContext(
            session_id=session.session_id,
            user=session.user,
            database=session.database,
        )
        frame.commands = 1
        self._push(frame)
        return frame

    def finish(self, frame: OpContext | None, seconds: float) -> None:
        """Close a command frame and fold it into its session's totals."""
        if frame is None:
            return
        self._pop(frame)
        frame.seconds = seconds
        with self._lock:
            self.ops_total += 1
            totals = self._sessions.get(frame.session_id)
            if totals is None:
                if len(self._sessions) >= self.max_sessions:
                    totals = self._sessions.get(OVERFLOW_KEY)
                    if totals is None:
                        totals = SessionTotals(OVERFLOW_KEY, OVERFLOW_KEY, "")
                        self._sessions[OVERFLOW_KEY] = totals
                else:
                    totals = SessionTotals(
                        frame.session_id, frame.user, frame.database)
                    self._sessions[frame.session_id] = totals
            totals.fold(frame, seconds)

    # ------------------------------------------------------------------
    # action-handler surface (rule frames)

    def rule_scope(self, rule: str):
        """Context manager charging the body to ``rule`` (and to any
        enclosing command frame); a shared no-op while disabled."""
        if not self.enabled:
            return _NULL_SCOPE
        return _RuleScope(self, rule)

    def _fold_rule(self, frame: OpContext, seconds: float,
                   error: bool) -> None:
        with self._lock:
            self.actions_total += 1
            if error:
                self.action_errors_total += 1
            totals = self._rules.get(frame.rule)
            if totals is None:
                if len(self._rules) >= self.max_rules:
                    totals = self._rules.get(OVERFLOW_KEY)
                    if totals is None:
                        totals = RuleTotals(OVERFLOW_KEY)
                        self._rules[OVERFLOW_KEY] = totals
                else:
                    totals = RuleTotals(frame.rule)
                    self._rules[frame.rule] = totals
            totals.actions += 1
            if error:
                totals.action_errors += 1
            totals.fold(frame, seconds)
        # The enclosing command frame (if any) is charged the action too.
        self.note_action(seconds, error)

    # ------------------------------------------------------------------
    # instrumentation hooks (called with at least one frame open)

    def note_statement(self) -> None:
        for frame in self._frames():
            frame.sql_statements += 1

    def note_scan(self, rows: int, index_sources: int,
                  full_sources: int) -> None:
        for frame in self._frames():
            frame.rows_scanned += rows
            frame.index_scans += index_sources
            frame.full_scans += full_sources

    def note_rows(self, rows: int) -> None:
        for frame in self._frames():
            frame.rows_scanned += rows

    def note_plan_cache(self, hit: bool) -> None:
        if hit:
            for frame in self._frames():
                frame.plan_cache_hits += 1
        else:
            for frame in self._frames():
                frame.plan_cache_misses += 1

    def note_event(self) -> None:
        for frame in self._frames():
            frame.events_raised += 1

    def note_detection(self) -> None:
        for frame in self._frames():
            frame.detections += 1

    def note_action(self, seconds: float, error: bool) -> None:
        """Charge one finished action to every enclosing frame (the
        triggering command's session, and any outer rule in a cascade)."""
        for frame in self._frames():
            frame.actions += 1
            if error:
                frame.action_errors += 1
            frame.action_seconds += seconds

    # ------------------------------------------------------------------
    # reporting

    def top_sessions(self, count: int) -> list[SessionTotals]:
        """The ``count`` most expensive sessions by total seconds
        (deterministic: ties break on session id)."""
        with self._lock:
            totals = list(self._sessions.values())
        totals.sort(key=lambda t: (-t.seconds, str(t.session_id)))
        return totals[:count]

    def top_rules(self, count: int) -> list[RuleTotals]:
        """The ``count`` most expensive rules by total action seconds
        (deterministic: ties break on rule name)."""
        with self._lock:
            totals = list(self._rules.values())
        totals.sort(key=lambda t: (-t.seconds, t.rule))
        return totals[:count]

    def session_count(self) -> int:
        with self._lock:
            return len(self._sessions)

    def rule_count(self) -> int:
        with self._lock:
            return len(self._rules)

    def reset(self) -> None:
        """Drop every aggregate (open frames keep accumulating)."""
        with self._lock:
            self._sessions.clear()
            self._rules.clear()
            self.ops_total = 0
            self.actions_total = 0
            self.action_errors_total = 0
