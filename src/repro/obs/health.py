"""The agent watchdog: declarative health rules over live telemetry.

The metrics registry, plan cache, accounting plane, notification channel
and flight recorder each answer one narrow question; this module folds
them into the single question an operator (or a CI gate) actually asks —
*is the agent healthy right now?*  A :class:`HealthEvaluator` runs a
fixed list of :class:`HealthRule` checks against a flat sample dict and
produces a deterministic :class:`HealthReport` with an overall
``ok`` / ``degraded`` / ``critical`` status.

Rules are declarative — a key, a direction (floor or ceiling), a
threshold, and a severity — plus an optional minimum-activity guard so a
fresh agent with three plan-cache lookups is not declared degraded over
its hit rate.  The defaults watch the known failure axes of this stack:
plan-cache effectiveness (ROADMAP's ~0.45 composite-loop hit rate),
retry exhaustion, rule-action error rates, notification queue depth, and
LED dispatch-lock contention (the baseline data for the concurrent
multi-session gateway work).

``show agent health`` renders the report; ``tools/check_health.py``
turns a critical report into a nonzero CI exit.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = [
    "DEFAULT_HEALTH_RULES",
    "HealthEvaluator",
    "HealthFinding",
    "HealthReport",
    "HealthRule",
    "collect_sample",
]

#: Severity ordering for the overall status fold.
_SEVERITY_RANK = {"ok": 0, "degraded": 1, "critical": 2}

STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_CRITICAL = "critical"


@dataclass(frozen=True)
class HealthRule:
    """One declarative check over the sample dict.

    Args:
        name: stable identifier shown in reports.
        key: sample key holding the checked value.
        direction: ``"floor"`` breaches when value < threshold;
            ``"ceiling"`` breaches when value > threshold.
        threshold: the boundary value (inclusive values are healthy).
        severity: ``"degraded"`` or ``"critical"`` when breached.
        description: one operator-facing sentence.
        min_key / min_value: the rule is skipped (status ``skipped``)
            until ``sample[min_key] >= min_value`` — the
            minimum-activity guard.
    """

    name: str
    key: str
    direction: str
    threshold: float
    severity: str
    description: str
    min_key: str | None = None
    min_value: float = 0.0

    def __post_init__(self):
        if self.direction not in ("floor", "ceiling"):
            raise ValueError(
                f"direction must be 'floor' or 'ceiling', "
                f"got {self.direction!r}")
        if self.severity not in (STATUS_DEGRADED, STATUS_CRITICAL):
            raise ValueError(
                f"severity must be 'degraded' or 'critical', "
                f"got {self.severity!r}")


@dataclass(frozen=True)
class HealthFinding:
    """One rule's outcome within a report."""

    rule: str
    severity: str
    status: str  # "ok" | "breach" | "skipped"
    value: float
    threshold: float
    direction: str
    description: str

    def as_dict(self) -> dict:
        return {
            "rule": self.rule,
            "severity": self.severity,
            "status": self.status,
            "value": self.value,
            "threshold": self.threshold,
            "direction": self.direction,
            "description": self.description,
        }


@dataclass(frozen=True)
class HealthReport:
    """The evaluator's output: overall status plus per-rule findings
    (in rule-list order, so reports are deterministic)."""

    status: str
    findings: tuple[HealthFinding, ...]
    sample: dict

    def breaches(self) -> list[HealthFinding]:
        return [f for f in self.findings if f.status == "breach"]

    def as_dict(self) -> dict:
        return {
            "status": self.status,
            "findings": [finding.as_dict() for finding in self.findings],
            "sample": dict(self.sample),
        }


#: The default watchdog rule set (see module docstring for rationale).
DEFAULT_HEALTH_RULES: tuple[HealthRule, ...] = (
    HealthRule(
        name="plan-cache-hit-rate",
        key="plan_cache_hit_rate", direction="floor", threshold=0.5,
        severity=STATUS_DEGRADED,
        description="plan-cache hit rate below 0.5 under real load",
        min_key="plan_cache_lookups", min_value=100,
    ),
    HealthRule(
        name="retry-exhaustion",
        key="retry_exhausted_total", direction="ceiling", threshold=0.0,
        severity=STATUS_DEGRADED,
        description="operations failed every allowed retry",
    ),
    HealthRule(
        name="action-error-rate",
        key="action_error_rate", direction="ceiling", threshold=0.05,
        severity=STATUS_DEGRADED,
        description="more than 5% of rule actions erroring",
        min_key="actions_total", min_value=10,
    ),
    HealthRule(
        name="action-error-rate-critical",
        key="action_error_rate", direction="ceiling", threshold=0.25,
        severity=STATUS_CRITICAL,
        description="more than 25% of rule actions erroring",
        min_key="actions_total", min_value=10,
    ),
    HealthRule(
        name="notification-backlog",
        key="notification_backlog", direction="ceiling", threshold=1000,
        severity=STATUS_DEGRADED,
        description="notification channel backlog above 1000 events",
    ),
    HealthRule(
        name="notification-backlog-critical",
        key="notification_backlog", direction="ceiling", threshold=10000,
        severity=STATUS_CRITICAL,
        description="notification channel backlog above 10000 events",
    ),
    HealthRule(
        name="led-lock-wait",
        key="led_lock_wait_p95_ms", direction="ceiling", threshold=50.0,
        severity=STATUS_DEGRADED,
        description="p95 wait for the LED dispatch lock above 50ms",
    ),
    HealthRule(
        name="led-lock-hold",
        key="led_lock_hold_p95_ms", direction="ceiling", threshold=100.0,
        severity=STATUS_DEGRADED,
        description="p95 LED dispatch lock hold above 100ms",
    ),
    HealthRule(
        name="queue-wait",
        key="queue_wait_p95_ms", direction="ceiling", threshold=200.0,
        severity=STATUS_DEGRADED,
        description="p95 time commands wait in session queues above "
                    "200ms (worker pool saturated or undersized)",
    ),
)


class HealthEvaluator:
    """Evaluates a rule list against sample dicts."""

    def __init__(self, rules: tuple[HealthRule, ...] | None = None):
        self.rules = DEFAULT_HEALTH_RULES if rules is None else tuple(rules)

    def evaluate(self, sample: dict) -> HealthReport:
        """One deterministic report over a flat sample dict (missing
        keys read as 0, which is the healthy direction for every
        default ceiling rule and triggers the activity guard on floors).
        """
        findings: list[HealthFinding] = []
        status = STATUS_OK
        for rule in self.rules:
            value = float(sample.get(rule.key, 0.0))
            if (rule.min_key is not None
                    and float(sample.get(rule.min_key, 0.0)) < rule.min_value):
                outcome = "skipped"
            elif ((rule.direction == "floor" and value < rule.threshold)
                  or (rule.direction == "ceiling"
                      and value > rule.threshold)):
                outcome = "breach"
                if (_SEVERITY_RANK[rule.severity]
                        > _SEVERITY_RANK[status]):
                    status = rule.severity
            else:
                outcome = "ok"
            findings.append(HealthFinding(
                rule=rule.name,
                severity=rule.severity,
                status=outcome,
                value=value,
                threshold=rule.threshold,
                direction=rule.direction,
                description=rule.description,
            ))
        return HealthReport(
            status=status, findings=tuple(findings), sample=dict(sample))


def _counter_total(metrics, name: str) -> float:
    """Sum of a counter family's children (0 when unregistered)."""
    family = metrics.get(name)
    if family is None:
        return 0
    return sum(metric.value() for _labels, metric in family.children())


def _histogram_p95_ms(metrics, name: str) -> float:
    """An unlabeled histogram family's p95 in ms (0.0 when absent)."""
    family = metrics.get(name)
    if family is None:
        return 0.0
    return family.summary().p95 * 1e3


def collect_sample(agent) -> dict:
    """One flat health sample from a live agent's telemetry surfaces.

    Every key is cheap to read: plain counters, cache stats, channel
    watermarks, and pre-aggregated histogram summaries.  Metrics-backed
    keys (retries, LED lock timings) read 0 while stats are off — their
    rules then see the healthy direction rather than stale data.
    """
    cache_stats = agent.server.plan_cache.stats()
    accounting = agent.accounting
    metrics = agent.metrics
    actions_total = accounting.actions_total
    action_errors = accounting.action_errors_total
    return {
        "plan_cache_hit_rate": cache_stats["hit_rate"],
        "plan_cache_lookups": cache_stats["hits"] + cache_stats["misses"],
        "retries_attempted_total": _counter_total(
            metrics, "retries_attempted"),
        "retry_exhausted_total": _counter_total(metrics, "retry_exhausted"),
        "actions_total": actions_total,
        "action_errors_total": action_errors,
        "action_error_rate": (
            action_errors / actions_total if actions_total else 0.0),
        "notification_backlog": max(
            0, agent.channel.sent_count - agent.channel.processed_count),
        "led_lock_wait_p95_ms": _histogram_p95_ms(
            metrics, "led_lock_wait_seconds"),
        "led_lock_hold_p95_ms": _histogram_p95_ms(
            metrics, "led_lock_hold_seconds"),
        "queue_wait_p95_ms": _histogram_p95_ms(
            metrics, "agent_queue_wait_seconds"),
        "slow_ops_recorded": len(agent.flightrec),
        "sessions_tracked": accounting.session_count(),
        "rules_tracked": accounting.rule_count(),
    }
