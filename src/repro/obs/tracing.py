"""Span-based pipeline tracing: timed, nested, thread-safe.

Generalizes the original flat ``PipelineTrace`` step records into *spans*:
each record carries a start time, an end time (``None`` while open), and a
link to its parent span, so one client command through the agent yields a
tree — gateway receipt → language-filter classification → ECA parse →
codegen → LED detection (per-node operator evaluation) → condition check →
action execution → result routing.

The Figure 3 / Figure 4 step constants are kept as span names, so the
original control-flow semantics (and their tests) survive: ``emit()``
records an instantaneous span, ``span()`` brackets a timed region.

Tracing is off by default and costs one branch per hook when off.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

__all__ = [
    "PipelineTrace",
    "SpanRecord",
    "TraceRecord",
    "FIG3_COMMAND_RECEIVED",
    "FIG3_CLASSIFIED_ECA",
    "FIG3_PASSED_THROUGH",
    "FIG3_GRAPH_CREATED",
    "FIG3_SQL_INSTALLED",
    "FIG3_PERSISTED",
    "FIG4_NOTIFIED",
    "FIG4_DETECTED",
    "FIG4_ACTION_RUN",
    "FIG4_RESULTS_ROUTED",
    "SPAN_CLASSIFY",
    "SPAN_ECA_PARSE",
    "SPAN_ECA_CODEGEN",
    "SPAN_LED_RAISE",
    "SPAN_LED_OP_PREFIX",
    "SPAN_RULE_CONDITION",
    "SPAN_RULE_ACTION",
]

#: Step identifiers, named after the paper's figures (kept verbatim from
#: the original flat trace so existing tooling and tests keep working).
FIG3_COMMAND_RECEIVED = "fig3.1-2:command->filter"
FIG3_CLASSIFIED_ECA = "fig3.3:classified-eca"
FIG3_PASSED_THROUGH = "fig3.4:passed-through"
FIG3_GRAPH_CREATED = "fig3.5:event-graph-created"
FIG3_SQL_INSTALLED = "fig3.5:generated-sql-installed"
FIG3_PERSISTED = "fig3.7:persisted"
FIG4_NOTIFIED = "fig4.2-3:notification-received"
FIG4_DETECTED = "fig4.4:led-detected"
FIG4_ACTION_RUN = "fig4.5:action-executed"
FIG4_RESULTS_ROUTED = "fig4.6:results-routed"

#: Additional span names for the finer-grained pipeline stages.
SPAN_CLASSIFY = "filter:classify"
SPAN_ECA_PARSE = "eca:parse"
SPAN_ECA_CODEGEN = "eca:codegen"
SPAN_LED_RAISE = "led:raise"
SPAN_LED_OP_PREFIX = "led:op:"
SPAN_RULE_CONDITION = "rule:condition"
SPAN_RULE_ACTION = "rule:action"


@dataclass
class SpanRecord:
    """One span: a named, timed region of the pipeline (or an instant)."""

    seq: int
    step: str
    detail: str = ""
    parent: int | None = None
    depth: int = 0
    start: float = 0.0
    end: float | None = None

    @property
    def duration(self) -> float | None:
        """Elapsed seconds, or None while the span is still open."""
        if self.end is None:
            return None
        return self.end - self.start


#: Backwards-compatible alias: flat trace records are point spans.
TraceRecord = SpanRecord


class _NullSpan:
    """Reusable no-op context manager (tracing disabled)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _OpenSpan:
    """Context manager opening a span on entry and closing it on exit."""

    __slots__ = ("_trace", "_step", "_detail", "record")

    def __init__(self, trace: "PipelineTrace", step: str, detail: str):
        self._trace = trace
        self._step = step
        self._detail = detail
        self.record: SpanRecord | None = None

    def __enter__(self) -> SpanRecord:
        self.record = self._trace._open(self._step, self._detail)
        return self.record

    def __exit__(self, *_exc) -> bool:
        if self.record is not None:
            self._trace._close(self.record)
        return False


class PipelineTrace:
    """Bounded in-memory span buffer (thread-safe).

    Nesting is tracked per thread: spans opened on one thread become
    parents of the spans and point records emitted by that thread until
    they close.  When the buffer is full the oldest tenth of the records
    is dropped (always at least one, so small buffers stay bounded).
    """

    def __init__(self, enabled: bool = False, max_records: int = 10_000,
                 clock=time.perf_counter):
        self.enabled = enabled
        self.max_records = max_records
        self.records: list[SpanRecord] = []
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self._clock = clock
        self._local = threading.local()

    # -- per-thread span stack ------------------------------------------

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> SpanRecord | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    # -- recording ------------------------------------------------------

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self.records) >= self.max_records:
                # Always drop at least one record: max_records // 10 is 0
                # for buffers of fewer than ten records, which previously
                # let the buffer grow without bound.
                del self.records[: max(1, self.max_records // 10)]
            self.records.append(record)

    def emit(self, step: str, detail: str = "") -> None:
        """Record one instantaneous step (no-op while disabled)."""
        if not self.enabled:
            return
        now = self._clock()
        parent = self.current()
        record = SpanRecord(
            seq=next(self._seq), step=step, detail=detail,
            parent=parent.seq if parent else None,
            depth=parent.depth + 1 if parent else 0,
            start=now, end=now,
        )
        self._append(record)

    def span(self, step: str, detail: str = ""):
        """A context manager recording a timed span around the ``with``
        body (the span opens on entry, not at call time).

        Children recorded on the same thread inside the body are linked
        to this span.  Returns a shared no-op context manager while
        disabled (one branch, no allocation).
        """
        if not self.enabled:
            return _NULL_SPAN
        return _OpenSpan(self, step, detail)

    def _open(self, step: str, detail: str) -> SpanRecord:
        parent = self.current()
        record = SpanRecord(
            seq=next(self._seq), step=step, detail=detail,
            parent=parent.seq if parent else None,
            depth=parent.depth + 1 if parent else 0,
            start=self._clock(), end=None,
        )
        self._append(record)
        self._stack().append(record)
        return record

    def _close(self, record: SpanRecord) -> None:
        record.end = self._clock()
        stack = self._stack()
        if stack and stack[-1] is record:
            stack.pop()
        elif record in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(record)

    # -- inspection ------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self.records.clear()

    def steps(self) -> list[str]:
        """The span names, in start order."""
        return [record.step for record in self.records]

    def matching(self, prefix: str) -> list[SpanRecord]:
        """Records whose step starts with ``prefix`` (e.g. ``"fig4"``)."""
        return [record for record in self.records
                if record.step.startswith(prefix)]

    def tail(self, count: int) -> list[SpanRecord]:
        """The most recent ``count`` records, oldest first."""
        with self._lock:
            if count <= 0:
                return []
            return list(self.records[-count:])

    def snapshot(self) -> list[SpanRecord]:
        """A consistent copy of every retained record (export surface)."""
        with self._lock:
            return list(self.records)

    def last_seq(self) -> int:
        """The newest retained record's sequence number (0 when empty) —
        the flight recorder's high-water mark."""
        with self._lock:
            return self.records[-1].seq if self.records else 0

    def since(self, seq: int, limit: int | None = None) -> list[SpanRecord]:
        """Retained records with sequence numbers above ``seq``, oldest
        first (at most ``limit``).  Scans backwards from the tail, so
        the cost is proportional to the slice, not the buffer."""
        with self._lock:
            out: list[SpanRecord] = []
            for record in reversed(self.records):
                if record.seq <= seq:
                    break
                out.append(record)
                if limit is not None and len(out) >= limit:
                    break
        out.reverse()
        return out

    def tree(self) -> list[tuple[SpanRecord, list]]:
        """Nested (record, children) pairs for the retained records."""
        with self._lock:
            records = list(self.records)
        nodes: dict[int, tuple[SpanRecord, list]] = {
            record.seq: (record, []) for record in records
        }
        roots: list[tuple[SpanRecord, list]] = []
        for record in records:
            node = nodes[record.seq]
            parent = nodes.get(record.parent) if record.parent else None
            if parent is not None:
                parent[1].append(node)
            else:
                roots.append(node)
        return roots

    def format(self) -> str:
        """Render the trace as aligned text (indented by span depth)."""
        lines = []
        for record in self.records:
            duration = record.duration
            timing = f"{duration * 1e3:9.3f}ms" if duration is not None else "      open"
            label = "  " * record.depth + record.step
            lines.append(
                f"{record.seq:>5}  {timing}  {label:<40} {record.detail}")
        return "\n".join(lines)
