"""Span-based pipeline tracing: timed, nested, thread-safe.

Generalizes the original flat ``PipelineTrace`` step records into *spans*:
each record carries a start time, an end time (``None`` while open), and a
link to its parent span, so one client command through the agent yields a
tree — gateway receipt → language-filter classification → ECA parse →
codegen → LED detection (per-node operator evaluation) → condition check →
action execution → result routing.

The Figure 3 / Figure 4 step constants are kept as span names, so the
original control-flow semantics (and their tests) survive: ``emit()``
records an instantaneous span, ``span()`` brackets a timed region.

Causality across threads is explicit: a :class:`TraceContext` (trace id
+ parent span id + baggage) can be captured on one thread
(:meth:`PipelineTrace.current_context`) and re-activated on another
(:meth:`PipelineTrace.activate`), so spans recorded on worker-pool or
rule-action threads still hang off the originating client command's
tree.  Spans carrying a trace id are additionally pinned into a bounded
per-trace store (``show agent trace <trace_id>``) that survives the main
ring buffer's eviction.

Tracing is off by default and costs one branch per hook when off.
"""

from __future__ import annotations

import itertools
import re
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass, field

__all__ = [
    "PipelineTrace",
    "SpanRecord",
    "TraceContext",
    "TraceRecord",
    "FIG3_COMMAND_RECEIVED",
    "FIG3_CLASSIFIED_ECA",
    "FIG3_PASSED_THROUGH",
    "FIG3_GRAPH_CREATED",
    "FIG3_SQL_INSTALLED",
    "FIG3_PERSISTED",
    "FIG4_NOTIFIED",
    "FIG4_DETECTED",
    "FIG4_ACTION_RUN",
    "FIG4_RESULTS_ROUTED",
    "SPAN_CLASSIFY",
    "SPAN_ECA_PARSE",
    "SPAN_ECA_CODEGEN",
    "SPAN_LED_RAISE",
    "SPAN_LED_OP_PREFIX",
    "SPAN_QUEUE_WAIT",
    "SPAN_RULE_CONDITION",
    "SPAN_RULE_ACTION",
    "SPAN_GED_ROUTE",
    "SPAN_GED_SHARD",
    "SPAN_GED_REPLAY",
]

#: Step identifiers, named after the paper's figures (kept verbatim from
#: the original flat trace so existing tooling and tests keep working).
FIG3_COMMAND_RECEIVED = "fig3.1-2:command->filter"
FIG3_CLASSIFIED_ECA = "fig3.3:classified-eca"
FIG3_PASSED_THROUGH = "fig3.4:passed-through"
FIG3_GRAPH_CREATED = "fig3.5:event-graph-created"
FIG3_SQL_INSTALLED = "fig3.5:generated-sql-installed"
FIG3_PERSISTED = "fig3.7:persisted"
FIG4_NOTIFIED = "fig4.2-3:notification-received"
FIG4_DETECTED = "fig4.4:led-detected"
FIG4_ACTION_RUN = "fig4.5:action-executed"
FIG4_RESULTS_ROUTED = "fig4.6:results-routed"

#: Additional span names for the finer-grained pipeline stages.
SPAN_CLASSIFY = "filter:classify"
SPAN_ECA_PARSE = "eca:parse"
SPAN_ECA_CODEGEN = "eca:codegen"
SPAN_LED_RAISE = "led:raise"
SPAN_LED_OP_PREFIX = "led:op:"
SPAN_RULE_CONDITION = "rule:condition"
SPAN_RULE_ACTION = "rule:action"
SPAN_QUEUE_WAIT = "gateway:queue-wait"

#: Sharded-GED span names: routing one forwarded occurrence, feeding one
#: shard's detector, and replaying a recovering site's partition.  A
#: datagram's ``;tc=`` trailer re-activates the originating command's
#: trace context before these spans open, so a cross-site composite
#: renders as one connected tree.
SPAN_GED_ROUTE = "ged:route"
SPAN_GED_SHARD = "ged:shard"
SPAN_GED_REPLAY = "ged:replay"

#: Characters allowed in one encoded baggage item — anything else is
#: silently dropped from the wire token (the datagram payload is
#: space-split and ``;``-coalesced, so tokens must avoid both).
_BAGGAGE_SAFE = re.compile(r"^[A-Za-z0-9_.=\-]+$")


@dataclass
class TraceContext:
    """The portable causal identity of one client command.

    A context names the trace (``trace_id``), the span new work should
    be parented under (``parent_span`` — ``None`` for a trace root), the
    depth children should render at, and free-form ``baggage`` (session
    id, rule name, origin).  Contexts cross queues inside submitted
    closures and cross the ``syb_sendmsg`` datagram hop via
    :meth:`encode`/:meth:`decode`.
    """

    trace_id: str | None
    parent_span: int | None = None
    depth: int = 0
    baggage: dict = field(default_factory=dict)

    def child_of(self, span: "SpanRecord") -> "TraceContext":
        """A derived context parenting new work under ``span``."""
        return TraceContext(
            trace_id=span.trace_id if span.trace_id else self.trace_id,
            parent_span=span.seq, depth=span.depth + 1,
            baggage=dict(self.baggage))

    def encode(self) -> str:
        """Serialize to a compact token safe inside a datagram payload
        (no spaces, no ``;``): ``<trace_id>:<parent>:<depth>[:<k=v,..>]``."""
        parent = "" if self.parent_span is None else str(self.parent_span)
        token = f"{self.trace_id or ''}:{parent}:{self.depth}"
        if self.baggage:
            items = ",".join(
                f"{key}={value}"
                for key, value in sorted(self.baggage.items())
                if _BAGGAGE_SAFE.match(f"{key}={value}"))
            if items:
                token = f"{token}:{items}"
        return token

    @classmethod
    def decode(cls, token: str) -> "TraceContext | None":
        """Parse :meth:`encode`'s token; ``None`` when malformed (a
        malformed trace token must never fail the notification)."""
        parts = token.split(":", 3)
        if len(parts) < 3 or not parts[0]:
            return None
        try:
            parent = int(parts[1]) if parts[1] else None
            depth = int(parts[2])
        except ValueError:
            return None
        baggage: dict = {}
        if len(parts) == 4 and parts[3]:
            for item in parts[3].split(","):
                key, sep, value = item.partition("=")
                if sep:
                    baggage[key] = value
        return cls(trace_id=parts[0], parent_span=parent, depth=depth,
                   baggage=baggage)


@dataclass
class SpanRecord:
    """One span: a named, timed region of the pipeline (or an instant)."""

    seq: int
    step: str
    detail: str = ""
    parent: int | None = None
    depth: int = 0
    start: float = 0.0
    end: float | None = None
    #: trace id stamped from the active :class:`TraceContext` (None for
    #: spans recorded outside any client command's context)
    trace_id: str | None = None

    @property
    def duration(self) -> float | None:
        """Elapsed seconds, or None while the span is still open."""
        if self.end is None:
            return None
        return self.end - self.start


#: Backwards-compatible alias: flat trace records are point spans.
TraceRecord = SpanRecord


class _NullSpan:
    """Reusable no-op context manager (tracing disabled)."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *_exc) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _Activation:
    """Context manager installing an inherited :class:`TraceContext` as
    this thread's ambient context (restored on exit)."""

    __slots__ = ("_trace", "_ctx", "_prev")

    def __init__(self, trace: "PipelineTrace", ctx: TraceContext):
        self._trace = trace
        self._ctx = ctx

    def __enter__(self) -> TraceContext:
        local = self._trace._local
        self._prev = getattr(local, "ctx", None)
        local.ctx = self._ctx
        return self._ctx

    def __exit__(self, *_exc) -> bool:
        self._trace._local.ctx = self._prev
        return False


class _OpenSpan:
    """Context manager opening a span on entry and closing it on exit."""

    __slots__ = ("_trace", "_step", "_detail", "record")

    def __init__(self, trace: "PipelineTrace", step: str, detail: str):
        self._trace = trace
        self._step = step
        self._detail = detail
        self.record: SpanRecord | None = None

    def __enter__(self) -> SpanRecord:
        self.record = self._trace._open(self._step, self._detail)
        return self.record

    def __exit__(self, *_exc) -> bool:
        if self.record is not None:
            self._trace._close(self.record)
        return False


class PipelineTrace:
    """Bounded in-memory span buffer (thread-safe).

    Nesting is tracked per thread: spans opened on one thread become
    parents of the spans and point records emitted by that thread until
    they close.  When the buffer is full the oldest tenth of the records
    is dropped (always at least one, so small buffers stay bounded).
    """

    #: Bounds on the per-trace pinned-span store (oldest trace evicted).
    MAX_TRACES = 256
    MAX_TRACE_SPANS = 512

    def __init__(self, enabled: bool = False, max_records: int = 10_000,
                 clock=time.perf_counter):
        self.enabled = enabled
        self.max_records = max_records
        self.records: list[SpanRecord] = []
        self._seq = itertools.count(1)
        self._trace_seq = itertools.count(1)
        #: trace_id -> pinned spans, insertion-ordered for FIFO eviction
        self._traces: OrderedDict[str, list[SpanRecord]] = OrderedDict()
        #: ``trace next <N>`` sampling window state
        self._sampling = False
        self._sample_remaining = 0
        self._sample_restore = False
        self._lock = threading.Lock()
        self._clock = clock
        self._local = threading.local()

    # -- per-thread span stack ------------------------------------------

    def _stack(self) -> list[SpanRecord]:
        stack = getattr(self._local, "stack", None)
        if stack is None:
            stack = []
            self._local.stack = stack
        return stack

    def current(self) -> SpanRecord | None:
        """The innermost open span on this thread, if any."""
        stack = self._stack()
        return stack[-1] if stack else None

    def _parentage(self) -> tuple[int | None, int, str | None]:
        """(parent seq, depth, trace id) for a new record on this thread:
        the innermost open span wins; with no open span, the inherited
        :class:`TraceContext` (if activated) supplies all three."""
        parent = self.current()
        if parent is not None:
            return parent.seq, parent.depth + 1, parent.trace_id
        ctx = getattr(self._local, "ctx", None)
        if ctx is not None:
            return ctx.parent_span, ctx.depth, ctx.trace_id
        return None, 0, None

    # -- recording ------------------------------------------------------

    def _append(self, record: SpanRecord) -> None:
        with self._lock:
            if len(self.records) >= self.max_records:
                # Always drop at least one record: max_records // 10 is 0
                # for buffers of fewer than ten records, which previously
                # let the buffer grow without bound.
                del self.records[: max(1, self.max_records // 10)]
            self.records.append(record)
            if record.trace_id is not None:
                spans = self._traces.get(record.trace_id)
                if spans is None:
                    while len(self._traces) >= self.MAX_TRACES:
                        self._traces.popitem(last=False)
                    spans = []
                    self._traces[record.trace_id] = spans
                if len(spans) < self.MAX_TRACE_SPANS:
                    spans.append(record)

    def emit(self, step: str, detail: str = "") -> None:
        """Record one instantaneous step (no-op while disabled)."""
        if not self.enabled:
            return
        now = self._clock()
        parent_seq, depth, trace_id = self._parentage()
        record = SpanRecord(
            seq=next(self._seq), step=step, detail=detail,
            parent=parent_seq, depth=depth,
            start=now, end=now, trace_id=trace_id,
        )
        self._append(record)

    def span(self, step: str, detail: str = ""):
        """A context manager recording a timed span around the ``with``
        body (the span opens on entry, not at call time).

        Children recorded on the same thread inside the body are linked
        to this span.  Returns a shared no-op context manager while
        disabled (one branch, no allocation).
        """
        if not self.enabled:
            return _NULL_SPAN
        return _OpenSpan(self, step, detail)

    def _open(self, step: str, detail: str) -> SpanRecord:
        parent_seq, depth, trace_id = self._parentage()
        record = SpanRecord(
            seq=next(self._seq), step=step, detail=detail,
            parent=parent_seq, depth=depth,
            start=self._clock(), end=None, trace_id=trace_id,
        )
        self._append(record)
        self._stack().append(record)
        return record

    def _close(self, record: SpanRecord) -> None:
        record.end = self._clock()
        stack = self._stack()
        if stack and stack[-1] is record:
            stack.pop()
        elif record in stack:  # pragma: no cover - unbalanced exit guard
            stack.remove(record)

    def record_span(self, step: str, detail: str = "", *,
                    start: float, end: float) -> SpanRecord | None:
        """Record an already-measured span with explicit timestamps,
        parented like any other record on this thread (no-op while
        disabled).  Used for regions measured before the trace context
        existed — e.g. the gateway's queue-wait interval, whose start
        was stamped on the submitting client thread."""
        if not self.enabled:
            return None
        parent_seq, depth, trace_id = self._parentage()
        record = SpanRecord(
            seq=next(self._seq), step=step, detail=detail,
            parent=parent_seq, depth=depth,
            start=start, end=end, trace_id=trace_id,
        )
        self._append(record)
        return record

    # -- explicit trace-context propagation ------------------------------

    def activate(self, ctx: TraceContext | None):
        """Context manager installing ``ctx`` as this thread's inherited
        context for the ``with`` body: records opened with no enclosing
        span parent under ``ctx.parent_span`` and carry its trace id.
        ``None`` returns a shared no-op (one branch on the off path)."""
        if ctx is None:
            return _NULL_SPAN
        return _Activation(self, ctx)

    def active_trace_id(self) -> str | None:
        """The trace id governing this thread right now: the innermost
        open span's, else the inherited context's, else ``None``.  Other
        observability planes (provenance, flight recorder) stamp their
        records with this."""
        span = self.current()
        if span is not None:
            return span.trace_id
        ctx = getattr(self._local, "ctx", None)
        return ctx.trace_id if ctx is not None else None

    def current_context(self) -> TraceContext | None:
        """Capture this thread's causal position for a cross-thread
        hand-off: a context parenting new work under the innermost open
        span, else the inherited context, else ``None``."""
        span = self.current()
        if span is not None:
            ctx = getattr(self._local, "ctx", None)
            baggage = dict(ctx.baggage) if ctx is not None else {}
            return TraceContext(
                trace_id=span.trace_id, parent_span=span.seq,
                depth=span.depth + 1, baggage=baggage)
        return getattr(self._local, "ctx", None)

    def command_context(self, session=None) -> TraceContext | None:
        """A fresh root context for one client command (None while
        tracing is off).  Consumes one slot of an armed ``trace next
        <N>`` sampling window; when the window is spent, the *next* call
        restores the pre-sampling enabled flag, so the last sampled
        command finishes fully traced."""
        if self._sampling:
            with self._lock:
                if self._sampling:
                    if self._sample_remaining <= 0:
                        self._sampling = False
                        self.enabled = self._sample_restore
                    else:
                        self._sample_remaining -= 1
        if not self.enabled:
            return None
        baggage: dict = {"origin": "client"}
        session_id = getattr(session, "session_id", None)
        if session_id is not None:
            baggage["session_id"] = session_id
        user = getattr(session, "user", None)
        if user:
            baggage["user"] = user
        return TraceContext(
            trace_id=f"t{next(self._trace_seq):06d}",
            parent_span=None, depth=0, baggage=baggage)

    def sample_next(self, count: int) -> None:
        """Arm tracing for the next ``count`` client commands (``trace
        next <N>``): forces ``enabled`` on and restores its previous
        value once the window is spent."""
        with self._lock:
            count = max(0, int(count))
            if count and not self._sampling:
                self._sampling = True
                self._sample_restore = self.enabled
                self.enabled = True
            self._sample_remaining = count

    def sampling_remaining(self) -> int:
        """Commands left in the armed sampling window (0 = disarmed)."""
        return self._sample_remaining if self._sampling else 0

    def reset_thread(self) -> None:
        """Drop this thread's ambient state (open-span stack + inherited
        context) — worker-pool hygiene between tasks, so a recycled
        thread never parents new work under a previous command."""
        self._local.stack = []
        self._local.ctx = None

    # -- inspection ------------------------------------------------------

    def clear(self) -> None:
        with self._lock:
            self.records.clear()
            self._traces.clear()

    def spans_for(self, trace_id: str) -> list[SpanRecord]:
        """The pinned spans of one trace, oldest first (empty when the
        trace id is unknown or evicted)."""
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def trace_ids(self) -> list[str]:
        """Trace ids retained in the store, oldest first."""
        with self._lock:
            return list(self._traces)

    def trace_count(self) -> int:
        """Number of traces currently retained in the store."""
        with self._lock:
            return len(self._traces)

    def steps(self) -> list[str]:
        """The span names, in start order."""
        return [record.step for record in self.records]

    def matching(self, prefix: str) -> list[SpanRecord]:
        """Records whose step starts with ``prefix`` (e.g. ``"fig4"``)."""
        return [record for record in self.records
                if record.step.startswith(prefix)]

    def tail(self, count: int) -> list[SpanRecord]:
        """The most recent ``count`` records, oldest first."""
        with self._lock:
            if count <= 0:
                return []
            return list(self.records[-count:])

    def snapshot(self) -> list[SpanRecord]:
        """A consistent copy of every retained record (export surface)."""
        with self._lock:
            return list(self.records)

    def last_seq(self) -> int:
        """The newest retained record's sequence number (0 when empty) —
        the flight recorder's high-water mark."""
        with self._lock:
            return self.records[-1].seq if self.records else 0

    def since(self, seq: int, limit: int | None = None) -> list[SpanRecord]:
        """Retained records with sequence numbers above ``seq``, oldest
        first (at most ``limit``).  Scans backwards from the tail, so
        the cost is proportional to the slice, not the buffer."""
        with self._lock:
            out: list[SpanRecord] = []
            for record in reversed(self.records):
                if record.seq <= seq:
                    break
                out.append(record)
                if limit is not None and len(out) >= limit:
                    break
        out.reverse()
        return out

    def tree(self) -> list[tuple[SpanRecord, list]]:
        """Nested (record, children) pairs for the retained records."""
        with self._lock:
            records = list(self.records)
        nodes: dict[int, tuple[SpanRecord, list]] = {
            record.seq: (record, []) for record in records
        }
        roots: list[tuple[SpanRecord, list]] = []
        for record in records:
            node = nodes[record.seq]
            parent = nodes.get(record.parent) if record.parent else None
            if parent is not None:
                parent[1].append(node)
            else:
                roots.append(node)
        return roots

    def format(self) -> str:
        """Render the trace as aligned text (indented by span depth)."""
        lines = []
        for record in self.records:
            duration = record.duration
            timing = f"{duration * 1e3:9.3f}ms" if duration is not None else "      open"
            label = "  " * record.depth + record.step
            lines.append(
                f"{record.seq:>5}  {timing}  {label:<40} {record.detail}")
        return "\n".join(lines)
