"""The slow-op flight recorder: bounded post-hoc capture of slow commands.

Tracing answers "what does a command do"; the flight recorder answers
"what did *that one slow command last Tuesday* do".  The gateway notes
the trace/journal high-water marks before routing each command and, when
the command's wall time exceeds the armed threshold (``set agent slowlog
<ms>``), captures everything recorded since — the command's own
:class:`~repro.obs.tracing.PipelineTrace` span tree and its
:class:`~repro.obs.provenance.ProvenanceJournal` slice — together with
the operation's :class:`~repro.obs.opcontext.OpContext` counters, into a
fixed-size ring of :class:`SlowOp` records.

Disarmed (the default) the recorder costs one attribute read per
command.  Armed, the marginal cost is two ``last_seq`` reads per command
plus the capture itself, which only slow commands pay.  ``show agent
slow [N]`` dumps the ring; the telemetry exporter writes each record
once as a ``{"type": "slow_op"}`` JSONL line.
"""

from __future__ import annotations

import itertools
import threading
import time
from dataclasses import dataclass, field

__all__ = ["FlightRecorder", "SlowOp"]

#: Default ring capacity (slow ops retained).
DEFAULT_CAPACITY = 64
#: Caps on the captured per-op slices, so one pathological command
#: cannot make the ring itself expensive to hold or export.
MAX_SPANS = 200
MAX_PROVENANCE = 100
#: Statement text is truncated to this many characters in the record.
MAX_STATEMENT = 200


@dataclass
class SlowOp:
    """One captured slow operation."""

    seq: int
    at: float
    kind: str
    statement: str
    session_id: object
    user: str
    duration_ms: float
    threshold_ms: float
    counters: dict = field(default_factory=dict)
    spans: list = field(default_factory=list)
    provenance: list = field(default_factory=list)
    #: trace id of the captured command (None with tracing off)
    trace_id: str | None = None
    #: EXPLAIN rendering of the statement's optimized plan (None when
    #: the statement has no plannable SQL — admin commands, DDL, ...)
    plan: str | None = None

    def as_dict(self) -> dict:
        """JSONL payload for the telemetry exporter."""
        return {
            "seq": self.seq,
            "at": self.at,
            "kind": self.kind,
            "statement": self.statement,
            "session_id": self.session_id,
            "user": self.user,
            "duration_ms": self.duration_ms,
            "threshold_ms": self.threshold_ms,
            "trace_id": self.trace_id,
            "plan": self.plan,
            "counters": dict(self.counters),
            "spans": list(self.spans),
            "provenance": list(self.provenance),
        }


class FlightRecorder:
    """Fixed-size ring buffer of :class:`SlowOp` records (thread-safe)."""

    def __init__(self, capacity: int = DEFAULT_CAPACITY,
                 threshold_ms: float | None = None, clock=time.time):
        if capacity < 1:
            raise ValueError(
                f"flight recorder capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        #: slow-op threshold in milliseconds; ``None`` disarms capture
        self.threshold_ms = threshold_ms
        self._clock = clock
        self._records: list[SlowOp] = []
        self._seq = itertools.count(1)
        self._lock = threading.Lock()
        self.captured_total = 0

    @property
    def armed(self) -> bool:
        return self.threshold_ms is not None

    def __len__(self) -> int:
        return len(self._records)

    # ------------------------------------------------------------------
    # gateway surface

    def marks(self, trace, journal) -> tuple[int, int]:
        """The (span seq, provenance seq) high-water marks right now —
        taken before routing, so a later capture slices only what the
        command itself recorded."""
        return trace.last_seq(), journal.last_seq()

    def capture(self, *, kind: str, statement: str, session,
                duration: float, frame, trace, journal,
                marks: tuple[int, int],
                trace_id: str | None = None,
                plan: str | None = None) -> SlowOp:
        """Record one over-threshold operation into the ring."""
        span_mark, prov_mark = marks
        spans = [
            {
                "seq": record.seq,
                "step": record.step,
                "detail": record.detail,
                "depth": record.depth,
                "parent": record.parent,
                "trace_id": record.trace_id,
                "duration_ms": (
                    None if record.duration is None
                    else round(record.duration * 1e3, 4)),
            }
            for record in trace.since(span_mark, limit=MAX_SPANS)
        ]
        provenance = [
            {
                "seq": record.seq,
                "kind": record.kind,
                "name": record.name,
                "context": record.context,
                "detail": record.detail,
                "parents": list(record.parents),
            }
            for record in journal.since(prov_mark, limit=MAX_PROVENANCE)
        ]
        record = SlowOp(
            seq=next(self._seq),
            at=self._clock(),
            kind=kind,
            statement=statement[:MAX_STATEMENT],
            session_id=session.session_id,
            user=session.user,
            duration_ms=round(duration * 1e3, 4),
            threshold_ms=self.threshold_ms if self.armed else 0.0,
            counters=frame.as_dict() if frame is not None else {},
            spans=spans,
            provenance=provenance,
            trace_id=trace_id,
            plan=plan,
        )
        with self._lock:
            self._records.append(record)
            if len(self._records) > self.capacity:
                del self._records[: len(self._records) - self.capacity]
            self.captured_total += 1
        return record

    # ------------------------------------------------------------------
    # inspection / export

    def tail(self, count: int) -> list[SlowOp]:
        """The most recent ``count`` slow ops, oldest first."""
        with self._lock:
            if count <= 0:
                return []
            return list(self._records[-count:])

    def snapshot(self) -> list[SlowOp]:
        """A consistent copy of the whole ring (export surface)."""
        with self._lock:
            return list(self._records)

    def clear(self) -> None:
        with self._lock:
            self._records.clear()
