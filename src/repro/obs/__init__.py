"""``repro.obs`` — the end-to-end observability layer.

Three parts, mirroring what the paper's evaluation (Figures 15-17)
measures by hand:

- :mod:`repro.obs.metrics` — thread-safe :class:`Counter` / :class:`Gauge`
  / :class:`Histogram` primitives behind a labeled
  :class:`MetricsRegistry`, with text and dict exporters;
- :mod:`repro.obs.tracing` — the span-based :class:`PipelineTrace`
  (timed, nested records keyed by the paper's Figure 3/4 step names);
- :mod:`repro.obs.provenance` — the causality-aware
  :class:`ProvenanceJournal` (every notification, raise, detection,
  condition, firing and action as a parent-linked record, plus exact
  per-(node, context) fire/consumption aggregates);
- :mod:`repro.obs.export` — the :class:`TelemetryExporter` snapshotting
  all three surfaces into rotating, size-bounded JSONL;
- the process-wide default instances behind :func:`get_metrics` /
  :func:`get_trace`, for code that wants one shared sink.

The ECA Agent owns a *private* registry and trace per instance (so
side-by-side agents and tests never share state) and exposes them to
clients through the ``show agent stats`` / ``show agent trace`` operator
commands; the defaults here serve standalone LED or engine embeddings.

Everything is off by default and costs one branch per hook when off.
"""

from __future__ import annotations

from .export import TelemetryExporter
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricFamily,
    MetricsRegistry,
    percentile,
    summarize,
)
from .provenance import NodeStat, ProvenanceJournal, ProvenanceRecord
from .tracing import (
    FIG3_CLASSIFIED_ECA,
    FIG3_COMMAND_RECEIVED,
    FIG3_GRAPH_CREATED,
    FIG3_PASSED_THROUGH,
    FIG3_PERSISTED,
    FIG3_SQL_INSTALLED,
    FIG4_ACTION_RUN,
    FIG4_DETECTED,
    FIG4_NOTIFIED,
    FIG4_RESULTS_ROUTED,
    SPAN_CLASSIFY,
    SPAN_ECA_CODEGEN,
    SPAN_ECA_PARSE,
    SPAN_LED_OP_PREFIX,
    SPAN_LED_RAISE,
    SPAN_RULE_ACTION,
    SPAN_RULE_CONDITION,
    PipelineTrace,
    SpanRecord,
    TraceRecord,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HistogramSummary",
    "MetricFamily",
    "MetricsRegistry",
    "NodeStat",
    "PipelineTrace",
    "ProvenanceJournal",
    "ProvenanceRecord",
    "SpanRecord",
    "TelemetryExporter",
    "TraceRecord",
    "percentile",
    "summarize",
    "get_metrics",
    "get_trace",
    "FIG3_COMMAND_RECEIVED",
    "FIG3_CLASSIFIED_ECA",
    "FIG3_PASSED_THROUGH",
    "FIG3_GRAPH_CREATED",
    "FIG3_SQL_INSTALLED",
    "FIG3_PERSISTED",
    "FIG4_NOTIFIED",
    "FIG4_DETECTED",
    "FIG4_ACTION_RUN",
    "FIG4_RESULTS_ROUTED",
    "SPAN_CLASSIFY",
    "SPAN_ECA_PARSE",
    "SPAN_ECA_CODEGEN",
    "SPAN_LED_RAISE",
    "SPAN_LED_OP_PREFIX",
    "SPAN_RULE_CONDITION",
    "SPAN_RULE_ACTION",
]

#: Process-wide defaults (created eagerly: cheap, and import-order safe).
_default_metrics = MetricsRegistry(enabled=False)
_default_trace = PipelineTrace(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _default_metrics


def get_trace() -> PipelineTrace:
    """The process-wide default :class:`PipelineTrace`."""
    return _default_trace
