"""``repro.obs`` — the end-to-end observability layer.

Three parts, mirroring what the paper's evaluation (Figures 15-17)
measures by hand:

- :mod:`repro.obs.metrics` — thread-safe :class:`Counter` / :class:`Gauge`
  / :class:`Histogram` primitives behind a labeled
  :class:`MetricsRegistry`, with text and dict exporters;
- :mod:`repro.obs.tracing` — the span-based :class:`PipelineTrace`
  (timed, nested records keyed by the paper's Figure 3/4 step names);
- :mod:`repro.obs.provenance` — the causality-aware
  :class:`ProvenanceJournal` (every notification, raise, detection,
  condition, firing and action as a parent-linked record, plus exact
  per-(node, context) fire/consumption aggregates);
- :mod:`repro.obs.export` — the :class:`TelemetryExporter` snapshotting
  all surfaces into rotating, size-bounded JSONL;
- :mod:`repro.obs.opcontext` — ambient per-session / per-rule resource
  accounting (:class:`OpAccounting`, surfaced by ``show agent top``);
- :mod:`repro.obs.flightrec` — the slow-op :class:`FlightRecorder`
  (``set agent slowlog <ms>`` / ``show agent slow``);
- :mod:`repro.obs.health` — the declarative watchdog
  (:class:`HealthEvaluator` behind ``show agent health``);
- the process-wide default instances behind :func:`get_metrics` /
  :func:`get_trace`, for code that wants one shared sink.

The ECA Agent owns a *private* registry and trace per instance (so
side-by-side agents and tests never share state) and exposes them to
clients through the ``show agent stats`` / ``show agent trace`` operator
commands; the defaults here serve standalone LED or engine embeddings.

Everything is off by default and costs one branch per hook when off.
"""

from __future__ import annotations

from .export import TelemetryExporter
from .flightrec import FlightRecorder, SlowOp
from .health import (
    DEFAULT_HEALTH_RULES,
    HealthEvaluator,
    HealthFinding,
    HealthReport,
    HealthRule,
    collect_sample,
)
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    HistogramSummary,
    MetricFamily,
    MetricsRegistry,
    bucket_bounds,
    percentile,
    quantile_from_buckets,
    summarize,
)
from .opcontext import OpAccounting, OpContext, RuleTotals, SessionTotals
from .provenance import NodeStat, ProvenanceJournal, ProvenanceRecord
from .tracing import (
    FIG3_CLASSIFIED_ECA,
    FIG3_COMMAND_RECEIVED,
    FIG3_GRAPH_CREATED,
    FIG3_PASSED_THROUGH,
    FIG3_PERSISTED,
    FIG3_SQL_INSTALLED,
    FIG4_ACTION_RUN,
    FIG4_DETECTED,
    FIG4_NOTIFIED,
    FIG4_RESULTS_ROUTED,
    SPAN_CLASSIFY,
    SPAN_ECA_CODEGEN,
    SPAN_ECA_PARSE,
    SPAN_LED_OP_PREFIX,
    SPAN_LED_RAISE,
    SPAN_QUEUE_WAIT,
    SPAN_RULE_ACTION,
    SPAN_RULE_CONDITION,
    PipelineTrace,
    SpanRecord,
    TraceContext,
    TraceRecord,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_HEALTH_RULES",
    "FlightRecorder",
    "Gauge",
    "HealthEvaluator",
    "HealthFinding",
    "HealthReport",
    "HealthRule",
    "Histogram",
    "HistogramSummary",
    "MetricFamily",
    "MetricsRegistry",
    "NodeStat",
    "OpAccounting",
    "OpContext",
    "PipelineTrace",
    "ProvenanceJournal",
    "ProvenanceRecord",
    "RuleTotals",
    "SessionTotals",
    "SlowOp",
    "SpanRecord",
    "TelemetryExporter",
    "TraceContext",
    "TraceRecord",
    "bucket_bounds",
    "collect_sample",
    "percentile",
    "quantile_from_buckets",
    "summarize",
    "get_metrics",
    "get_trace",
    "FIG3_COMMAND_RECEIVED",
    "FIG3_CLASSIFIED_ECA",
    "FIG3_PASSED_THROUGH",
    "FIG3_GRAPH_CREATED",
    "FIG3_SQL_INSTALLED",
    "FIG3_PERSISTED",
    "FIG4_NOTIFIED",
    "FIG4_DETECTED",
    "FIG4_ACTION_RUN",
    "FIG4_RESULTS_ROUTED",
    "SPAN_CLASSIFY",
    "SPAN_ECA_PARSE",
    "SPAN_ECA_CODEGEN",
    "SPAN_LED_RAISE",
    "SPAN_LED_OP_PREFIX",
    "SPAN_QUEUE_WAIT",
    "SPAN_RULE_CONDITION",
    "SPAN_RULE_ACTION",
]

#: Process-wide defaults (created eagerly: cheap, and import-order safe).
_default_metrics = MetricsRegistry(enabled=False)
_default_trace = PipelineTrace(enabled=False)


def get_metrics() -> MetricsRegistry:
    """The process-wide default :class:`MetricsRegistry`."""
    return _default_metrics


def get_trace() -> PipelineTrace:
    """The process-wide default :class:`PipelineTrace`."""
    return _default_trace
