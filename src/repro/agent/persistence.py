"""The Persistent Manager (paper Section 4, Figures 5-8, 17).

Persists every event and ECA trigger in system tables *inside the SQL
server itself*, using nothing but ordinary SQL — that is the paper's
point: the native DBMS provides the persistence.  On agent startup the
manager reads the tables back and the agent re-creates its runtime state
(Figure 8's recovery path).

Table layouts follow the paper's figures exactly; ``SysEcaTrigger`` gains
three trailing columns (``coupling``, ``context``, ``priority``) that the
paper's Figure 7 omits but recovery requires — a documented extension
(DESIGN.md §2).
"""

from __future__ import annotations


from repro.faults import (
    Directive,
    FaultError,
    FaultInjector,
    POINT_PERSISTENCE_EXECUTE,
    RetryExhaustedError,
    RetryPolicy,
    TransientFaultError,
)
from repro.led.rules import Context, Coupling
from repro.sqlengine import SqlServer
from repro.sqlengine.types import sql_repr

from .errors import PersistenceError
from .model import CompositeEventDef, EcaTriggerDef, PrimitiveEventDef

#: (column name, type, length, nullable) — Figure 5.
SYS_PRIMITIVE_EVENT_LAYOUT = [
    ("dbName", "varchar", 30, True),
    ("userName", "varchar", 30, True),
    ("eventName", "varchar", 30, True),
    ("tableName", "varchar", 30, True),
    ("operation", "varchar", 20, True),
    ("timeStamp", "datetime", None, True),
    ("vNo", "int", None, True),
]

#: Figure 6.
SYS_COMPOSITE_EVENT_LAYOUT = [
    ("dbName", "varchar", 30, True),
    ("userName", "varchar", 30, True),
    ("eventName", "varchar", 30, True),
    ("eventDescribe", "text", None, True),
    ("timeStamp", "datetime", None, True),
    ("coupling", "char", 10, True),
    ("context", "char", 10, True),
    ("priority", "char", 10, True),
]

#: Figure 7 plus the three recovery columns (documented extension).
SYS_ECA_TRIGGER_LAYOUT = [
    ("dbName", "varchar", 30, True),
    ("userName", "varchar", 30, True),
    ("triggerName", "varchar", 30, True),
    ("triggerProc", "text", None, True),
    ("timeStamp", "datetime", None, True),
    ("eventName", "varchar", 60, True),
    ("coupling", "char", 10, True),
    ("context", "char", 12, True),
    ("priority", "int", None, True),
]

#: Figure 17.
SYS_CONTEXT_LAYOUT = [
    ("tableName", "varchar", 50, False),
    ("context", "varchar", 12, False),
    ("vNo", "int", None, False),
]

#: Which ECA trigger additionally stores the user's action text; needed to
#: regenerate procedures if a DBA drops one (extension table).
SYS_ACTION_LAYOUT = [
    ("triggerName", "varchar", 90, False),
    ("actionSql", "text", None, True),
    ("conditionSql", "text", None, True),
]

_SYSTEM_TABLES = {
    "SysPrimitiveEvent": SYS_PRIMITIVE_EVENT_LAYOUT,
    "SysCompositeEvent": SYS_COMPOSITE_EVENT_LAYOUT,
    "SysEcaTrigger": SYS_ECA_TRIGGER_LAYOUT,
    "sysContext": SYS_CONTEXT_LAYOUT,
    "SysEcaAction": SYS_ACTION_LAYOUT,
}

#: Hot lookup column per system table; the generated native triggers and
#: the context-processing joins filter on these, so each gets an index.
_SYSTEM_INDEXES = {
    "SysPrimitiveEvent": "eventName",
    "SysCompositeEvent": "eventName",
    "SysEcaTrigger": "triggerName",
    "sysContext": "tableName",
    "SysEcaAction": "triggerName",
}


class PersistentManager:
    """Owns the agent's DBA connection and the ECA system tables.

    The paper runs this as a dedicated Open Server thread holding a
    high-privilege Client-Library connection; here it holds a dedicated
    DBA session on the engine.
    """

    #: owner of the system tables inside each database
    OWNER = "dbo"

    def __init__(self, server: SqlServer, dba_user: str = "sa",
                 faults: FaultInjector | None = None,
                 retry: RetryPolicy | None = None,
                 metrics=None):
        self.server = server
        self.dba_user = dba_user
        #: fault-injection harness consulted before every statement
        #: (``persistence.execute`` point); None = no injection.
        self.faults = faults
        #: retry policy applied to every statement; None = fail fast.
        self.retry = retry
        #: metrics registry the retry policy reports into (may be None).
        self.metrics = metrics
        self._sessions: dict[str, object] = {}

    # ------------------------------------------------------------------
    # plumbing

    def _session(self, database: str):
        session = self._sessions.get(database.lower())
        if session is None:
            session = self.server.create_session(self.OWNER, database)
            self._sessions[database.lower()] = session
        return session

    def execute(self, database: str, sql: str):
        """Run SQL on the manager's privileged connection.

        Failure/retry semantics: transient faults (injected at the
        ``persistence.execute`` point) are retried under :attr:`retry`;
        once retries are exhausted a :class:`RetryExhaustedError`
        surfaces.  Any real engine failure is wrapped in
        :class:`~repro.agent.errors.PersistenceError` naming the exact
        statement that failed.  A DROP-kind fault silently loses the
        write and returns ``None``.
        """
        session = self._session(database)

        def attempt():
            faults = self.faults
            if faults is not None and faults.enabled:
                if faults.fire(POINT_PERSISTENCE_EXECUTE,
                               sql) is Directive.DROP:
                    return None
            return self.server.execute(sql, session)

        try:
            if self.retry is None:
                return attempt()
            return self.retry.call(
                attempt, operation="persistence", metrics=self.metrics,
                retry_if=_is_transient_persistence_fault)
        except (FaultError, RetryExhaustedError) as exc:
            exc.statement = sql
            raise
        except Exception as exc:
            raise PersistenceError(sql, exc) from exc

    def system_prefix(self, database: str) -> str:
        """Qualified prefix for system tables, e.g. ``sentineldb.dbo``."""
        return f"{database}.{self.OWNER}"

    # ------------------------------------------------------------------
    # table lifecycle

    def ensure_system_tables(self, database: str) -> None:
        """Create any missing ECA system tables (and their hot-path
        indexes) in a database.  Idempotent: re-running after recovery
        only fills in whatever is absent."""
        db = self.server.catalog.get_database(database)
        for table_name, layout in _SYSTEM_TABLES.items():
            if db.get_table(self.OWNER, table_name) is None:
                columns = ", ".join(
                    _column_ddl(name, type_name, length, nullable)
                    for name, type_name, length, nullable in layout
                )
                self.execute(database, f"create table {table_name} ({columns})")
            table = db.get_table(self.OWNER, table_name)
            column = _SYSTEM_INDEXES[table_name]
            if (table is not None and table.index_on(column) is None
                    and table.schema.index_of(column, required=False)
                    is not None):
                self.execute(database, (
                    f"create index ECA_{table_name}_{column} "
                    f"on {table_name} ({column})"
                ))

    def has_system_tables(self, database: str) -> bool:
        """Whether every ECA system table already exists in a database."""
        db = self.server.catalog.get_database(database)
        return all(
            db.get_table(self.OWNER, table_name) is not None
            for table_name in _SYSTEM_TABLES
        )

    # ------------------------------------------------------------------
    # persisting definitions

    def persist_primitive(self, event: PrimitiveEventDef) -> None:
        """Insert one ``SysPrimitiveEvent`` row (atomic: single insert)."""
        self.execute(event.db_name, (
            "insert SysPrimitiveEvent values ("
            f"{sql_repr(event.db_name)}, {sql_repr(event.user_name)}, "
            f"{sql_repr(event.event_name)}, {sql_repr(event.table_name)}, "
            f"{sql_repr(event.operation)}, getdate(), 0)"
        ))

    def persist_composite(self, event: CompositeEventDef) -> None:
        """Insert one ``SysCompositeEvent`` row (atomic: single insert)."""
        self.execute(event.db_name, (
            "insert SysCompositeEvent values ("
            f"{sql_repr(event.db_name)}, {sql_repr(event.user_name)}, "
            f"{sql_repr(event.event_name)}, {sql_repr(event.event_describe)}, "
            f"getdate(), {sql_repr(event.coupling.value)}, "
            f"{sql_repr(event.context.value)}, "
            f"{sql_repr(str(event.priority))})"
        ))

    def persist_trigger(self, trigger: EcaTriggerDef) -> None:
        """Insert the ``SysEcaTrigger`` and ``SysEcaAction`` rows.

        NOT atomic: a crash between the two inserts leaves an orphan
        ``SysEcaTrigger`` row, which :meth:`repair_orphans` deletes on
        the next recovery (the rule then "fully does not exist").
        """
        self.execute(trigger.db_name, (
            "insert SysEcaTrigger values ("
            f"{sql_repr(trigger.db_name)}, {sql_repr(trigger.user_name)}, "
            f"{sql_repr(trigger.trigger_name)}, {sql_repr(trigger.proc_name)}, "
            f"getdate(), {sql_repr(trigger.event_internal)}, "
            f"{sql_repr(trigger.coupling.value)}, "
            f"{sql_repr(trigger.context.value)}, {trigger.priority})"
        ))
        self.execute(trigger.db_name, (
            "insert SysEcaAction values ("
            f"{sql_repr(trigger.internal)}, {sql_repr(trigger.action_sql)}, "
            f"{sql_repr(trigger.condition_sql)})"
        ))

    # ------------------------------------------------------------------
    # removing definitions

    def delete_primitive(self, event: PrimitiveEventDef) -> None:
        """Delete an event's ``SysPrimitiveEvent`` row (idempotent)."""
        self.execute(event.db_name, (
            "delete SysPrimitiveEvent "
            f"where dbName = {sql_repr(event.db_name)} "
            f"and userName = {sql_repr(event.user_name)} "
            f"and eventName = {sql_repr(event.event_name)}"
        ))

    def delete_composite(self, event: CompositeEventDef) -> None:
        """Delete an event's ``SysCompositeEvent`` row (idempotent)."""
        self.execute(event.db_name, (
            "delete SysCompositeEvent "
            f"where dbName = {sql_repr(event.db_name)} "
            f"and userName = {sql_repr(event.user_name)} "
            f"and eventName = {sql_repr(event.event_name)}"
        ))

    def delete_trigger(self, trigger: EcaTriggerDef) -> None:
        """Delete a trigger's rows from both trigger tables.

        NOT atomic: a crash between the two deletes leaves an orphan
        ``SysEcaAction`` row, cleaned up by :meth:`repair_orphans`.
        """
        self.execute(trigger.db_name, (
            "delete SysEcaTrigger "
            f"where dbName = {sql_repr(trigger.db_name)} "
            f"and userName = {sql_repr(trigger.user_name)} "
            f"and triggerName = {sql_repr(trigger.trigger_name)}"
        ))
        self.execute(trigger.db_name, (
            "delete SysEcaAction "
            f"where triggerName = {sql_repr(trigger.internal)}"
        ))

    # ------------------------------------------------------------------
    # queries

    def current_v_no(self, database: str, event_internal: str) -> int:
        """The latest occurrence number of a primitive event.

        Matching by the internal name requires splitting it, since the
        paper's Figure 5 stores short names per (db, user).
        """
        from .naming import split_internal

        db, user, obj = split_internal(event_internal)
        result = self.execute(database, (
            "select vNo from SysPrimitiveEvent "
            f"where dbName = {sql_repr(db)} and userName = {sql_repr(user)} "
            f"and eventName = {sql_repr(obj)}"
        ))
        last = result.last
        if last is None or not last.rows:
            return 0
        return int(last.rows[0][0] or 0)

    def load_primitives(self, database: str) -> list[PrimitiveEventDef]:
        """Rebuild primitive event definitions from ``SysPrimitiveEvent``.

        The monitored table's owner is re-resolved with the same
        preference order used at definition time (owner = defining user,
        falling back to ``dbo``).
        """
        result = self.execute(database, "select * from SysPrimitiveEvent")
        definitions: list[PrimitiveEventDef] = []
        db_obj = self.server.catalog.get_database(database)
        for row in (result.last.as_dicts() if result.last else []):
            user = str(row["userName"])
            table_name = str(row["tableName"])
            table = db_obj.find_table(table_name, user)
            table_owner = table.owner if table is not None else user
            definitions.append(PrimitiveEventDef(
                db_name=str(row["dbName"]),
                user_name=user,
                event_name=str(row["eventName"]),
                table_owner=table_owner,
                table_name=table_name,
                operation=str(row["operation"]),
            ))
        return definitions

    def repair_orphans(self, database: str) -> int:
        """Delete half-persisted trigger rows left by a mid-write crash.

        Two inconsistencies can exist (see :meth:`persist_trigger` /
        :meth:`delete_trigger`):

        - a ``SysEcaTrigger`` row with no matching ``SysEcaAction`` row —
          a create that crashed between its two inserts; the row *and*
          the already-created action procedure are removed, so the rule
          fully does not exist after recovery;
        - a ``SysEcaAction`` row with no matching ``SysEcaTrigger`` row —
          a drop that crashed between its two deletes; the row is
          removed, completing the drop.

        Returns the number of repairs performed.  Called by
        :meth:`EcaAgent.recover` before loading, so a recovered agent
        never sees a torn rule.
        """
        from .naming import internal_name

        triggers = self.execute(database, "select * from SysEcaTrigger")
        actions = self.execute(database, "select * from SysEcaAction")
        trigger_rows = triggers.last.as_dicts() if triggers.last else []
        action_rows = actions.last.as_dicts() if actions.last else []
        trigger_keys = {
            internal_name(str(row["dbName"]), str(row["userName"]),
                          str(row["triggerName"])).lower()
            for row in trigger_rows
        }
        action_keys = {
            str(row["triggerName"]).lower() for row in action_rows
        }
        repaired = 0
        db_obj = self.server.catalog.get_database(database)
        for row in trigger_rows:
            db, user, name = (str(row["dbName"]), str(row["userName"]),
                              str(row["triggerName"]))
            if internal_name(db, user, name).lower() in action_keys:
                continue
            self.execute(database, (
                "delete SysEcaTrigger "
                f"where dbName = {sql_repr(db)} "
                f"and userName = {sql_repr(user)} "
                f"and triggerName = {sql_repr(name)}"
            ))
            # The action procedure is created before the trigger rows are
            # persisted, so an orphan row implies the proc may exist.
            proc = internal_name(db, user, f"{name}__Proc")
            if db_obj.get_procedure(user, f"{name}__Proc") is not None:
                self.execute(database, f"drop procedure {proc}")
            repaired += 1
        for row in action_rows:
            key = str(row["triggerName"])
            if key.lower() in trigger_keys:
                continue
            self.execute(database, (
                "delete SysEcaAction "
                f"where triggerName = {sql_repr(key)}"
            ))
            repaired += 1
        # Finally, sweep action procedures with no trigger rows at all —
        # the proc is created before either insert, so a crash before the
        # ``SysEcaTrigger`` insert leaves only the proc behind.
        paired = trigger_keys & action_keys
        suffix = "__proc"
        for (owner, pname) in list(db_obj.procedures):
            if not pname.endswith(suffix):
                continue
            trig_key = internal_name(
                database, owner, pname[: -len(suffix)]).lower()
            if trig_key in paired:
                continue
            proc = db_obj.procedures[(owner, pname)]
            self.execute(
                database,
                f"drop procedure {internal_name(database, proc.owner, proc.name)}")
            repaired += 1
        return repaired

    def load_composites(self, database: str) -> list[CompositeEventDef]:
        """Rebuild composite event definitions from ``SysCompositeEvent``."""
        result = self.execute(database, "select * from SysCompositeEvent")
        definitions: list[CompositeEventDef] = []
        for row in (result.last.as_dicts() if result.last else []):
            definitions.append(CompositeEventDef(
                db_name=str(row["dbName"]),
                user_name=str(row["userName"]),
                event_name=str(row["eventName"]),
                event_describe=str(row["eventDescribe"]),
                coupling=Coupling.parse(str(row["coupling"]).strip()),
                context=Context.parse(str(row["context"]).strip()),
                priority=int(str(row["priority"]).strip() or "1"),
            ))
        return definitions

    def load_triggers(self, database: str) -> list[EcaTriggerDef]:
        """Rebuild trigger definitions by joining ``SysEcaTrigger`` with
        ``SysEcaAction`` (run :meth:`repair_orphans` first so every row
        pairs up)."""
        result = self.execute(database, "select * from SysEcaTrigger")
        actions = self.execute(database, "select * from SysEcaAction")
        action_by_trigger = {
            str(row["triggerName"]): (
                str(row["actionSql"] or ""),
                row["conditionSql"],
            )
            for row in (actions.last.as_dicts() if actions.last else [])
        }
        definitions: list[EcaTriggerDef] = []
        for row in (result.last.as_dicts() if result.last else []):
            trigger = EcaTriggerDef(
                db_name=str(row["dbName"]),
                user_name=str(row["userName"]),
                trigger_name=str(row["triggerName"]),
                event_internal=str(row["eventName"]),
                action_sql="",
                coupling=Coupling.parse(str(row["coupling"]).strip()),
                context=Context.parse(str(row["context"]).strip()),
                priority=int(row["priority"] or 1),
            )
            action_sql, condition_sql = action_by_trigger.get(
                trigger.internal, ("", None))
            trigger.action_sql = action_sql
            trigger.condition_sql = (
                str(condition_sql) if condition_sql is not None else None)
            definitions.append(trigger)
        return definitions


def _is_transient_persistence_fault(exc: BaseException) -> bool:
    """Retry only faults injected at the persistence point itself, never
    a transient error that escaped a nested component (re-running that
    work could duplicate side effects)."""
    return (isinstance(exc, TransientFaultError)
            and exc.point == POINT_PERSISTENCE_EXECUTE)


def _column_ddl(name: str, type_name: str, length: int | None,
                nullable: bool) -> str:
    rendered = type_name if length is None else f"{type_name}({length})"
    null_clause = "null" if nullable else "not null"
    return f"{name} {rendered} {null_clause}"
