"""The Persistent Manager (paper Section 4, Figures 5-8, 17).

Persists every event and ECA trigger in system tables *inside the SQL
server itself*, using nothing but ordinary SQL — that is the paper's
point: the native DBMS provides the persistence.  On agent startup the
manager reads the tables back and the agent re-creates its runtime state
(Figure 8's recovery path).

Table layouts follow the paper's figures exactly; ``SysEcaTrigger`` gains
three trailing columns (``coupling``, ``context``, ``priority``) that the
paper's Figure 7 omits but recovery requires — a documented extension
(DESIGN.md §2).
"""

from __future__ import annotations


from repro.led.rules import Context, Coupling
from repro.sqlengine import SqlServer
from repro.sqlengine.types import sql_repr

from .model import CompositeEventDef, EcaTriggerDef, PrimitiveEventDef

#: (column name, type, length, nullable) — Figure 5.
SYS_PRIMITIVE_EVENT_LAYOUT = [
    ("dbName", "varchar", 30, True),
    ("userName", "varchar", 30, True),
    ("eventName", "varchar", 30, True),
    ("tableName", "varchar", 30, True),
    ("operation", "varchar", 20, True),
    ("timeStamp", "datetime", None, True),
    ("vNo", "int", None, True),
]

#: Figure 6.
SYS_COMPOSITE_EVENT_LAYOUT = [
    ("dbName", "varchar", 30, True),
    ("userName", "varchar", 30, True),
    ("eventName", "varchar", 30, True),
    ("eventDescribe", "text", None, True),
    ("timeStamp", "datetime", None, True),
    ("coupling", "char", 10, True),
    ("context", "char", 10, True),
    ("priority", "char", 10, True),
]

#: Figure 7 plus the three recovery columns (documented extension).
SYS_ECA_TRIGGER_LAYOUT = [
    ("dbName", "varchar", 30, True),
    ("userName", "varchar", 30, True),
    ("triggerName", "varchar", 30, True),
    ("triggerProc", "text", None, True),
    ("timeStamp", "datetime", None, True),
    ("eventName", "varchar", 60, True),
    ("coupling", "char", 10, True),
    ("context", "char", 12, True),
    ("priority", "int", None, True),
]

#: Figure 17.
SYS_CONTEXT_LAYOUT = [
    ("tableName", "varchar", 50, False),
    ("context", "varchar", 12, False),
    ("vNo", "int", None, False),
]

#: Which ECA trigger additionally stores the user's action text; needed to
#: regenerate procedures if a DBA drops one (extension table).
SYS_ACTION_LAYOUT = [
    ("triggerName", "varchar", 90, False),
    ("actionSql", "text", None, True),
    ("conditionSql", "text", None, True),
]

_SYSTEM_TABLES = {
    "SysPrimitiveEvent": SYS_PRIMITIVE_EVENT_LAYOUT,
    "SysCompositeEvent": SYS_COMPOSITE_EVENT_LAYOUT,
    "SysEcaTrigger": SYS_ECA_TRIGGER_LAYOUT,
    "sysContext": SYS_CONTEXT_LAYOUT,
    "SysEcaAction": SYS_ACTION_LAYOUT,
}


class PersistentManager:
    """Owns the agent's DBA connection and the ECA system tables.

    The paper runs this as a dedicated Open Server thread holding a
    high-privilege Client-Library connection; here it holds a dedicated
    DBA session on the engine.
    """

    #: owner of the system tables inside each database
    OWNER = "dbo"

    def __init__(self, server: SqlServer, dba_user: str = "sa"):
        self.server = server
        self.dba_user = dba_user
        self._sessions: dict[str, object] = {}

    # ------------------------------------------------------------------
    # plumbing

    def _session(self, database: str):
        session = self._sessions.get(database.lower())
        if session is None:
            session = self.server.create_session(self.OWNER, database)
            self._sessions[database.lower()] = session
        return session

    def execute(self, database: str, sql: str):
        """Run SQL on the manager's privileged connection."""
        return self.server.execute(sql, self._session(database))

    def system_prefix(self, database: str) -> str:
        """Qualified prefix for system tables, e.g. ``sentineldb.dbo``."""
        return f"{database}.{self.OWNER}"

    # ------------------------------------------------------------------
    # table lifecycle

    def ensure_system_tables(self, database: str) -> None:
        """Create any missing ECA system tables in a database."""
        db = self.server.catalog.get_database(database)
        for table_name, layout in _SYSTEM_TABLES.items():
            if db.get_table(self.OWNER, table_name) is not None:
                continue
            columns = ", ".join(
                _column_ddl(name, type_name, length, nullable)
                for name, type_name, length, nullable in layout
            )
            self.execute(database, f"create table {table_name} ({columns})")

    def has_system_tables(self, database: str) -> bool:
        db = self.server.catalog.get_database(database)
        return all(
            db.get_table(self.OWNER, table_name) is not None
            for table_name in _SYSTEM_TABLES
        )

    # ------------------------------------------------------------------
    # persisting definitions

    def persist_primitive(self, event: PrimitiveEventDef) -> None:
        self.execute(event.db_name, (
            "insert SysPrimitiveEvent values ("
            f"{sql_repr(event.db_name)}, {sql_repr(event.user_name)}, "
            f"{sql_repr(event.event_name)}, {sql_repr(event.table_name)}, "
            f"{sql_repr(event.operation)}, getdate(), 0)"
        ))

    def persist_composite(self, event: CompositeEventDef) -> None:
        self.execute(event.db_name, (
            "insert SysCompositeEvent values ("
            f"{sql_repr(event.db_name)}, {sql_repr(event.user_name)}, "
            f"{sql_repr(event.event_name)}, {sql_repr(event.event_describe)}, "
            f"getdate(), {sql_repr(event.coupling.value)}, "
            f"{sql_repr(event.context.value)}, "
            f"{sql_repr(str(event.priority))})"
        ))

    def persist_trigger(self, trigger: EcaTriggerDef) -> None:
        self.execute(trigger.db_name, (
            "insert SysEcaTrigger values ("
            f"{sql_repr(trigger.db_name)}, {sql_repr(trigger.user_name)}, "
            f"{sql_repr(trigger.trigger_name)}, {sql_repr(trigger.proc_name)}, "
            f"getdate(), {sql_repr(trigger.event_internal)}, "
            f"{sql_repr(trigger.coupling.value)}, "
            f"{sql_repr(trigger.context.value)}, {trigger.priority})"
        ))
        self.execute(trigger.db_name, (
            "insert SysEcaAction values ("
            f"{sql_repr(trigger.internal)}, {sql_repr(trigger.action_sql)}, "
            f"{sql_repr(trigger.condition_sql)})"
        ))

    # ------------------------------------------------------------------
    # removing definitions

    def delete_primitive(self, event: PrimitiveEventDef) -> None:
        self.execute(event.db_name, (
            "delete SysPrimitiveEvent "
            f"where dbName = {sql_repr(event.db_name)} "
            f"and userName = {sql_repr(event.user_name)} "
            f"and eventName = {sql_repr(event.event_name)}"
        ))

    def delete_composite(self, event: CompositeEventDef) -> None:
        self.execute(event.db_name, (
            "delete SysCompositeEvent "
            f"where dbName = {sql_repr(event.db_name)} "
            f"and userName = {sql_repr(event.user_name)} "
            f"and eventName = {sql_repr(event.event_name)}"
        ))

    def delete_trigger(self, trigger: EcaTriggerDef) -> None:
        self.execute(trigger.db_name, (
            "delete SysEcaTrigger "
            f"where dbName = {sql_repr(trigger.db_name)} "
            f"and userName = {sql_repr(trigger.user_name)} "
            f"and triggerName = {sql_repr(trigger.trigger_name)}"
        ))
        self.execute(trigger.db_name, (
            "delete SysEcaAction "
            f"where triggerName = {sql_repr(trigger.internal)}"
        ))

    # ------------------------------------------------------------------
    # queries

    def current_v_no(self, database: str, event_internal: str) -> int:
        """The latest occurrence number of a primitive event.

        Matching by the internal name requires splitting it, since the
        paper's Figure 5 stores short names per (db, user).
        """
        from .naming import split_internal

        db, user, obj = split_internal(event_internal)
        result = self.execute(database, (
            "select vNo from SysPrimitiveEvent "
            f"where dbName = {sql_repr(db)} and userName = {sql_repr(user)} "
            f"and eventName = {sql_repr(obj)}"
        ))
        last = result.last
        if last is None or not last.rows:
            return 0
        return int(last.rows[0][0] or 0)

    def load_primitives(self, database: str) -> list[PrimitiveEventDef]:
        """Rebuild primitive event definitions from ``SysPrimitiveEvent``.

        The monitored table's owner is re-resolved with the same
        preference order used at definition time (owner = defining user,
        falling back to ``dbo``).
        """
        result = self.execute(database, "select * from SysPrimitiveEvent")
        definitions: list[PrimitiveEventDef] = []
        db_obj = self.server.catalog.get_database(database)
        for row in (result.last.as_dicts() if result.last else []):
            user = str(row["userName"])
            table_name = str(row["tableName"])
            table = db_obj.find_table(table_name, user)
            table_owner = table.owner if table is not None else user
            definitions.append(PrimitiveEventDef(
                db_name=str(row["dbName"]),
                user_name=user,
                event_name=str(row["eventName"]),
                table_owner=table_owner,
                table_name=table_name,
                operation=str(row["operation"]),
            ))
        return definitions

    def load_composites(self, database: str) -> list[CompositeEventDef]:
        result = self.execute(database, "select * from SysCompositeEvent")
        definitions: list[CompositeEventDef] = []
        for row in (result.last.as_dicts() if result.last else []):
            definitions.append(CompositeEventDef(
                db_name=str(row["dbName"]),
                user_name=str(row["userName"]),
                event_name=str(row["eventName"]),
                event_describe=str(row["eventDescribe"]),
                coupling=Coupling.parse(str(row["coupling"]).strip()),
                context=Context.parse(str(row["context"]).strip()),
                priority=int(str(row["priority"]).strip() or "1"),
            ))
        return definitions

    def load_triggers(self, database: str) -> list[EcaTriggerDef]:
        result = self.execute(database, "select * from SysEcaTrigger")
        actions = self.execute(database, "select * from SysEcaAction")
        action_by_trigger = {
            str(row["triggerName"]): (
                str(row["actionSql"] or ""),
                row["conditionSql"],
            )
            for row in (actions.last.as_dicts() if actions.last else [])
        }
        definitions: list[EcaTriggerDef] = []
        for row in (result.last.as_dicts() if result.last else []):
            trigger = EcaTriggerDef(
                db_name=str(row["dbName"]),
                user_name=str(row["userName"]),
                trigger_name=str(row["triggerName"]),
                event_internal=str(row["eventName"]),
                action_sql="",
                coupling=Coupling.parse(str(row["coupling"]).strip()),
                context=Context.parse(str(row["context"]).strip()),
                priority=int(row["priority"] or 1),
            )
            action_sql, condition_sql = action_by_trigger.get(
                trigger.internal, ("", None))
            trigger.action_sql = action_sql
            trigger.condition_sql = (
                str(condition_sql) if condition_sql is not None else None)
            definitions.append(trigger)
        return definitions


def _column_ddl(name: str, type_name: str, length: int | None,
                nullable: bool) -> str:
    rendered = type_name if length is None else f"{type_name}({length})"
    null_clause = "null" if nullable else "not null"
    return f"{name} {rendered} {null_clause}"
