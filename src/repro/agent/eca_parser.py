"""Language Filter and ECA Parser (paper Figure 2, Sections 5.2-5.3).

The Language Filter classifies each client command: ECA commands (the
extended ``create trigger ... event ...`` syntax of Figures 9, 10 and 12,
plus ``drop trigger``/``drop event`` on agent-managed objects) are routed
to the ECA Parser; everything else passes through to the SQL server
untouched.

The ECA Parser produces an :class:`EcaCommand` — the structured form the
agent's code generator consumes.  Name expansion to internal form happens
in the agent, not here, so the parser is reusable and stateless.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.led.rules import Context, Coupling

from .errors import EcaSyntaxError

_CREATE_TRIGGER = re.compile(r"^\s*create\s+trigger\b", re.IGNORECASE)
_DROP_TRIGGER = re.compile(
    r"^\s*drop\s+trigger\s+([A-Za-z_#][\w.$#]*)\s*;?\s*$", re.IGNORECASE)
_DROP_EVENT = re.compile(
    r"^\s*drop\s+event\s+([A-Za-z_#][\w.$#]*)\s*;?\s*$", re.IGNORECASE)
_ALTER_TRIGGER = re.compile(
    r"^\s*alter\s+trigger\s+([A-Za-z_#][\w.$#]*)\s+"
    r"(enable|disable)\s*;?\s*$", re.IGNORECASE)
_AGENT_ADMIN = re.compile(
    r"^\s*(?:(?:show|reset|set|export)\s+agent\b|explain\s+trigger\b"
    r"|trace\s+next\b)",
    re.IGNORECASE)

_COUPLING_WORDS = {"IMMEDIATE", "DEFERRED", "DEFERED", "DETACHED"}
_CONTEXT_WORDS = {"RECENT", "CHRONICLE", "CONTINUOUS", "CUMULATIVE"}
_OPERATIONS = {"insert", "update", "delete"}

#: Command kinds produced by :func:`parse_eca_command`.
CREATE_PRIMITIVE = "create_primitive"
CREATE_ON_EVENT = "create_on_event"
CREATE_COMPOSITE = "create_composite"
DROP_TRIGGER = "drop_trigger"
DROP_EVENT = "drop_event"
ALTER_TRIGGER = "alter_trigger"


@dataclass
class EcaCommand:
    """Structured form of one ECA command.

    Names are as the user typed them (possibly qualified); the agent
    expands them to internal form (Section 5.1) during execution.
    """

    kind: str
    trigger_name: str | None = None
    table_name: str | None = None
    operation: str | None = None
    event_name: str | None = None
    snoop_text: str | None = None
    coupling: Coupling | None = None
    context: Context | None = None
    priority: int | None = None
    condition_sql: str | None = None   # the WHEN clause (the C of ECA)
    action_sql: str = ""
    enabled: bool | None = None        # for ALTER TRIGGER ENABLE/DISABLE


class LanguageFilter:
    """Classifies client commands (paper Figure 2's Language Filter)."""

    #: classification results
    ECA = "eca"
    SQL = "sql"
    MAYBE_DROP_TRIGGER = "maybe_drop_trigger"
    AGENT_ADMIN = "agent_admin"

    def classify(self, sql: str) -> str:
        """Decide where a command goes.

        ``create trigger`` text containing a top-level ``event`` keyword
        before ``as`` is an ECA command; a plain native trigger definition
        is ordinary SQL.  ``drop trigger`` cannot be classified without
        the agent's registry (the name may be a native trigger), so it is
        reported as :data:`MAYBE_DROP_TRIGGER` for the agent to resolve.
        ``show agent ...`` / ``reset agent ...`` / ``set agent ...`` /
        ``export agent ...`` / ``explain trigger ...`` are operator
        introspection commands answered by the agent itself (the server
        never sees them — Sybase's ``sp_monitor`` analogue).
        """
        if _AGENT_ADMIN.match(sql):
            return self.AGENT_ADMIN
        if _DROP_EVENT.match(sql):
            return self.ECA
        if _ALTER_TRIGGER.match(sql):
            return self.ECA
        if _DROP_TRIGGER.match(sql):
            return self.MAYBE_DROP_TRIGGER
        if _CREATE_TRIGGER.match(sql):
            header, _action = _split_on_as(sql)
            if header is None:
                # No AS clause: let the SQL parser report the error.
                return self.SQL
            # A WHEN condition is arbitrary SQL; strip it before scanning
            # the header for the `event` keyword.
            header, _condition = _split_on_keyword(header, "when")
            if _has_top_level_word(header, "event"):
                return self.ECA
        return self.SQL


def parse_eca_command(sql: str) -> EcaCommand:
    """Parse an ECA command into an :class:`EcaCommand`.

    Raises :class:`EcaSyntaxError` with a descriptive message when the
    text matches none of the three forms (Figures 9, 10, 12).
    """
    match = _DROP_EVENT.match(sql)
    if match:
        return EcaCommand(kind=DROP_EVENT, event_name=match.group(1))
    match = _ALTER_TRIGGER.match(sql)
    if match:
        return EcaCommand(
            kind=ALTER_TRIGGER,
            trigger_name=match.group(1),
            enabled=match.group(2).lower() == "enable",
        )
    match = _DROP_TRIGGER.match(sql)
    if match:
        return EcaCommand(kind=DROP_TRIGGER, trigger_name=match.group(1))
    if not _CREATE_TRIGGER.match(sql):
        raise EcaSyntaxError("not an ECA command")

    header, action = _split_on_as(sql)
    if header is None:
        raise EcaSyntaxError("missing AS <action> clause in trigger definition")
    if not action.strip():
        raise EcaSyntaxError("empty action body after AS")

    # The WHEN condition is arbitrary SQL, so it is split off as raw text
    # before the header is tokenized (same treatment as the action).
    header, condition_sql = _split_on_keyword(header, "when")
    if condition_sql is not None and not condition_sql.strip():
        raise EcaSyntaxError("empty condition after WHEN")
    if condition_sql is not None:
        condition_sql = condition_sql.strip()

    tokens = _tokenize_header(header)
    cursor = _Cursor(tokens, header)

    cursor.expect_word("create")
    cursor.expect_word("trigger")
    trigger_name = cursor.expect_name("trigger name")

    table_name = None
    operation = None
    if cursor.at_word("on"):
        cursor.advance()
        table_name = cursor.expect_name("table name")
        cursor.expect_word("for")
        operation = cursor.expect_name("operation").lower()
        if operation not in _OPERATIONS:
            raise EcaSyntaxError(
                f"operation must be insert, update or delete, "
                f"not {operation!r}"
            )

    cursor.expect_word("event")
    event_name = cursor.expect_name("event name")

    snoop_text = None
    if cursor.at_op("="):
        cursor.advance()
        snoop_text = cursor.capture_snoop()
        if not snoop_text.strip():
            raise EcaSyntaxError("empty event expression after '='")

    coupling, context, priority = _parse_modifiers(cursor)
    cursor.expect_end()

    if snoop_text is not None:
        if table_name is not None:
            raise EcaSyntaxError(
                "a composite event definition cannot have an ON <table> clause"
            )
        kind = CREATE_COMPOSITE
    elif table_name is not None:
        kind = CREATE_PRIMITIVE
    else:
        kind = CREATE_ON_EVENT

    return EcaCommand(
        kind=kind,
        trigger_name=trigger_name,
        table_name=table_name,
        operation=operation,
        event_name=event_name,
        snoop_text=snoop_text,
        coupling=coupling,
        context=context,
        priority=priority,
        condition_sql=condition_sql,
        action_sql=action.strip(),
    )


# ----------------------------------------------------------------------
# header scanning helpers


def _split_on_as(sql: str) -> tuple[str | None, str]:
    """Split at the first top-level standalone ``as`` keyword."""
    header, rest = _split_on_keyword(sql, "as")
    if rest is None:
        return None, ""
    return header, rest


def _split_on_keyword(sql: str, word: str) -> tuple[str, str | None]:
    """Split at the first top-level standalone occurrence of ``word``.

    Top-level means: not inside quotes, parentheses, or ``[time string]``
    brackets, so composite expressions and string literals are safe.
    Returns ``(before, after)``; ``after`` is None when absent.
    """
    depth = 0
    index = 0
    length = len(sql)
    lowered = sql.lower()
    word = word.lower()
    while index < length:
        char = sql[index]
        if char in "([":
            depth += 1
        elif char in ")]":
            depth = max(0, depth - 1)
        elif char in "'\"":
            quote = char
            index += 1
            while index < length and sql[index] != quote:
                index += 1
        elif depth == 0 and lowered.startswith(word, index):
            before_ok = index == 0 or not (sql[index - 1].isalnum() or sql[index - 1] in "_.@$#")
            after = index + len(word)
            after_ok = after >= length or not (sql[after].isalnum() or sql[after] in "_.@$#")
            if before_ok and after_ok:
                return sql[:index], sql[after:]
        index += 1
    return sql, None


def _has_top_level_word(text: str, word: str) -> bool:
    for kind, value, _start, _end in _tokenize_header(text):
        if kind == "WORD" and value.lower() == word:
            return True
    return False


_HEADER_TOKEN = re.compile(
    r"""
    (?P<time>\[[^\]]*\])            # [time string]
  | (?P<word>[A-Za-z_#][\w.$#:]*)   # names, possibly dotted/colon-qualified
  | (?P<number>\d+)
  | (?P<op>[=()^;|,*])
    """,
    re.VERBOSE,
)


def _tokenize_header(text: str) -> list[tuple[str, str, int, int]]:
    tokens: list[tuple[str, str, int, int]] = []
    index = 0
    length = len(text)
    while index < length:
        if text[index].isspace():
            index += 1
            continue
        match = _HEADER_TOKEN.match(text, index)
        if match is None:
            raise EcaSyntaxError(
                f"unexpected character {text[index]!r} in trigger header"
            )
        kind = str(match.lastgroup).upper()
        tokens.append((kind, match.group(0), match.start(), match.end()))
        index = match.end()
    return tokens


class _Cursor:
    def __init__(self, tokens: list[tuple[str, str, int, int]], text: str):
        self.tokens = tokens
        self.text = text
        self.pos = 0

    def _current(self) -> tuple[str, str, int, int] | None:
        if self.pos < len(self.tokens):
            return self.tokens[self.pos]
        return None

    def advance(self) -> tuple[str, str, int, int]:
        token = self._current()
        if token is None:
            raise EcaSyntaxError("unexpected end of trigger header")
        self.pos += 1
        return token

    def at_word(self, word: str) -> bool:
        token = self._current()
        return token is not None and token[0] == "WORD" and token[1].lower() == word

    def at_op(self, op: str) -> bool:
        token = self._current()
        return token is not None and token[0] == "OP" and token[1] == op

    def expect_word(self, word: str) -> None:
        if not self.at_word(word):
            token = self._current()
            found = token[1] if token else "end of header"
            raise EcaSyntaxError(f"expected {word.upper()}, found {found!r}")
        self.advance()

    def expect_name(self, what: str) -> str:
        token = self._current()
        if token is None or token[0] != "WORD":
            found = token[1] if token else "end of header"
            raise EcaSyntaxError(f"expected {what}, found {found!r}")
        self.advance()
        return token[1]

    def expect_end(self) -> None:
        token = self._current()
        if token is not None:
            raise EcaSyntaxError(
                f"unexpected {token[1]!r} at end of trigger header"
            )

    def capture_snoop(self) -> str:
        """Take tokens as raw text until a modifier keyword or the end.

        Modifier keywords (coupling/context) and bare integers (priority)
        terminate the expression only at parenthesis depth zero.
        """
        start = None
        end = None
        depth = 0
        while True:
            token = self._current()
            if token is None:
                break
            kind, value, t_start, t_end = token
            if depth == 0 and kind == "WORD" and (
                value.upper() in _COUPLING_WORDS or value.upper() in _CONTEXT_WORDS
            ):
                break
            if depth == 0 and kind == "NUMBER":
                break
            if kind == "OP" and value == "(":
                depth += 1
            elif kind == "OP" and value == ")":
                if depth == 0:
                    break
                depth -= 1
            if start is None:
                start = t_start
            end = t_end
            self.advance()
        if start is None:
            return ""
        return self.text[start:end]


def _parse_modifiers(cursor: _Cursor) -> tuple[Coupling | None, Context | None, int | None]:
    coupling: Coupling | None = None
    context: Context | None = None
    priority: int | None = None
    while True:
        token = cursor._current()
        if token is None:
            break
        kind, value, _s, _e = token
        upper = value.upper()
        if kind == "WORD" and upper in _COUPLING_WORDS:
            if coupling is not None:
                raise EcaSyntaxError("coupling mode specified twice")
            coupling = Coupling.parse(upper)
            cursor.advance()
            continue
        if kind == "WORD" and upper in _CONTEXT_WORDS:
            if context is not None:
                raise EcaSyntaxError("parameter context specified twice")
            context = Context.parse(upper)
            cursor.advance()
            continue
        if kind == "NUMBER":
            if priority is not None:
                raise EcaSyntaxError("priority specified twice")
            priority = int(value)
            if priority < 1:
                raise EcaSyntaxError("priority must be a positive integer")
            cursor.advance()
            continue
        break
    return coupling, context, priority
