"""SQL code generation (paper Figures 11 and 14).

Given event and trigger definitions, this module produces the SQL the
agent installs in the (unmodified) SQL server:

- per primitive event: snapshot tables (``<table>_inserted`` /
  ``<table>_deleted`` with the extra ``vNo`` column), the event's
  occurrence-number (``Version``) table, and rows in the system tables;
- per (table, operation): ONE native trigger that — for every primitive
  event registered on it — bumps ``vNo``, snapshots the transition rows
  tagged with ``vNo``, sends the ``syb_sendmsg`` notification, and runs
  any inline (primitive + IMMEDIATE) action procedures;
- per ECA trigger: an action procedure; for composite (or non-immediate)
  triggers the procedure begins with the Figure 14 context-processing
  joins that materialize ``<snapshot>_tmp`` tables from ``sysContext``.

Differences from the paper's listings are deliberate and documented in
DESIGN.md §2: the occurrence number is incremented *before* the snapshot
(Figure 11 tags the snapshot with the stale number), each event has its
own ``<event>_Version`` table, the notification carries ``vNo``, and the
Figure 14 join projects ``<snapshot>.*`` instead of a bare ``*`` (which
would also project the ``sysContext`` columns).
"""

from __future__ import annotations

import re

from repro.led.rules import Context

from .model import EcaTriggerDef, PrimitiveEventDef, TableOpRegistration

#: Name of the per-database context table (Figure 17).
SYS_CONTEXT = "sysContext"

#: Suffix for per-trigger parameter-context materialization tables.
TMP_SUFFIX = "_tmp"


def snapshot_table_sql(event: PrimitiveEventDef, direction: str,
                       source_table: str) -> str:
    """DDL for one snapshot table (Figure 11's 'create two tables').

    The ``vNo`` key column gets an index: every context-processing join
    and parameter lookup probes the snapshot by occurrence number, and
    the snapshot grows with every event occurrence.
    """
    snapshot = event.snapshot_table(direction)
    return (
        f"select * into {snapshot} from {source_table} where 1 = 2\n"
        f"go\n"
        f"alter table {snapshot} add vNo int null\n"
        f"go\n"
        f"create index ECA_vNo on {snapshot} (vNo)\n"
        f"go"
    )


def version_table_sql(event: PrimitiveEventDef) -> str:
    """DDL + seed row for the event's occurrence-number table."""
    version = event.version_table
    return (
        f"create table {version} (vNo int null)\n"
        f"go\n"
        f"insert {version} values (0)\n"
        f"go"
    )


def native_trigger_sql(registration: TableOpRegistration,
                       events: list[PrimitiveEventDef],
                       inline_procs: list[str],
                       system_db_prefix: str,
                       notify_host: str, notify_port: int) -> str:
    """The generated native trigger for one (table, operation).

    One block per primitive event (several named events may watch the
    same table and operation — something native triggers cannot express,
    Section 2.2), then ONE coalesced ``syb_sendmsg`` carrying every
    event's segment (``;``-separated), then the inline IMMEDIATE action
    procedures.  A single-event trigger sends the paper's exact Figure 11
    payload; coalescing only changes the wire format when several named
    events share one (table, operation) — and then one datagram replaces
    N, so the agent decodes, journals, and locks once per statement.
    """
    table = f"{registration.db_name}.{registration.table_owner}.{registration.table_name}"
    trigger_name = (
        f"{registration.db_name}.{registration.table_owner}."
        f"ECA_{registration.table_name}_{registration.operation}"
    )
    lines: list[str] = [
        f"create trigger {trigger_name}",
        f"on {table}",
        f"for {registration.operation}",
        "as",
        "declare @v int, @r int, @msg varchar(2048)",
    ]
    for position, event in enumerate(events):
        internal = event.internal
        version = event.version_table
        row_filter = (
            f'dbName = "{event.db_name}" and userName = "{event.user_name}" '
            f'and eventName = "{event.event_name}"'
        )
        lines.append(f"/* event {internal} */")
        lines.append(
            f"update {system_db_prefix}.SysPrimitiveEvent set vNo = vNo + 1 "
            f"where {row_filter}"
        )
        lines.append(f"delete {version}")
        lines.append(
            f"insert {version} select vNo from {system_db_prefix}."
            f"SysPrimitiveEvent where {row_filter}"
        )
        for direction in event.snapshot_directions:
            snapshot = event.snapshot_table(direction)
            lines.append(
                f"insert {snapshot} select {direction}.*, vNo "
                f"from {direction}, {version}"
            )
        lines.append(f"select @v = vNo from {version}")
        segment = (
            f'"{event.user_name} {event.table_name} {event.operation} '
            f'begin {internal} " + convert(varchar, @v)'
        )
        if position == 0:
            lines.append(f"select @msg = {segment}")
        else:
            lines.append(f'select @msg = @msg + ";" + {segment}')
    if events:
        lines.append(
            f'select @r = syb_sendmsg("{notify_host}", {notify_port}, '
            f"@msg) /* Notification */"
        )
    for proc in inline_procs:
        lines.append(f"/* action function */")
        lines.append(f"execute {proc}")
    return "\n".join(lines)


def drop_native_trigger_sql(registration: TableOpRegistration) -> str:
    """DDL removing the generated native trigger."""
    return (
        f"drop trigger {registration.db_name}.{registration.table_owner}."
        f"ECA_{registration.table_name}_{registration.operation}"
    )


def tmp_table_sql(snapshot_table: str) -> str:
    """DDL for one ``<snapshot>_tmp`` parameter table (Figure 14)."""
    tmp = snapshot_table + TMP_SUFFIX
    return (
        f"select * into {tmp} from {snapshot_table} where 1 = 2\n"
        f"go"
    )


def context_processing_sql(snapshot_tables: list[str], context: Context,
                           system_db_prefix: str) -> list[str]:
    """The Figure 14 '/* context processing */' block.

    For each snapshot table the event may draw parameters from, refresh
    its ``_tmp`` table with the rows whose ``vNo`` matches the current
    ``sysContext`` entries for this parameter context.

    ``sysContext`` is listed first in the FROM clause so the (growing)
    snapshot table is the inner, index-probed side of the join: with the
    outer ``sysContext`` row bound, ``<snapshot>.vNo = sysContext.vNo``
    becomes an indexed probe instead of a scan.  The projection stays
    ``<snapshot>.*`` so the output is unchanged.
    """
    statements: list[str] = []
    for snapshot in snapshot_tables:
        tmp = snapshot + TMP_SUFFIX
        statements.append(f"delete {tmp}")
        statements.append(
            f"insert {tmp}\n"
            f"select {snapshot}.*\n"
            f"from {system_db_prefix}.{SYS_CONTEXT}, {snapshot}\n"
            f'where {system_db_prefix}.{SYS_CONTEXT}.context = "{context.value}"\n'
            f'  and {system_db_prefix}.{SYS_CONTEXT}.tableName = "{snapshot}"\n'
            f"  and {snapshot}.vNo = {system_db_prefix}.{SYS_CONTEXT}.vNo"
        )
    return statements


def action_proc_sql(trigger: EcaTriggerDef, rewritten_action: str,
                    snapshot_tables: list[str],
                    system_db_prefix: str,
                    with_context_processing: bool,
                    rewritten_condition: str | None = None) -> str:
    """CREATE PROCEDURE for an ECA trigger's action (Figures 11/14).

    A WHEN clause becomes a condition gate between the context
    processing and the action: the parameters the contexts collected are
    "passed to conditions and actions" (paper Section 6's functionality
    list) because both see the same ``_tmp``/pseudo tables.
    """
    lines = [f"create procedure {trigger.proc_name} as"]
    if with_context_processing and snapshot_tables:
        lines.append("/* context processing */")
        lines.extend(context_processing_sql(
            snapshot_tables, trigger.context, system_db_prefix))
    if rewritten_condition:
        lines.append("/* condition */")
        lines.append("declare @__cond int")
        lines.append(
            "select @__cond = case when "
            f"({rewritten_condition}) then 1 else 0 end")
        lines.append("if @__cond = 1")
        lines.append("begin")
        lines.append("/* action function */")
        lines.append(rewritten_action)
        lines.append("end")
        return "\n".join(lines)
    lines.append("/* action function */")
    lines.append(rewritten_action)
    return "\n".join(lines)


_TRANSITION_REF = re.compile(
    r"\b([A-Za-z_#][\w$#]*(?:\.[A-Za-z_#][\w$#]*){0,2})"
    r"\.(inserted|deleted)\b",
    re.IGNORECASE,
)


def rewrite_action_sql(action_sql: str, resolve_table, mode: str) -> str:
    """Rewrite ``<table>.inserted`` / ``<table>.deleted`` references.

    ``resolve_table(name)`` maps a (possibly qualified) table name as the
    user wrote it to the internal snapshot-table base name
    (``db.user.<table>``) or returns None to leave the text unchanged.

    ``mode``:
      - ``"pseudo"``  — the action runs inside the native trigger, so the
        references become the engine's ``inserted``/``deleted``
        transition pseudo-tables (primitive + IMMEDIATE).
      - ``"tmp"``     — the action runs later, from the agent, so the
        references become the ``_tmp`` parameter tables populated by the
        context-processing block.
    """
    if mode not in ("pseudo", "tmp"):
        raise ValueError(f"unknown rewrite mode {mode!r}")

    def replace(match: re.Match) -> str:
        table_text, direction = match.group(1), match.group(2).lower()
        base = resolve_table(table_text)
        if base is None:
            return match.group(0)
        if mode == "pseudo":
            return direction
        return f"{base}_{direction}{TMP_SUFFIX}"

    return _TRANSITION_REF.sub(replace, action_sql)


def sys_context_refresh_sql(
        entries: list[tuple[str, int]],
        all_tables: list[str],
        context: Context,
        system_db_prefix: str) -> tuple[list[str], dict[str, object]]:
    """Statements + parameters refreshing ``sysContext`` for one firing.

    ``entries`` are (snapshot table, vNo) pairs from the triggering
    occurrence's constituents; ``all_tables`` is every snapshot table the
    trigger's procedure will join, so stale rows are cleared even for
    constituents absent from this particular occurrence (e.g. the
    untriggered side of an OR).

    The occurrence numbers — the only values that change from firing to
    firing — are emitted as ``@eca_vno<i>`` parameter slots with their
    values in the returned dict (fed to ``SqlServer.execute(params=)``).
    The statement *text* therefore repeats across firings of the same
    trigger, so the plan cache serves rule-origin SQL instead of
    re-parsing a fresh literal-bearing batch every occurrence.
    """
    statements: list[str] = []
    params: dict[str, object] = {}
    for snapshot in all_tables:
        statements.append(
            f"delete {system_db_prefix}.{SYS_CONTEXT} "
            f'where tableName = "{snapshot}" and context = "{context.value}"'
        )
    for position, (snapshot, v_no) in enumerate(entries):
        slot = f"@eca_vno{position}"
        params[slot] = int(v_no)
        statements.append(
            f"insert {system_db_prefix}.{SYS_CONTEXT} "
            f'values ("{snapshot}", "{context.value}", {slot})'
        )
    return statements, params
