"""Internal object naming (paper Section 5.1).

User-assigned names are expanded to system-wide internal names of the form
``DatabaseName.userName.objectName`` so that names are unique across users
and databases — "consistent with the way Sybase expands user-defined
object names".  A user only ever sees and types the short form; the agent
expands on the way in and may strip on the way out.
"""

from __future__ import annotations

from .errors import EcaSyntaxError

SEPARATOR = "."


def expand_name(name: str, database: str, user: str) -> str:
    """Expand a 1- to 3-part user name to the internal 3-part form.

    >>> expand_name("addStk", "sentineldb", "sharma")
    'sentineldb.sharma.addStk'
    >>> expand_name("sharma.addStk", "sentineldb", "anyone")
    'sentineldb.sharma.addStk'
    >>> expand_name("otherdb.bob.ev", "sentineldb", "sharma")
    'otherdb.bob.ev'
    """
    parts = name.split(SEPARATOR)
    if any(not part for part in parts):
        raise EcaSyntaxError(f"malformed object name {name!r}")
    if len(parts) == 1:
        return internal_name(database, user, parts[0])
    if len(parts) == 2:
        return internal_name(database, parts[0], parts[1])
    if len(parts) == 3:
        return name
    raise EcaSyntaxError(
        f"object name {name!r} has more than three parts"
    )


def internal_name(database: str, user: str, obj: str) -> str:
    """Compose the canonical internal name."""
    return f"{database}{SEPARATOR}{user}{SEPARATOR}{obj}"


def split_internal(name: str) -> tuple[str, str, str]:
    """Split an internal name back into (database, user, object)."""
    parts = name.split(SEPARATOR)
    if len(parts) != 3 or any(not part for part in parts):
        raise EcaSyntaxError(f"{name!r} is not an internal 3-part name")
    return parts[0], parts[1], parts[2]


def short_name(name: str) -> str:
    """The user-facing object part of an internal name."""
    return name.split(SEPARATOR)[-1]


def expand_snoop_expression(expr_text: str, database: str, user: str) -> str:
    """Expand every event name inside a Snoop expression to internal form.

    Used before persisting composite definitions so that the stored
    ``eventDescribe`` is unambiguous (paper Example 2 shows the stored
    string with internal names).
    """
    from repro.snoop import parse_event_expression
    from repro.snoop.ast import (
        And,
        Aperiodic,
        AperiodicStar,
        EventExpr,
        EventName,
        Not,
        Or,
        Periodic,
        PeriodicStar,
        Plus,
        Seq,
    )

    def rewrite(node: EventExpr) -> EventExpr:
        if isinstance(node, EventName):
            return EventName(expand_name(node.name, database, user))
        if isinstance(node, Or):
            return Or(rewrite(node.left), rewrite(node.right))
        if isinstance(node, And):
            return And(rewrite(node.left), rewrite(node.right))
        if isinstance(node, Seq):
            return Seq(rewrite(node.left), rewrite(node.right))
        if isinstance(node, Not):
            return Not(rewrite(node.initiator), rewrite(node.event),
                       rewrite(node.terminator))
        if isinstance(node, Aperiodic):
            return Aperiodic(rewrite(node.initiator), rewrite(node.event),
                             rewrite(node.terminator))
        if isinstance(node, AperiodicStar):
            return AperiodicStar(rewrite(node.initiator), rewrite(node.event),
                                 rewrite(node.terminator))
        if isinstance(node, Periodic):
            return Periodic(rewrite(node.initiator), node.period,
                            rewrite(node.terminator), node.parameter)
        if isinstance(node, PeriodicStar):
            return PeriodicStar(rewrite(node.initiator), node.period,
                                rewrite(node.terminator), node.parameter)
        if isinstance(node, Plus):
            return Plus(rewrite(node.event), node.delta)
        raise EcaSyntaxError(f"unsupported Snoop node {type(node).__name__}")

    return rewrite(parse_event_expression(expr_text)).describe()
