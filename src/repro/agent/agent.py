"""The ECA Agent: assembly of the seven modules of paper Figure 2.

``EcaAgent`` wires together the Gateway Open Server, Language Filter, ECA
Parser, Local Event Detector, Persistent Manager, Event Notifier, and
Action Handler around an unmodified :class:`~repro.sqlengine.SqlServer`,
and implements the two control flows of Figures 3 (create ECA rules) and
4 (event notification and action).
"""

from __future__ import annotations

import re
import threading

from repro.faults import (
    FaultInjector,
    FaultPlan,
    POINT_NOTIFIER_DECODE,
    RetryPolicy,
    TransientFaultError,
)
from repro.led import LocalEventDetector, ManualClock
from repro.led.clock import VirtualClock
from repro.led.rules import Context, Coupling
from repro.snoop import parse_event_expression
from repro.snoop.ast import referenced_events
from repro.sqlengine import ClientConnection, SqlServer
from repro.sqlengine.results import BatchResult
from repro.sqlengine.server import Session

from . import codegen
from .action_handler import ActionHandler, TriggerRuntime
from .eca_parser import (
    ALTER_TRIGGER,
    CREATE_COMPOSITE,
    CREATE_ON_EVENT,
    CREATE_PRIMITIVE,
    DROP_EVENT,
    DROP_TRIGGER,
    EcaCommand,
    LanguageFilter,
    parse_eca_command,
)
from .errors import AgentError, NameError_, RecoveryError
from .model import (
    CompositeEventDef,
    EcaTriggerDef,
    PrimitiveEventDef,
    TableOpRegistration,
)
from .naming import expand_name, expand_snoop_expression, split_internal
from .notifier import (
    EventNotifier,
    NotificationChannel,
    SynchronousChannel,
    ThreadedChannel,
    UdpChannel,
)
from .persistence import PersistentManager
from .messages import attach_trace_context, split_trace_context
from .trace import (
    FIG3_GRAPH_CREATED,
    FIG3_PERSISTED,
    FIG3_SQL_INSTALLED,
    FIG4_NOTIFIED,
    SPAN_ECA_CODEGEN,
    SPAN_ECA_PARSE,
    PipelineTrace,
    TraceContext,
)

_DROP_TRIGGER_NAME = re.compile(
    r"^\s*drop\s+trigger\s+([A-Za-z_#][\w.$#]*)", re.IGNORECASE)


def _is_transient_notification_fault(exc: BaseException) -> bool:
    """Retry predicate for notification delivery (decode faults only)."""
    return (isinstance(exc, TransientFaultError)
            and exc.point == POINT_NOTIFIER_DECODE)


class EcaAgent:
    """A Virtual Active SQL Server (paper Section 3).

    Args:
        server: the passive SQL server being mediated (never modified).
        channel: notification transport — ``"sync"`` (default,
            deterministic in-process), ``"threaded"`` (in-process queue
            with a listener thread), ``"udp"`` (real localhost UDP as in
            the paper), or any :class:`NotificationChannel` instance.
        clock: LED clock for temporal operators (default: ManualClock).
        notify_host / notify_port: the address baked into the generated
            triggers' ``syb_sendmsg`` calls (paper Figure 11 hard-codes
            ``128.227.205.215:10006``).
        swallow_action_errors: record failing rule actions instead of
            propagating them into the triggering client command.
        faults: a :class:`~repro.faults.FaultPlan` or
            :class:`~repro.faults.FaultInjector` arming the chaos
            harness; None (the default) disables injection entirely.
        retry: the :class:`~repro.faults.RetryPolicy` applied to
            persistence writes and notification delivery; defaults to 3
            fast attempts with no backoff.  Pass
            ``RetryPolicy(max_attempts=1)`` to fail fast.
        journal: a :class:`~repro.obs.ProvenanceJournal` recording the
            causal lineage of every firing; defaults to a disabled
            journal an operator can turn on with
            ``set agent provenance on``.
        exporter: an optional :class:`~repro.obs.TelemetryExporter`; when
            attached, ``export agent telemetry`` snapshots metrics,
            spans, and provenance into its JSONL file.
        accounting: an optional :class:`~repro.obs.OpAccounting`; by
            default a fresh always-on plane (plain int adds per hook)
            charging every command to its session and every action to
            its rule — ``show agent top [rules|sessions]``.  Pass
            ``OpAccounting(enabled=False)`` to reduce each hook to one
            branch.
        flightrec: an optional :class:`~repro.obs.FlightRecorder`; by
            default an unarmed recorder (``set agent slowlog <ms>`` arms
            it, ``show agent slow`` dumps it).
        health_rules: override the watchdog's rule set (default:
            :data:`~repro.obs.DEFAULT_HEALTH_RULES`) behind
            ``show agent health``.
        workers: gateway worker-pool size; 0 (default) runs every
            command inline on the client's thread.  Resizable at runtime
            with ``set agent workers <N>``.
    """

    def __init__(self, server: SqlServer,
                 channel: NotificationChannel | str = "sync",
                 clock: VirtualClock | None = None,
                 notify_host: str = "127.0.0.1",
                 notify_port: int = 10006,
                 swallow_action_errors: bool = False,
                 metrics: "MetricsRegistry | None" = None,
                 faults: "FaultInjector | FaultPlan | None" = None,
                 retry: RetryPolicy | None = None,
                 journal: "ProvenanceJournal | None" = None,
                 exporter: "TelemetryExporter | None" = None,
                 accounting: "OpAccounting | None" = None,
                 flightrec: "FlightRecorder | None" = None,
                 health_rules=None,
                 workers: int = 0):
        from repro.obs import (
            FlightRecorder,
            HealthEvaluator,
            MetricsRegistry,
            OpAccounting,
            ProvenanceJournal,
        )

        self.server = server
        #: per-agent observability sinks, all off by default: the whole
        #: layer costs one branch per hook until an operator turns it on
        #: (``set agent stats|trace|provenance on``).
        self.metrics = metrics if metrics is not None else MetricsRegistry(
            enabled=False)
        self.trace = PipelineTrace()
        self.journal = journal if journal is not None else ProvenanceJournal(
            enabled=False)
        # Journal records carry the trace id of the command they belong
        # to (read from the trace's active context at append time).
        self.journal.bind_trace(self.trace)
        self.exporter = exporter
        #: the health plane: resource accounting (always-on), the slow-op
        #: flight recorder (armed via ``set agent slowlog``), and the
        #: watchdog evaluating declarative health rules on demand.
        self.accounting = accounting if accounting is not None else (
            OpAccounting())
        self.flightrec = flightrec if flightrec is not None else (
            FlightRecorder())
        self.health_evaluator = HealthEvaluator(health_rules)
        #: the fault-injection harness (disabled unless a plan was armed)
        #: and the retry policy shared by the resilient call sites.
        if isinstance(faults, FaultPlan):
            faults = FaultInjector(faults)
        self.faults = faults if faults is not None else FaultInjector()
        self.faults.attach_metrics(self.metrics)
        self.retry_policy = retry if retry is not None else RetryPolicy()
        self.persistent_manager = PersistentManager(
            server, faults=self.faults, retry=self.retry_policy,
            metrics=self.metrics)
        self._m_eca_commands = self.metrics.counter(
            "agent_eca_commands_total",
            "ECA commands handled, by command kind", ("kind",))
        server.attach_metrics(self.metrics)
        server.attach_accounting(self.accounting)
        self.action_handler = ActionHandler(self)
        self.led = LocalEventDetector(
            clock=clock or ManualClock(),
            detached_dispatcher=self.action_handler.dispatch_detached,
            swallow_action_errors=swallow_action_errors,
        )
        self.led.attach_observability(self.metrics, self.trace, self.journal)
        self.led.attach_accounting(self.accounting)
        self.led.faults = self.faults
        self.language_filter = LanguageFilter()
        from .admin import AgentAdmin
        from .gateway import GatewayOpenServer

        self.gateway = GatewayOpenServer(self, workers=workers)
        self.admin = AgentAdmin(self)
        #: serializes ECA DDL (create/drop/alter of events and triggers):
        #: the registries and codegen are multi-step and concurrent
        #: sessions must not interleave them.
        self._eca_lock = threading.RLock()
        self.notify_host = notify_host
        self.notify_port = notify_port

        # registries (all keyed by lowercase internal name)
        self.primitive_events: dict[str, PrimitiveEventDef] = {}
        self.composite_events: dict[str, CompositeEventDef] = {}
        self.eca_triggers: dict[str, EcaTriggerDef] = {}
        self.trigger_runtime: dict[str, TriggerRuntime] = {}
        self.table_ops: dict[tuple[str, str, str, str], TableOpRegistration] = {}
        #: inline (native-trigger) procs: key -> list of (priority, seq, proc, trigger internal)
        self._inline: dict[tuple[str, str, str, str], list[tuple[int, int, str, str]]] = {}
        self._creation_seq = 0
        #: during recovery, native-trigger regeneration is batched: the
        #: dirty keys accumulate here and regenerate once at the end.
        self._regen_suspended: set[tuple[str, str, str, str]] | None = None

        # notification plumbing
        self.notifier = EventNotifier(
            self.led,
            event_lookup=self._primitive_lookup,
            v_no_lookup=self._v_no_lookup,
            metrics=self.metrics,
            faults=self.faults,
            journal=self.journal,
        )
        self.channel = self._make_channel(channel)

        def deliver(payload: str) -> None:
            # A datagram may carry the sending command's trace context as
            # a ``tc=`` trailer (see send below); strip it and re-activate
            # that context on the delivering thread so the notification
            # span — and everything the LED does under it — parents into
            # the originating command's trace even across an async
            # channel's listener thread.
            payload, token = split_trace_context(payload)
            ctx = TraceContext.decode(token) if token is not None else None
            with self.trace.activate(ctx):
                if self.trace.enabled:
                    with self.trace.span(FIG4_NOTIFIED, payload):
                        self.notifier.on_payload(payload)
                else:
                    self.notifier.on_payload(payload)

        def send(host: str, port: int, payload: str) -> None:
            # ``syb_sendmsg`` sink: while tracing, serialize the sending
            # thread's trace context into the datagram so causality
            # survives the transport (one branch + no-op otherwise).
            if self.trace.enabled:
                ctx = self.trace.current_context()
                if ctx is not None and ctx.trace_id is not None:
                    payload = attach_trace_context(payload, ctx.encode())
            self.channel.send(host, port, payload)

        def receive(payload: str) -> None:
            # Delivery is retried only for faults injected at the decode
            # point itself: decoding is idempotent, whereas replaying a
            # failure from deeper in the pipeline (LED, action) could
            # raise the same occurrence twice.
            self.retry_policy.call(
                deliver, payload, operation="notification",
                metrics=self.metrics,
                retry_if=_is_transient_notification_fault)

        self.channel.attach(receive)
        self.channel.start()
        server.set_datagram_sink(send)
        server.add_transaction_end_listener(self._on_transaction_end)

        self.recover()

    # ------------------------------------------------------------------
    # construction helpers

    def _make_channel(self, channel) -> NotificationChannel:
        if isinstance(channel, NotificationChannel):
            return channel
        if channel == "sync":
            return SynchronousChannel()
        if channel == "threaded":
            return ThreadedChannel()
        if channel == "udp":
            return UdpChannel(port=self.notify_port)
        raise AgentError(f"unknown notification channel {channel!r}")

    def close(self) -> None:
        """Detach from the server and stop background machinery."""
        self.gateway.stop_workers()
        self.action_handler.join_detached()
        self.channel.stop()
        self.server.set_datagram_sink(None)
        self.server.attach_metrics(None)
        self.server.attach_accounting(None)

    # ------------------------------------------------------------------
    # public client surface

    def connect(self, user: str = "dbo",
                database: str | None = None) -> ClientConnection:
        """Open a client connection *through the agent* — the client sees
        a Virtual Active SQL Server."""
        return ClientConnection(self.gateway, user, database)

    def drain(self, timeout: float = 5.0) -> bool:
        """Wait until asynchronous notifications have been processed."""
        return self.channel.drain(timeout)

    def advance_time(self, seconds: float):
        """Advance the LED clock (temporal operators fire as due)."""
        return self.led.advance_time(seconds)

    def flush_deferred(self):
        """Run queued DEFERRED actions now."""
        return self.led.flush_deferred()

    def start_detection_log(self) -> list:
        """Begin recording the LED's detection history (primitive raises
        and composite detections in propagation order) for differential
        comparison; returns the live log list."""
        return self.led.start_detection_log()

    def stop_detection_log(self) -> list:
        """Stop recording and return the captured detection history."""
        return self.led.stop_detection_log()

    def firing_history(self) -> list:
        """The LED's rule-firing history (a list of
        :class:`~repro.led.detector.RuleFiring`), in execution order."""
        return list(self.led.history)

    def export_telemetry(self, label: str = "") -> int:
        """Snapshot metrics + spans + provenance + slow ops + accounting
        totals into the attached :class:`~repro.obs.TelemetryExporter`'s
        JSONL file; returns the number of lines written.  Raises
        :class:`AgentError` when no exporter is attached."""
        if self.exporter is None:
            raise AgentError("no telemetry exporter attached to this agent")
        return self.exporter.export_snapshot(
            metrics=self.metrics, trace=self.trace, journal=self.journal,
            flightrec=self.flightrec, accounting=self.accounting,
            label=label)

    def health(self) -> "HealthReport":
        """Evaluate the watchdog rules against the agent's live
        telemetry; returns a deterministic
        :class:`~repro.obs.HealthReport` (``show agent health``)."""
        from repro.obs import collect_sample

        return self.health_evaluator.evaluate(collect_sample(self))

    # ------------------------------------------------------------------
    # lookups used by the notifier / action handler

    def _primitive_lookup(self, internal: str) -> PrimitiveEventDef | None:
        return self.primitive_events.get(internal.lower())

    def _v_no_lookup(self, internal: str) -> int:
        db, _user, _obj = split_internal(internal)
        return self.persistent_manager.current_v_no(db, internal)

    def runtime_for_rule(self, rule_name: str) -> TriggerRuntime | None:
        """The runtime wiring of an ECA trigger by LED rule name (None
        when the rule is not agent-managed)."""
        return self.trigger_runtime.get(rule_name.lower())

    def event_exists(self, internal: str) -> bool:
        """Whether an internal name denotes a known primitive or
        composite event."""
        key = internal.lower()
        return key in self.primitive_events or key in self.composite_events

    # ------------------------------------------------------------------
    # command routing

    def owns_drop_trigger(self, sql: str, session: Session) -> bool:
        """Whether a ``drop trigger`` names an agent-managed trigger."""
        match = _DROP_TRIGGER_NAME.match(sql)
        if not match:
            return False
        internal = expand_name(match.group(1), session.database, session.user)
        return internal.lower() in self.eca_triggers

    def handle_eca(self, sql: str, session: Session) -> BatchResult:
        """Figure 3 steps 3-7: parse, generate, persist, wire.

        Failure semantics: a CREATE command that fails part-way (for
        example an injected persistence fault that outlives its retries)
        is *compensated* — every registry entry, LED node/rule, and
        persisted row the command added is rolled back before the error
        propagates, so the agent's rule base stays consistent and the
        failure is visible only to the issuing client.  A
        :class:`~repro.faults.SimulatedCrash` is never compensated: it
        models process death, and consistency is then restored by
        :meth:`recover` on the next start.
        """
        if self.trace.enabled:
            with self.trace.span(SPAN_ECA_PARSE):
                command = parse_eca_command(sql)
        else:
            command = parse_eca_command(sql)
        if self.metrics.enabled:
            self._m_eca_commands.labels(command.kind).inc()
        result = BatchResult()
        creates = command.kind in (
            CREATE_PRIMITIVE, CREATE_COMPOSITE, CREATE_ON_EVENT)
        with self._eca_lock:
            snapshot = self._state_snapshot() if creates else None
            with self.trace.span(SPAN_ECA_CODEGEN, command.kind):
                try:
                    self._dispatch_eca(command, session, result)
                except Exception:
                    if snapshot is not None:
                        self._rollback_to(snapshot)
                    raise
        return result

    def _dispatch_eca(self, command: EcaCommand, session: Session,
                      result: BatchResult) -> None:
        if command.kind == CREATE_PRIMITIVE:
            event = self._create_primitive_event(command, session, result)
            self._create_trigger(command, session, event.internal, result)
        elif command.kind == CREATE_COMPOSITE:
            event = self._create_composite_event(command, session, result)
            self._create_trigger(command, session, event.internal, result)
        elif command.kind == CREATE_ON_EVENT:
            event_internal = expand_name(
                str(command.event_name), session.database, session.user)
            if not self.event_exists(event_internal):
                raise NameError_(
                    f"event '{command.event_name}' does not exist")
            self._create_trigger(command, session, event_internal, result)
        elif command.kind == DROP_TRIGGER:
            self._drop_trigger(command, session, result)
        elif command.kind == DROP_EVENT:
            self._drop_event(command, session, result)
        elif command.kind == ALTER_TRIGGER:
            self._alter_trigger(command, session, result)
        else:  # pragma: no cover - parser guarantees the kinds above
            raise AgentError(f"unhandled ECA command kind {command.kind!r}")

    # ------------------------------------------------------------------
    # compensation (graceful degradation for failed CREATE commands)

    def _state_snapshot(self) -> dict:
        """Capture the agent's registries before a CREATE command."""
        return {
            "primitive": dict(self.primitive_events),
            "composite": dict(self.composite_events),
            "triggers": dict(self.eca_triggers),
            "runtime": dict(self.trigger_runtime),
            "table_ops": {
                key: list(reg.event_internals)
                for key, reg in self.table_ops.items()
            },
            "inline": {key: list(val) for key, val in self._inline.items()},
            "led_events": set(self.led.events),
            "led_rules": set(self.led.rules),
        }

    def _rollback_to(self, snapshot: dict) -> None:
        """Best-effort undo of everything a failed CREATE added.

        Each step is individually guarded: compensation must make
        maximal progress even when the same fault that broke the command
        also breaks some undo statements (leftover server-side snapshot
        tables are harmless — re-creation is idempotent).
        """
        pm = self.persistent_manager

        def attempt(fn, *args) -> None:
            try:
                fn(*args)
            except Exception:
                pass

        # 1. LED rules added by the command, then events (reverse
        #    insertion order drops composites before their constituents).
        for name in list(self.led.rules):
            if name not in snapshot["led_rules"]:
                attempt(self.led.drop_rule, name)
        for name in reversed(list(self.led.events)):
            if name not in snapshot["led_events"]:
                attempt(self.led.drop_event, name)

        # 2. Persisted rows and generated procedures for new objects.
        for key, trigger in self.eca_triggers.items():
            if key in snapshot["triggers"]:
                continue
            attempt(pm.delete_trigger, trigger)
            attempt(pm.execute, trigger.db_name,
                    f"drop procedure {trigger.proc_name}")
        for key, event in self.composite_events.items():
            if key not in snapshot["composite"]:
                attempt(pm.delete_composite, event)
        for key, event in self.primitive_events.items():
            if key not in snapshot["primitive"]:
                attempt(pm.delete_primitive, event)

        # 3. Restore registries and regenerate affected native triggers.
        self.primitive_events = snapshot["primitive"]
        self.composite_events = snapshot["composite"]
        self.eca_triggers = snapshot["triggers"]
        self.trigger_runtime = snapshot["runtime"]
        self._inline = snapshot["inline"]
        dirty: set[tuple[str, str, str, str]] = set()
        for key, reg in list(self.table_ops.items()):
            names = snapshot["table_ops"].get(key)
            restored = list(names) if names is not None else []
            if reg.event_internals != restored:
                reg.event_internals = restored
                dirty.add(key)
        for key in dirty:
            attempt(self._regenerate_native_trigger, key)

    def after_client_command(self, session: Session) -> None:
        """Statement-end hook: outside a transaction each command is its
        own transaction, so DEFERRED actions queued by it run now."""
        if not session.tx_log.active and self.led.deferred_count:
            self.led.flush_deferred()

    def _on_transaction_end(self, session: Session, committed: bool) -> None:
        if committed:
            self.led.flush_deferred()
        else:
            self.led.discard_deferred()

    # ------------------------------------------------------------------
    # creating events

    def _create_primitive_event(self, command: EcaCommand, session: Session,
                                result: BatchResult) -> PrimitiveEventDef:
        internal = expand_name(
            str(command.event_name), session.database, session.user)
        if self.event_exists(internal):
            raise NameError_(f"event '{command.event_name}' already exists")
        db_name, user_name, event_name = split_internal(internal)

        table = self._resolve_monitored_table(
            str(command.table_name), db_name, user_name)
        event = PrimitiveEventDef(
            db_name=db_name,
            user_name=user_name,
            event_name=event_name,
            table_owner=table.owner,
            table_name=table.name,
            operation=str(command.operation),
        )
        self._install_primitive(event, persist=True)
        result.messages.append(
            f"Primitive event {internal} created on "
            f"{table.owner}.{table.name} for {event.operation}."
        )
        return event

    def _resolve_monitored_table(self, table_text: str, db_name: str,
                                 user_name: str):
        parts = table_text.split(".")
        database = self.server.catalog.get_database(
            parts[0] if len(parts) == 3 else db_name)
        if len(parts) == 1:
            table = database.find_table(parts[0], user_name)
        else:
            table = database.get_table(parts[-2], parts[-1])
        if table is None:
            raise NameError_(f"table '{table_text}' does not exist")
        return table

    def _install_primitive(self, event: PrimitiveEventDef,
                           persist: bool) -> None:
        """Create server-side objects (idempotently), register, persist."""
        pm = self.persistent_manager
        pm.ensure_system_tables(event.db_name)
        database = self.server.catalog.get_database(event.db_name)
        source = f"{event.db_name}.{event.table_owner}.{event.table_name}"
        for direction in event.snapshot_directions:
            snapshot = event.snapshot_table(direction)
            _db, owner, name = split_internal(snapshot)
            if database.get_table(owner, name) is None:
                pm.execute(event.db_name,
                           codegen.snapshot_table_sql(event, direction, source))
        _db, owner, name = split_internal(event.version_table)
        if database.get_table(owner, name) is None:
            pm.execute(event.db_name, codegen.version_table_sql(event))

        self.primitive_events[event.internal.lower()] = event
        self.led.define_primitive(event.internal)
        self.trace.emit(FIG3_GRAPH_CREATED, event.internal)
        key = self._table_op_key(event)
        registration = self.table_ops.get(key)
        if registration is None:
            registration = TableOpRegistration(
                db_name=event.db_name,
                table_owner=event.table_owner,
                table_name=event.table_name,
                operation=event.operation,
            )
            self.table_ops[key] = registration
        registration.event_internals.append(event.internal)
        self._regenerate_native_trigger(key)
        self.trace.emit(FIG3_SQL_INSTALLED, event.native_trigger_name)
        if persist:
            pm.persist_primitive(event)
            self.trace.emit(FIG3_PERSISTED, event.internal)

    @staticmethod
    def _table_op_key(event: PrimitiveEventDef) -> tuple[str, str, str, str]:
        return (
            event.db_name.lower(),
            event.table_owner.lower(),
            event.table_name.lower(),
            event.operation,
        )

    def _create_composite_event(self, command: EcaCommand, session: Session,
                                result: BatchResult) -> CompositeEventDef:
        internal = expand_name(
            str(command.event_name), session.database, session.user)
        if self.event_exists(internal):
            raise NameError_(f"event '{command.event_name}' already exists")
        db_name, user_name, event_name = split_internal(internal)
        describe = expand_snoop_expression(
            str(command.snoop_text), session.database, session.user)
        for name in referenced_events(parse_event_expression(describe)):
            if not self.event_exists(name):
                raise NameError_(
                    f"constituent event '{name}' does not exist")
        event = CompositeEventDef(
            db_name=db_name,
            user_name=user_name,
            event_name=event_name,
            event_describe=describe,
            coupling=command.coupling or Coupling.IMMEDIATE,
            context=command.context or Context.RECENT,
            priority=command.priority or 1,
        )
        self._install_composite(event, persist=True)
        result.messages.append(
            f"Composite event {internal} = {describe} created.")
        return event

    def _install_composite(self, event: CompositeEventDef,
                           persist: bool) -> None:
        pm = self.persistent_manager
        pm.ensure_system_tables(event.db_name)
        self.led.define_composite(event.internal, event.event_describe)
        self.composite_events[event.internal.lower()] = event
        if persist:
            pm.persist_composite(event)

    # ------------------------------------------------------------------
    # creating triggers (rules)

    def _create_trigger(self, command: EcaCommand, session: Session,
                        event_internal: str, result: BatchResult) -> EcaTriggerDef:
        trigger_internal = expand_name(
            str(command.trigger_name), session.database, session.user)
        if trigger_internal.lower() in self.eca_triggers:
            raise NameError_(
                f"trigger '{command.trigger_name}' already exists")
        db_name, user_name, trigger_name = split_internal(trigger_internal)

        composite = self.composite_events.get(event_internal.lower())
        primitive = self.primitive_events.get(event_internal.lower())
        defaults = composite  # composite definitions carry rule defaults
        coupling = command.coupling or (
            defaults.coupling if defaults else Coupling.IMMEDIATE)
        context = command.context or (
            defaults.context if defaults else Context.RECENT)
        priority = command.priority or (
            defaults.priority if defaults else 1)

        trigger = EcaTriggerDef(
            db_name=db_name,
            user_name=user_name,
            trigger_name=trigger_name,
            event_internal=event_internal,
            action_sql=command.action_sql,
            coupling=coupling,
            context=context,
            priority=priority,
            condition_sql=command.condition_sql,
        )
        self._install_trigger(trigger, persist=True)
        result.messages.append(
            f"ECA trigger {trigger_internal} created on event "
            f"{event_internal} ({coupling.value}, {context.value}, "
            f"priority {priority})."
        )
        return trigger

    def _install_trigger(self, trigger: EcaTriggerDef, persist: bool) -> None:
        pm = self.persistent_manager
        primitive = self.primitive_events.get(trigger.event_internal.lower())
        inline = (
            primitive is not None
            and trigger.coupling is Coupling.IMMEDIATE
        )
        involved = self._constituent_primitives(trigger.event_internal)
        snapshot_tables = self._snapshot_tables_for(involved)

        def resolve_table(text: str) -> str | None:
            short = text.split(".")[-1].lower()
            for event in involved:
                if event.table_name.lower() == short:
                    return f"{event.db_name}.{event.user_name}.{event.table_name}"
            return None

        mode = "pseudo" if inline else "tmp"
        rewritten = codegen.rewrite_action_sql(
            trigger.action_sql, resolve_table, mode)
        rewritten_condition = None
        if trigger.condition_sql:
            rewritten_condition = codegen.rewrite_action_sql(
                trigger.condition_sql, resolve_table, mode)

        if not inline:
            # Ensure the parameter (_tmp) tables exist — in the snapshot's
            # own database (a composite may span databases).
            for snapshot in snapshot_tables:
                tmp = snapshot + codegen.TMP_SUFFIX
                snap_db, owner, name = split_internal(tmp)
                database = self.server.catalog.get_database(snap_db)
                if database.get_table(owner, name) is None:
                    pm.execute(snap_db, codegen.tmp_table_sql(snapshot))

        # Idempotent against recovery: the procedure persisted in the
        # server's catalog, so only create it if it is missing.
        database = self.server.catalog.get_database(trigger.db_name)
        _db, proc_owner, proc_name = split_internal(trigger.proc_name)
        if database.get_procedure(proc_owner, proc_name) is None:
            proc_sql = codegen.action_proc_sql(
                trigger, rewritten, snapshot_tables,
                pm.system_prefix(trigger.db_name),
                with_context_processing=not inline,
                rewritten_condition=rewritten_condition,
            )
            pm.execute(trigger.db_name, proc_sql)

        self.trace.emit(FIG3_SQL_INSTALLED, trigger.proc_name)
        runtime = TriggerRuntime(
            definition=trigger,
            snapshot_tables=snapshot_tables,
            uses_context=not inline,
            inline=inline,
        )
        self.eca_triggers[trigger.internal.lower()] = trigger
        self.trigger_runtime[trigger.rule_name.lower()] = runtime

        if inline:
            assert primitive is not None
            key = self._table_op_key(primitive)
            self._creation_seq += 1
            self._inline.setdefault(key, []).append(
                (trigger.priority, self._creation_seq,
                 trigger.proc_name, trigger.internal))
            self._regenerate_native_trigger(key)
        else:
            self.led.add_rule(
                trigger.rule_name,
                trigger.event_internal,
                action=self.action_handler.make_action(runtime),
                context=trigger.context,
                coupling=trigger.coupling,
                priority=trigger.priority,
            )
        if persist:
            pm.persist_trigger(trigger)
            self.trace.emit(FIG3_PERSISTED, trigger.internal)

    def _constituent_primitives(self, event_internal: str) -> list[PrimitiveEventDef]:
        """Transitively collect the primitive events under an event."""
        out: list[PrimitiveEventDef] = []
        seen: set[str] = set()

        def visit(name: str) -> None:
            key = name.lower()
            if key in seen:
                return
            seen.add(key)
            primitive = self.primitive_events.get(key)
            if primitive is not None:
                out.append(primitive)
                return
            composite = self.composite_events.get(key)
            if composite is not None:
                expr = parse_event_expression(composite.event_describe)
                for child in referenced_events(expr):
                    visit(child)

        visit(event_internal)
        return out

    @staticmethod
    def _snapshot_tables_for(events: list[PrimitiveEventDef]) -> list[str]:
        tables: list[str] = []
        for event in events:
            for direction in event.snapshot_directions:
                snapshot = event.snapshot_table(direction)
                if snapshot not in tables:
                    tables.append(snapshot)
        return tables

    # ------------------------------------------------------------------
    # native trigger regeneration

    def _regenerate_native_trigger(self, key: tuple[str, str, str, str]) -> None:
        if self._regen_suspended is not None:
            self._regen_suspended.add(key)
            return
        registration = self.table_ops.get(key)
        if registration is None:
            return
        pm = self.persistent_manager
        if not registration.event_internals:
            pm.execute(registration.db_name,
                       codegen.drop_native_trigger_sql(registration))
            del self.table_ops[key]
            self._inline.pop(key, None)
            return
        events = [
            self.primitive_events[name.lower()]
            for name in registration.event_internals
        ]
        inline = sorted(
            self._inline.get(key, []),
            key=lambda item: (-item[0], item[1]),
        )
        registration.inline_proc_names = [
            proc for _priority, _seq, proc, trigger_internal in inline
            if self.trigger_runtime.get(
                trigger_internal.lower(),
            ) is None or self.trigger_runtime[trigger_internal.lower()].enabled
        ]
        sql = codegen.native_trigger_sql(
            registration, events, registration.inline_proc_names,
            pm.system_prefix(registration.db_name),
            self.notify_host, self.notify_port,
        )
        pm.execute(registration.db_name, sql)

    def _alter_trigger(self, command: EcaCommand, session: Session,
                       result: BatchResult) -> None:
        """``ALTER TRIGGER <name> ENABLE|DISABLE`` (agent extension)."""
        internal = expand_name(
            str(command.trigger_name), session.database, session.user)
        trigger = self.eca_triggers.get(internal.lower())
        if trigger is None:
            raise NameError_(
                f"ECA trigger '{command.trigger_name}' does not exist")
        runtime = self.trigger_runtime[trigger.rule_name.lower()]
        runtime.enabled = bool(command.enabled)
        if runtime.inline:
            primitive = self.primitive_events[trigger.event_internal.lower()]
            self._regenerate_native_trigger(self._table_op_key(primitive))
        else:
            self.led.rules[trigger.rule_name].enabled = runtime.enabled
        state = "enabled" if runtime.enabled else "disabled"
        result.messages.append(f"ECA trigger {internal} {state}.")

    # ------------------------------------------------------------------
    # dropping

    def _drop_trigger(self, command: EcaCommand, session: Session,
                      result: BatchResult) -> None:
        internal = expand_name(
            str(command.trigger_name), session.database, session.user)
        trigger = self.eca_triggers.get(internal.lower())
        if trigger is None:
            raise NameError_(
                f"ECA trigger '{command.trigger_name}' does not exist")
        runtime = self.trigger_runtime.pop(trigger.rule_name.lower())
        del self.eca_triggers[internal.lower()]
        if runtime.inline:
            primitive = self.primitive_events[trigger.event_internal.lower()]
            key = self._table_op_key(primitive)
            self._inline[key] = [
                item for item in self._inline.get(key, [])
                if item[3].lower() != internal.lower()
            ]
            self._regenerate_native_trigger(key)
        else:
            self.led.drop_rule(trigger.rule_name)
        pm = self.persistent_manager
        pm.execute(trigger.db_name, f"drop procedure {trigger.proc_name}")
        pm.delete_trigger(trigger)
        result.messages.append(f"ECA trigger {internal} dropped.")

    def _drop_event(self, command: EcaCommand, session: Session,
                    result: BatchResult) -> None:
        internal = expand_name(
            str(command.event_name), session.database, session.user)
        key = internal.lower()
        dependents = [
            trigger.internal for trigger in self.eca_triggers.values()
            if trigger.event_internal.lower() == key
        ]
        if dependents:
            raise NameError_(
                f"event '{command.event_name}' still has triggers: "
                f"{', '.join(sorted(dependents))}"
            )
        node = self.led.events.get(internal)
        if node is not None and node.parents:
            raise NameError_(
                f"event '{command.event_name}' is used by other composite "
                "events")

        primitive = self.primitive_events.get(key)
        composite = self.composite_events.get(key)
        pm = self.persistent_manager
        if primitive is not None:
            table_key = self._table_op_key(primitive)
            registration = self.table_ops.get(table_key)
            if registration is not None:
                registration.event_internals = [
                    name for name in registration.event_internals
                    if name.lower() != key
                ]
                self._regenerate_native_trigger(table_key)
            pm.execute(primitive.db_name,
                       f"drop table {primitive.version_table}")
            self._drop_unused_snapshots(primitive)
            del self.primitive_events[key]
            self.led.drop_event(internal)
            pm.delete_primitive(primitive)
        elif composite is not None:
            del self.composite_events[key]
            self.led.drop_event(internal)
            pm.delete_composite(composite)
        else:
            raise NameError_(f"event '{command.event_name}' does not exist")
        result.messages.append(f"Event {internal} dropped.")

    def _drop_unused_snapshots(self, event: PrimitiveEventDef) -> None:
        """Drop snapshot (and _tmp) tables no other event still needs."""
        pm = self.persistent_manager
        database = self.server.catalog.get_database(event.db_name)
        for direction in event.snapshot_directions:
            snapshot = event.snapshot_table(direction)
            still_used = any(
                other.internal != event.internal
                and direction in other.snapshot_directions
                and other.snapshot_table(direction) == snapshot
                for other in self.primitive_events.values()
            )
            if still_used:
                continue
            _db, owner, name = split_internal(snapshot)
            if database.get_table(owner, name) is not None:
                pm.execute(event.db_name, f"drop table {snapshot}")
            tmp = snapshot + codegen.TMP_SUFFIX
            _db, owner, name = split_internal(tmp)
            if database.get_table(owner, name) is not None:
                pm.execute(event.db_name, f"drop table {tmp}")

    # ------------------------------------------------------------------
    # recovery (Figure 8)

    def recover(self) -> dict[str, int]:
        """Restore events and rules from the system tables of every
        database that has them; returns counts per category.

        Hardened against torn writes: before loading, each database's
        trigger tables are swept by
        :meth:`~repro.agent.persistence.PersistentManager.repair_orphans`,
        which removes rows left by a crash between the two inserts of
        ``persist_trigger`` (or the two deletes of ``delete_trigger``).
        After recovery every rule therefore either fully exists — it is
        in the registries, the LED, and both system tables — or fully
        does not.  Idempotent: calling it again on a live agent recovers
        nothing and repairs nothing (the ``repaired`` count reports the
        sweep's work).
        """
        counts = {"primitive": 0, "composite": 0, "trigger": 0,
                  "repaired": 0}
        pm = self.persistent_manager
        # Batch native-trigger regeneration: the generated triggers
        # persisted in the server, so one refresh per (table, op) at the
        # end suffices (instead of one per recovered rule).
        self._regen_suspended = set()
        try:
            for database in list(self.server.catalog.databases.values()):
                if not pm.has_system_tables(database.name):
                    continue
                counts["repaired"] += pm.repair_orphans(database.name)
                for event in pm.load_primitives(database.name):
                    if event.internal.lower() in self.primitive_events:
                        continue
                    self._recover_primitive(event)
                    counts["primitive"] += 1
                pending = [
                    event for event in pm.load_composites(database.name)
                    if event.internal.lower() not in self.composite_events
                ]
                counts["composite"] += self._recover_composites(pending)
                for trigger in pm.load_triggers(database.name):
                    if trigger.internal.lower() in self.eca_triggers:
                        continue
                    self._install_trigger(trigger, persist=False)
                    counts["trigger"] += 1
        finally:
            dirty = self._regen_suspended
            self._regen_suspended = None
            for key in dirty:
                self._regenerate_native_trigger(key)
        return counts

    def _recover_primitive(self, event: PrimitiveEventDef) -> None:
        """Re-register a primitive event without re-creating server
        objects (they persisted in the server's catalog)."""
        self.primitive_events[event.internal.lower()] = event
        self.led.define_primitive(event.internal)
        key = self._table_op_key(event)
        registration = self.table_ops.get(key)
        if registration is None:
            registration = TableOpRegistration(
                db_name=event.db_name,
                table_owner=event.table_owner,
                table_name=event.table_name,
                operation=event.operation,
            )
            self.table_ops[key] = registration
        registration.event_internals.append(event.internal)

    def _recover_composites(self, pending: list[CompositeEventDef]) -> int:
        """Define composites in dependency order (a composite may
        reference another composite)."""
        recovered = 0
        remaining = list(pending)
        while remaining:
            progress = False
            still: list[CompositeEventDef] = []
            for event in remaining:
                expr = parse_event_expression(event.event_describe)
                if all(self.event_exists(name)
                       for name in referenced_events(expr)):
                    self._install_composite(event, persist=False)
                    recovered += 1
                    progress = True
                else:
                    still.append(event)
            if not progress:
                names = ", ".join(event.internal for event in still)
                raise RecoveryError(
                    f"cannot recover composite events (missing "
                    f"constituents): {names}")
            remaining = still
        return recovered
