"""Runtime definitions the agent maintains for events and ECA triggers.

These mirror the rows of the system tables (Figures 5-7) plus the derived
information the agent needs at runtime (snapshot table names, generated
native trigger names, the rewritten action SQL).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.led.rules import Context, Coupling

from .naming import internal_name, split_internal


@dataclass
class PrimitiveEventDef:
    """A named primitive event: a (table, operation) pair (Figure 5)."""

    db_name: str
    user_name: str
    event_name: str          # short name as the user typed it
    table_owner: str         # owner of the monitored table
    table_name: str          # monitored table (short name)
    operation: str           # insert | update | delete

    @property
    def internal(self) -> str:
        """System-wide internal name, e.g. ``sentineldb.sharma.addStk``."""
        return internal_name(self.db_name, self.user_name, self.event_name)

    @property
    def snapshot_direction(self) -> str:
        """Which transition table this operation snapshots."""
        return "deleted" if self.operation == "delete" else "inserted"

    def snapshot_table(self, direction: str | None = None) -> str:
        """Internal name of the snapshot table rows are copied into.

        Updates snapshot both directions; inserts only ``inserted``;
        deletes only ``deleted``.
        """
        chosen = direction or self.snapshot_direction
        return internal_name(
            self.db_name, self.user_name, f"{self.table_name}_{chosen}")

    @property
    def snapshot_directions(self) -> tuple[str, ...]:
        if self.operation == "update":
            return ("deleted", "inserted")
        if self.operation == "delete":
            return ("deleted",)
        return ("inserted",)

    @property
    def version_table(self) -> str:
        """Internal name of this event's occurrence-number table.

        The paper uses a single ``Version`` table; we give each event its
        own so that several events on one table cannot clobber each
        other's occurrence number (documented deviation, DESIGN.md §2).
        """
        return internal_name(
            self.db_name, self.user_name, f"{self.event_name}_Version")

    @property
    def native_trigger_name(self) -> str:
        """Name of the generated native trigger for this (table, op).

        One native trigger serves every primitive event on the same table
        and operation, since the engine allows only one (Section 2.2).
        """
        return f"ECA_{self.table_name}_{self.operation}"


@dataclass
class CompositeEventDef:
    """A named composite event over a Snoop expression (Figure 6)."""

    db_name: str
    user_name: str
    event_name: str
    event_describe: str      # Snoop expression with internal names
    coupling: Coupling = Coupling.IMMEDIATE
    context: Context = Context.RECENT
    priority: int = 1

    @property
    def internal(self) -> str:
        return internal_name(self.db_name, self.user_name, self.event_name)


@dataclass
class EcaTriggerDef:
    """One ECA trigger (rule) on a primitive or composite event (Figure 7).

    ``action_sql`` is the user's SQL as typed; ``proc_name`` is the
    generated stored procedure holding the rewritten action.
    """

    db_name: str
    user_name: str
    trigger_name: str
    event_internal: str      # internal name of the event it fires on
    action_sql: str
    coupling: Coupling = Coupling.IMMEDIATE
    context: Context = Context.RECENT
    priority: int = 1
    #: optional WHEN clause — the C of ECA, evaluated inside the generated
    #: procedure with the same parameter bindings as the action
    condition_sql: str | None = None

    @property
    def internal(self) -> str:
        return internal_name(self.db_name, self.user_name, self.trigger_name)

    @property
    def proc_name(self) -> str:
        """Internal name of the generated action procedure, e.g.
        ``sentineldb.sharma.t_addStk__Proc`` (paper Example 1)."""
        return internal_name(
            self.db_name, self.user_name, f"{self.trigger_name}__Proc")

    @property
    def rule_name(self) -> str:
        """Name under which the rule is registered in the LED."""
        return self.internal


def event_key(internal: str) -> tuple[str, str, str]:
    """Normalize an internal name to a case-insensitive lookup key."""
    db, user, obj = split_internal(internal)
    return db.lower(), user.lower(), obj.lower()


@dataclass
class TableOpRegistration:
    """Bookkeeping for one (database, table, operation): which primitive
    events watch it, so the native trigger can be (re)generated."""

    db_name: str
    table_owner: str
    table_name: str
    operation: str
    event_internals: list[str] = field(default_factory=list)
    #: ECA triggers executed inline in the native trigger (primitive
    #: events with IMMEDIATE coupling), in creation order.
    inline_proc_names: list[str] = field(default_factory=list)
