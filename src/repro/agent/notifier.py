"""The Event Notifier and its notification channels (paper Figure 15).

The generated native triggers call ``syb_sendmsg`` inside the SQL server;
the server's datagram sink hands the payload to a *notification channel*,
which delivers it to the :class:`EventNotifier`.  The notifier decodes the
message and raises the primitive event in the LED.

Three channels are provided:

- :class:`SynchronousChannel` — in-process, synchronous delivery.  The
  default: deterministic, and it makes IMMEDIATE coupling genuinely
  immediate (the action runs inside the triggering statement, as in the
  paper's single-address-space Open Server).
- :class:`ThreadedChannel` — in-process queue drained by a worker thread;
  models the asynchrony of a datagram network without sockets.
- :class:`UdpChannel` — a real localhost UDP socket pair, byte-for-byte
  the paper's transport (``syb_sendmsg`` -> UDP -> Notification Listener).
"""

from __future__ import annotations

import queue
import socket
import threading
import time
from typing import Callable

from repro.faults import Directive, POINT_NOTIFIER_DECODE
from repro.obs.provenance import KIND_NOTIFICATION

from .errors import NotificationError
from .messages import Notification

#: A receiver consumes one decoded-ready payload string.
Receiver = Callable[[str], None]


class NotificationChannel:
    """Base class: transport from ``syb_sendmsg`` to the Event Notifier."""

    def __init__(self):
        self._receiver: Receiver | None = None
        self.sent_count = 0
        self.processed_count = 0

    def attach(self, receiver: Receiver) -> None:
        """Register the notifier's callback."""
        self._receiver = receiver

    def start(self) -> None:
        """Begin delivering (no-op for synchronous channels)."""

    def stop(self) -> None:
        """Stop delivering and release resources."""

    def send(self, host: str, port: int, payload: str) -> None:
        """Accept one datagram from the server's sink."""
        raise NotImplementedError

    def drain(self, timeout: float = 5.0) -> bool:
        """Wait until every sent payload has been processed."""
        deadline = time.monotonic() + timeout
        while self.processed_count < self.sent_count:
            if time.monotonic() > deadline:
                return False
            time.sleep(0.001)
        return True

    def _deliver(self, payload: str) -> None:
        if self._receiver is None:
            raise NotificationError("no receiver attached to the channel")
        try:
            self._receiver(payload)
        finally:
            self.processed_count += 1


class SynchronousChannel(NotificationChannel):
    """Deliver each payload immediately on the sending thread."""

    def send(self, host: str, port: int, payload: str) -> None:
        self.sent_count += 1
        self._deliver(payload)


class ThreadedChannel(NotificationChannel):
    """Queue payloads; a daemon worker delivers them asynchronously."""

    def __init__(self):
        super().__init__()
        self._queue: queue.Queue[str | None] = queue.Queue()
        self._worker: threading.Thread | None = None

    def start(self) -> None:
        if self._worker is not None:
            return
        self._worker = threading.Thread(
            target=self._run, name="eca-notifier", daemon=True)
        self._worker.start()

    def stop(self) -> None:
        if self._worker is None:
            return
        self._queue.put(None)
        self._worker.join(timeout=5.0)
        self._worker = None

    def send(self, host: str, port: int, payload: str) -> None:
        self.sent_count += 1
        self._queue.put(payload)

    def _run(self) -> None:
        while True:
            payload = self._queue.get()
            if payload is None:
                break
            try:
                self._deliver(payload)
            except Exception:
                # A bad notification must not kill the listener thread;
                # the error is observable via processed_count/last_error.
                self.last_error = payload


class UdpChannel(NotificationChannel):
    """A real UDP socket channel bound to ``127.0.0.1:port``.

    ``send`` transmits a datagram with an ordinary UDP socket — exactly
    what Sybase's ``syb_sendmsg`` does — and a listener thread (the
    paper's Notification Listener) receives and delivers it.
    """

    def __init__(self, port: int = 0, host: str = "127.0.0.1"):
        super().__init__()
        self.host = host
        self._listener: threading.Thread | None = None
        self._socket: socket.socket | None = None
        self._send_socket: socket.socket | None = None
        self._requested_port = port
        self.port = port

    def start(self) -> None:
        if self._listener is not None:
            return
        self._socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._socket.bind((self.host, self._requested_port))
        self.port = self._socket.getsockname()[1]
        self._socket.settimeout(0.2)
        self._send_socket = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
        self._stopping = False
        self._listener = threading.Thread(
            target=self._listen, name="eca-udp-listener", daemon=True)
        self._listener.start()

    def stop(self) -> None:
        if self._listener is None:
            return
        self._stopping = True
        self._listener.join(timeout=5.0)
        self._listener = None
        if self._socket is not None:
            self._socket.close()
            self._socket = None
        if self._send_socket is not None:
            self._send_socket.close()
            self._send_socket = None

    def send(self, host: str, port: int, payload: str) -> None:
        if self._send_socket is None:
            raise NotificationError("UDP channel is not started")
        self.sent_count += 1
        self._send_socket.sendto(
            payload.encode("utf-8"), (host or self.host, port or self.port))

    def _listen(self) -> None:
        assert self._socket is not None
        while not self._stopping:
            try:
                data, _addr = self._socket.recvfrom(4096)
            except socket.timeout:
                continue
            except OSError:
                break
            try:
                self._deliver(data.decode("utf-8"))
            except Exception:
                self.last_error = data


class EventNotifier:
    """Decodes notifications and raises primitive events in the LED
    (the Notifier half of paper Figure 15).

    Args:
        led: the local event detector to raise events into.
        event_lookup: maps an internal event name to its
            :class:`~repro.agent.model.PrimitiveEventDef` (or None).
        v_no_lookup: fallback used when a notification lacks the
            occurrence number: reads the current ``vNo`` from
            ``SysPrimitiveEvent`` via the Persistent Manager.
        metrics: optional :class:`~repro.obs.MetricsRegistry`; while
            enabled, decode-and-raise latency and outcomes are recorded
            (``agent_notification_seconds`` / ``agent_notifications_total``).
        faults: optional :class:`~repro.faults.FaultInjector` consulted
            at the ``notifier.decode`` point before decoding; a DROP
            directive silently discards the notification (counted in
            :attr:`dropped`).
        journal: optional :class:`~repro.obs.ProvenanceJournal`; while
            enabled, each payload is journaled as a ``notification``
            record that becomes the causal parent of the raise (and
            everything downstream of it).
    """

    def __init__(self, led, event_lookup, v_no_lookup=None, metrics=None,
                 faults=None, journal=None):
        self.led = led
        self.event_lookup = event_lookup
        self.v_no_lookup = v_no_lookup
        self.received: int = 0
        self.rejected: int = 0
        #: notifications discarded by an injected DROP fault
        self.dropped: int = 0
        #: coalesced payloads (>1 event per datagram) and the events in them
        self.coalesced_payloads: int = 0
        self.coalesced_events: int = 0
        self.faults = faults
        self.metrics = metrics
        self.journal = journal
        if metrics is not None:
            self._m_notifications = metrics.counter(
                "agent_notifications_total",
                "Notifications processed by the Event Notifier",
                ("status",))
            self._m_notification_seconds = metrics.histogram(
                "agent_notification_seconds",
                "Decode-and-raise latency per notification (seconds)")
            self._m_batch_events = metrics.histogram(
                "agent_notification_batch_events",
                "Primitive events carried per notification payload")
        else:
            self._m_notifications = None
            self._m_notification_seconds = None
            self._m_batch_events = None

    def on_payload(self, payload: str) -> None:
        """Channel callback: decode and raise.

        Failure semantics: an injected transient decode fault raises
        :class:`~repro.faults.TransientFaultError` (the agent's delivery
        wrapper retries it); a DROP fault models a lost datagram — the
        payload is discarded, counted in :attr:`dropped`, and the LED
        never sees the occurrence.
        """
        faults = self.faults
        if faults is not None and faults.enabled:
            if faults.fire(POINT_NOTIFIER_DECODE,
                           payload) is Directive.DROP:
                self.dropped += 1
                return
        journal = self.journal
        journaled = journal is not None and journal.enabled
        if journaled:
            # The 5th token of the (first) segment is the internal event
            # name (see Notification.encode); malformed payloads are
            # journaled too.  One record parents every raise the payload
            # carries, so a coalesced datagram has one causal root.
            parts = payload.split(";", 1)[0].split()
            record = journal.append(
                KIND_NOTIFICATION,
                parts[4] if len(parts) >= 5 else "malformed",
                detail=payload)
            journal.push(record.seq)
        try:
            metrics = self.metrics
            if metrics is None or not metrics.enabled:
                self._raise_all(Notification.decode_batch(payload))
                return
            start = time.perf_counter()
            try:
                notifications = Notification.decode_batch(payload)
                self._raise_all(notifications)
            except Exception:
                self._m_notifications.labels("error").inc()
                raise
            self._m_notifications.labels("ok").inc()
            self._m_notification_seconds.observe(time.perf_counter() - start)
            self._m_batch_events.observe(len(notifications))
        finally:
            if journaled:
                journal.pop()

    def on_notification(self, notification: Notification) -> None:
        """Raise one already-decoded notification (non-batched entry)."""
        self._raise_all([notification])

    def _raise_all(self, notifications: list[Notification]) -> None:
        """Resolve every notification, then raise them as one LED batch.

        Resolution happens before any raise so an unknown event rejects
        the whole payload without a partial batch.  Single-notification
        payloads (the overwhelmingly common case) take the plain
        :meth:`~repro.led.detector.LocalEventDetector.raise_event` path;
        coalesced payloads amortize the LED's locking and firing-scope
        bookkeeping through ``raise_events``.
        """
        batch = [
            (notification.event_internal, self._params_for(notification))
            for notification in notifications
        ]
        self.received += len(batch)
        if len(batch) == 1:
            name, params = batch[0]
            self.led.raise_event(name, params)
            return
        self.coalesced_payloads += 1
        self.coalesced_events += len(batch)
        self.led.raise_events(batch)

    def _params_for(self, notification: Notification) -> dict[str, object]:
        definition = self.event_lookup(notification.event_internal)
        if definition is None:
            self.rejected += 1
            raise NotificationError(
                f"notification for unknown event "
                f"{notification.event_internal!r}"
            )
        v_no = notification.v_no
        if v_no is None and self.v_no_lookup is not None:
            v_no = self.v_no_lookup(notification.event_internal)
        return {
            "user": notification.user,
            "table": notification.table,
            "operation": notification.operation,
            "vNo": v_no,
            "snapshot_tables": {
                direction: definition.snapshot_table(direction)
                for direction in definition.snapshot_directions
            },
        }
