"""Pipeline tracing: observable Figure 3 / Figure 4 control flows.

The implementation lives in :mod:`repro.obs.tracing`; this module keeps
the agent-side import surface (step constants, :class:`PipelineTrace`,
:class:`TraceRecord`) stable.  The trace generalized from flat step
records into timed parent/child *spans* — one client command now yields a
tree: gateway receipt → language-filter classification → ECA parse →
codegen → LED detection → condition check → action execution → result
routing — while the Figure 3/4 step names are unchanged.

Tracing is off by default and costs one branch per step when off.
"""

from __future__ import annotations

from repro.obs.tracing import (
    FIG3_CLASSIFIED_ECA,
    FIG3_COMMAND_RECEIVED,
    FIG3_GRAPH_CREATED,
    FIG3_PASSED_THROUGH,
    FIG3_PERSISTED,
    FIG3_SQL_INSTALLED,
    FIG4_ACTION_RUN,
    FIG4_DETECTED,
    FIG4_NOTIFIED,
    FIG4_RESULTS_ROUTED,
    SPAN_CLASSIFY,
    SPAN_ECA_CODEGEN,
    SPAN_ECA_PARSE,
    SPAN_LED_OP_PREFIX,
    SPAN_LED_RAISE,
    SPAN_QUEUE_WAIT,
    SPAN_RULE_ACTION,
    SPAN_RULE_CONDITION,
    PipelineTrace,
    SpanRecord,
    TraceContext,
    TraceRecord,
)

__all__ = [
    "FIG3_COMMAND_RECEIVED",
    "FIG3_CLASSIFIED_ECA",
    "FIG3_PASSED_THROUGH",
    "FIG3_GRAPH_CREATED",
    "FIG3_SQL_INSTALLED",
    "FIG3_PERSISTED",
    "FIG4_NOTIFIED",
    "FIG4_DETECTED",
    "FIG4_ACTION_RUN",
    "FIG4_RESULTS_ROUTED",
    "SPAN_CLASSIFY",
    "SPAN_ECA_PARSE",
    "SPAN_ECA_CODEGEN",
    "SPAN_LED_RAISE",
    "SPAN_LED_OP_PREFIX",
    "SPAN_QUEUE_WAIT",
    "SPAN_RULE_CONDITION",
    "SPAN_RULE_ACTION",
    "PipelineTrace",
    "SpanRecord",
    "TraceContext",
    "TraceRecord",
]
