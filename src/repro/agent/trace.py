"""Pipeline tracing: observable Figure 3 / Figure 4 control flows.

When enabled, the agent records one :class:`TraceRecord` per pipeline
step — command classification, ECA handling, notification receipt, rule
firing, action execution — so operators (and the control-flow tests) can
see exactly which of the paper's numbered steps a command took.

Tracing is off by default and costs one branch per step when off.
"""

from __future__ import annotations

import itertools
import threading
from dataclasses import dataclass, field

#: Step identifiers, named after the paper's figures.
FIG3_COMMAND_RECEIVED = "fig3.1-2:command->filter"
FIG3_CLASSIFIED_ECA = "fig3.3:classified-eca"
FIG3_PASSED_THROUGH = "fig3.4:passed-through"
FIG3_GRAPH_CREATED = "fig3.5:event-graph-created"
FIG3_SQL_INSTALLED = "fig3.5:generated-sql-installed"
FIG3_PERSISTED = "fig3.7:persisted"
FIG4_NOTIFIED = "fig4.2-3:notification-received"
FIG4_DETECTED = "fig4.4:led-detected"
FIG4_ACTION_RUN = "fig4.5:action-executed"
FIG4_RESULTS_ROUTED = "fig4.6:results-routed"


@dataclass(frozen=True)
class TraceRecord:
    """One pipeline step."""

    seq: int
    step: str
    detail: str


@dataclass
class PipelineTrace:
    """Bounded in-memory trace buffer (thread-safe)."""

    enabled: bool = False
    max_records: int = 10_000
    records: list[TraceRecord] = field(default_factory=list)
    _seq: itertools.count = field(default_factory=lambda: itertools.count(1))
    _lock: threading.Lock = field(default_factory=threading.Lock)

    def emit(self, step: str, detail: str = "") -> None:
        """Record one step (no-op while disabled)."""
        if not self.enabled:
            return
        with self._lock:
            if len(self.records) >= self.max_records:
                del self.records[: self.max_records // 10]
            self.records.append(
                TraceRecord(next(self._seq), step, detail))

    def clear(self) -> None:
        with self._lock:
            self.records.clear()

    def steps(self) -> list[str]:
        """The step identifiers, in order."""
        return [record.step for record in self.records]

    def matching(self, prefix: str) -> list[TraceRecord]:
        """Records whose step starts with ``prefix`` (e.g. ``"fig4"``)."""
        return [record for record in self.records
                if record.step.startswith(prefix)]

    def format(self) -> str:
        """Render the trace as aligned text."""
        return "\n".join(
            f"{record.seq:>5}  {record.step:<34} {record.detail}"
            for record in self.records
        )
