"""The gateway's worker pool: N threads between clients and the engine.

The paper's Open Server dispatches each client request onto a server
thread; here a fixed pool of Python threads plays that role.  Scheduling
is **per session**: a session whose queue is non-empty sits in the pool's
run queue, a worker pops ONE of its commands, runs it, and re-queues the
session if more are pending.  That gives

- FIFO order within a session (commands of one client never reorder, so
  transaction scripts and difftest schedules stay deterministic),
- round-robin fairness across sessions (no client monopolizes a worker
  by queueing a burst),
- at most one in-flight command per session (the engine sessions are
  not reentrant: ``@@rowcount``/transaction state is per session).

Scheduling is *at-least-once*: a pool resize may leave a session in both
the old and the new pool's run queue.  That is safe because the
per-command execution guard lives on the session itself
(:meth:`~repro.agent.session.AgentSession.take` hands work to exactly
one worker at a time); a redundant run-queue entry drains to a no-op.

``size=0`` disables the pool: the gateway runs commands inline on the
caller's thread, byte-for-byte the pre-pool behaviour.  Pools are
replaced, never resized in place — ``set agent workers <N>`` builds a
new pool and lets the old one drain asynchronously, so the admin command
itself (which may be running *on* an old worker) never joins its own
thread.  A stopping pool's workers **drain** the run queue before
exiting: sessions re-queued behind the stop sentinels (a worker finishes
a command after :meth:`WorkerPool.stop` ran) are still serviced, so no
queued command is ever stranded by a resize.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from queue import Empty, SimpleQueue

#: Run-queue sentinel telling one worker to exit.
_STOP = object()


def service_session(session, requeue=None) -> bool:
    """Run at most one pending command of ``session`` on this thread.

    Returns True when a command ran (False: nothing pending, or another
    worker holds the session's execution guard).  ``requeue`` is called
    with the session when more commands remain afterwards — pool workers
    pass their run queue's ``put``; the gateway's inline rescue path
    passes None and loops instead.
    """
    task = session.take()
    if task is None:
        return False
    fn, future = task
    if future.set_running_or_notify_cancel():
        try:
            future.set_result(fn())
        except BaseException as exc:
            future.set_exception(exc)
    session.task_done()
    # Done with one command; if the session has more, it goes to the
    # BACK of the run queue (round-robin fairness).
    with session._cond:
        session.active = False
        if session.pending:
            if requeue is not None:
                requeue(session)
        else:
            session.scheduled = False
            session.state = ("closed" if session.server_session.closed
                             else "idle")
    return True


def drain_session(session) -> int:
    """Run ``session``'s pending commands to exhaustion on this thread.

    The gateway's rescue path for a session whose run-queue entry may
    have died with a stopped pool; returns the number of commands run.
    """
    ran = 0
    while service_session(session):
        ran += 1
    return ran


class WorkerPool:
    """A fixed-size pool of daemon worker threads draining sessions."""

    _seq = 0
    _seq_lock = threading.Lock()

    def __init__(self, size: int, cleanup=None):
        if size < 1:
            raise ValueError(f"worker pool size must be >= 1, got {size}")
        self.size = size
        #: no-arg hook run on the worker thread after every serviced
        #: task — the gateway clears ambient observability state here so
        #: a recycled thread never leaks a previous command's context
        self.cleanup = cleanup
        self._run_queue: SimpleQueue = SimpleQueue()
        self._stopping = False
        self._stop_lock = threading.Lock()
        with WorkerPool._seq_lock:
            WorkerPool._seq += 1
            pool_id = WorkerPool._seq
        self.name = f"eca-pool-{pool_id}"
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"{self.name}-w{i}")
            for i in range(size)
        ]
        #: commands completed by this pool (monotonic, race-tolerant)
        self.completed = 0
        for thread in self._threads:
            thread.start()

    @property
    def stopping(self) -> bool:
        """True once :meth:`stop` ran; the gateway re-checks this after a
        submit to catch the submit-vs-resize race."""
        return self._stopping

    def submit(self, session, fn) -> Future:
        """Queue ``fn`` (no-arg callable) as ``session``'s next command.

        Returns a :class:`~concurrent.futures.Future` resolving to the
        callable's result (or raising its exception).  Blocks for queue
        space when the session's bounded queue is full.

        A submit can race with :meth:`stop`: the task lands in a pool
        already draining.  The draining workers still service everything
        in their run queue, but the caller must re-check :attr:`stopping`
        afterwards and, if set, schedule the session on the replacement
        pool as well (at-least-once scheduling is safe — see the module
        docstring); the gateway does exactly that.
        """
        future: Future = Future()
        if self._stopping:
            raise RuntimeError(f"worker pool {self.name} is stopped")
        if session.enqueue((fn, future)):
            self._run_queue.put(session)
        return future

    def schedule(self, session) -> None:
        """Put an already-enqueued session into this pool's run queue."""
        self._run_queue.put(session)

    def _worker(self) -> None:
        requeue = self._run_queue.put
        cleanup = self.cleanup
        while True:
            item = self._run_queue.get()
            if item is _STOP:
                break
            if service_session(item, requeue):
                self.completed += 1
                if cleanup is not None:
                    cleanup()
        # Drain: stop() queued the sentinels, but a worker finishing a
        # command re-queues its session BEHIND them — keep servicing the
        # run queue so those sessions (and their Futures) are never
        # stranded.  Peer sentinels are re-put for the peers; cycling
        # through more sentinel pops than the pool could ever hold
        # without meeting a session means only sentinels remain.
        sentinel_streak = 0
        while sentinel_streak <= self.size:
            try:
                item = self._run_queue.get_nowait()
            except Empty:
                return
            if item is _STOP:
                self._run_queue.put(item)
                sentinel_streak += 1
                continue
            sentinel_streak = 0
            if service_session(item, requeue):
                self.completed += 1
                if cleanup is not None:
                    cleanup()

    def stop(self, join: bool = True, timeout: float = 5.0) -> None:
        """Shut the pool down (idempotent).

        One exit sentinel is queued per worker; each worker finishes its
        current command, drains whatever sessions are still queued, and
        exits.  ``join=False`` is the asynchronous variant used when
        replacing a pool from one of its own workers: the threads drain
        and exit after the caller returns.
        """
        with self._stop_lock:
            already = self._stopping
            self._stopping = True
        if not already:
            for _ in self._threads:
                self._run_queue.put(_STOP)
        if join:
            me = threading.current_thread()
            for thread in self._threads:
                if thread is not me:
                    thread.join(timeout=timeout)

    def snapshot(self) -> dict:
        """One row for ``show agent workers``."""
        return {
            "name": self.name,
            "size": self.size,
            "alive": sum(1 for t in self._threads if t.is_alive()),
            "completed": self.completed,
            "stopping": self._stopping,
        }
