"""The gateway's worker pool: N threads between clients and the engine.

The paper's Open Server dispatches each client request onto a server
thread; here a fixed pool of Python threads plays that role.  Scheduling
is **per session**: a session whose queue is non-empty sits in the pool's
run queue exactly once, a worker pops ONE of its commands, runs it, and
re-queues the session if more are pending.  That gives

- FIFO order within a session (commands of one client never reorder, so
  transaction scripts and difftest schedules stay deterministic),
- round-robin fairness across sessions (no client monopolizes a worker
  by queueing a burst),
- at most one in-flight command per session (the engine sessions are
  not reentrant: ``@@rowcount``/transaction state is per session).

``size=0`` disables the pool: the gateway runs commands inline on the
caller's thread, byte-for-byte the pre-pool behaviour.  Pools are
replaced, never resized in place — ``set agent workers <N>`` builds a
new pool and lets the old one drain asynchronously, so the admin command
itself (which may be running *on* an old worker) never joins its own
thread.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future
from queue import SimpleQueue

#: Run-queue sentinel telling one worker to exit.
_STOP = object()


class WorkerPool:
    """A fixed-size pool of daemon worker threads draining sessions."""

    _seq = 0
    _seq_lock = threading.Lock()

    def __init__(self, size: int):
        if size < 1:
            raise ValueError(f"worker pool size must be >= 1, got {size}")
        self.size = size
        self._run_queue: SimpleQueue = SimpleQueue()
        self._stopping = False
        with WorkerPool._seq_lock:
            WorkerPool._seq += 1
            pool_id = WorkerPool._seq
        self.name = f"eca-pool-{pool_id}"
        self._threads = [
            threading.Thread(target=self._worker, daemon=True,
                             name=f"{self.name}-w{i}")
            for i in range(size)
        ]
        #: commands completed by this pool (monotonic, race-tolerant)
        self.completed = 0
        for thread in self._threads:
            thread.start()

    def submit(self, session, fn) -> Future:
        """Queue ``fn`` (no-arg callable) as ``session``'s next command.

        Returns a :class:`~concurrent.futures.Future` resolving to the
        callable's result (or raising its exception).  Blocks for queue
        space when the session's bounded queue is full.
        """
        future: Future = Future()
        if self._stopping:
            raise RuntimeError(f"worker pool {self.name} is stopped")
        if session.enqueue((fn, future)):
            self._run_queue.put(session)
        return future

    def _worker(self) -> None:
        while True:
            item = self._run_queue.get()
            if item is _STOP:
                return
            task = item.take()
            if task is None:
                continue
            fn, future = task
            if future.set_running_or_notify_cancel():
                try:
                    future.set_result(fn())
                except BaseException as exc:
                    future.set_exception(exc)
            item.task_done()
            self.completed += 1
            # Done with one command; if the session has more, it goes to
            # the BACK of the run queue (round-robin fairness).
            with item._cond:
                if item.pending:
                    self._run_queue.put(item)
                else:
                    item.scheduled = False
                    item.state = ("closed" if item.server_session.closed
                                  else "idle")

    def stop(self, join: bool = True, timeout: float = 5.0) -> None:
        """Shut the pool down.

        ``join=False`` is the asynchronous variant used when replacing a
        pool from one of its own workers: sentinels are queued and the
        threads exit after finishing whatever they hold.
        """
        self._stopping = True
        for _ in self._threads:
            self._run_queue.put(_STOP)
        if join:
            me = threading.current_thread()
            for thread in self._threads:
                if thread is not me:
                    thread.join(timeout=timeout)

    def snapshot(self) -> dict:
        """One row for ``show agent workers``."""
        return {
            "name": self.name,
            "size": self.size,
            "alive": sum(1 for t in self._threads if t.is_alive()),
            "completed": self.completed,
            "stopping": self._stopping,
        }
