"""The Gateway Open Server — the agent's General Interface (Figure 2).

Presents exactly the same endpoint surface as the SQL server
(:class:`repro.sqlengine.client.SqlEndpoint`), so existing clients connect
to the agent without modification.  Each incoming command flows through
the Language Filter: ECA commands go to the agent's ECA parser, agent
admin commands (``show agent ...``) to the introspection surface, plain
SQL passes straight through to the server (Figure 3 steps 1-3).

The gateway is multi-session: :meth:`open_session` returns an
:class:`~repro.agent.session.AgentSession` (session id, scheduling
state, bounded command queue) and a configurable
:class:`~repro.agent.workers.WorkerPool` sits between the sessions and
the engine — the reproduction of the Open Server thread pool the paper's
gateway inherits from Sybase.  ``set agent workers <N>`` swaps the pool
at runtime; size 0 removes it, running every command inline on the
client's thread (the original single-threaded behaviour).  Commands of
one session never run concurrently or out of order; commands of
different sessions run in parallel up to the pool size, with the
engine's lock manager arbitrating below.

The gateway also routes the output of IMMEDIATE rule actions back into
the result stream of the client command that raised the event (Figure 4
step 6 / Figure 16), via a per-thread slot the action handler writes to
(the slot lives on whichever thread — client or worker — executes the
command, which is also the thread any IMMEDIATE action runs on).

Observability: every command is wrapped in a root trace span (the whole
Figure 3/4 tree hangs off it) and, when stats are on, counted and timed
by classification (``agent_commands_total`` / ``agent_command_seconds``).
Accounting frames open on the executing thread, so per-session
attribution (``show agent top sessions``) is exact under concurrency.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from concurrent.futures import Future

from repro.faults import FaultError, POINT_GATEWAY_PROCESS
from repro.sqlengine.results import BatchResult

from .session import AgentSession

#: Closed sessions kept (as a ring) for ``show agent sessions``.
RECENT_CLOSED_LIMIT = 32
from .trace import (
    FIG3_CLASSIFIED_ECA,
    FIG3_COMMAND_RECEIVED,
    FIG3_PASSED_THROUGH,
    FIG4_RESULTS_ROUTED,
    SPAN_CLASSIFY,
    SPAN_QUEUE_WAIT,
)
from .workers import WorkerPool, drain_session


class GatewayOpenServer:
    """SqlEndpoint implementation mediating between clients and server."""

    def __init__(self, agent, workers: int = 0):
        self.agent = agent
        self._local = threading.local()
        #: live (open) sessions, keyed by session id (admin plane)
        self._sessions: dict[int, AgentSession] = {}
        #: bounded ring of recently-closed sessions, newest last
        self._recent_closed: deque = deque(maxlen=RECENT_CLOSED_LIMIT)
        self._sessions_lock = threading.Lock()
        self._pool: WorkerPool | None = (
            WorkerPool(workers, cleanup=self._clear_thread_state)
            if workers else None)
        #: statistics for the transparency/overhead benches (E-PERF1)
        self.commands_total = 0
        self.commands_passed_through = 0
        self.commands_eca = 0
        self.commands_admin = 0
        self._m_commands = agent.metrics.counter(
            "agent_commands_total",
            "Client commands routed by the gateway, by classification",
            ("kind",))
        self._m_command_seconds = agent.metrics.histogram(
            "agent_command_seconds",
            "End-to-end client command latency through the gateway "
            "(seconds)", ("kind",))
        self._m_queue_wait = agent.metrics.histogram(
            "agent_queue_wait_seconds",
            "Time a command spent queued on its session before a pool "
            "worker dequeued it (seconds)")

    # ------------------------------------------------------------------
    # SqlEndpoint surface

    def open_session(self, user: str, database: str | None) -> AgentSession:
        """Open a gateway session (wrapping a server session) for one
        client connection.  Closing it (``session.closed = True``) evicts
        it from the live-session table into a bounded recently-closed
        ring, so short-lived connections never grow the gateway."""
        session = AgentSession(
            self.agent.server.create_session(user, database))
        session.on_close = self._evict_session
        with self._sessions_lock:
            self._sessions[session.session_id] = session
        return session

    def _evict_session(self, session: AgentSession) -> None:
        """Move one closed session out of the live table (on_close hook)."""
        with self._sessions_lock:
            if self._sessions.pop(session.session_id, None) is not None:
                self._recent_closed.append(session)

    def execute_for(self, session, sql: str) -> BatchResult:
        """Route one client command (Figure 3, steps 1-4), synchronously.

        With a worker pool, the command is queued on its session and the
        calling client thread blocks on the result — same contract, but
        other sessions' commands proceed in parallel.  Without a pool it
        runs inline.
        """
        return self.submit_for(session, sql).result()

    def submit_for(self, session, sql: str):
        """Queue one command and return a Future of its BatchResult.

        The open-loop load generator uses this directly; ``execute_for``
        is this plus a blocking wait.  Raw engine sessions (no queue) and
        pool-less gateways execute inline and return a resolved Future.

        The command's :class:`~repro.obs.tracing.TraceContext` is minted
        *here*, on the submitting client's thread, and rides the queued
        closure — the worker re-activates it, so the hand-off across the
        queue keeps the causal chain (and the enqueue timestamp yields
        the queue-wait span).
        """
        pool = self._pool
        ctx = self.agent.trace.command_context(session)
        while pool is not None and isinstance(session, AgentSession):
            enqueued_at = time.perf_counter()
            try:
                future = pool.submit(
                    session, lambda: self._run_command(
                        session, sql, ctx, enqueued_at))
            except RuntimeError:
                # The pool was swapped by ``set agent workers`` between
                # our read and the submit; retry against the new one
                # (or fall through to inline if the pool went away).
                new_pool = self._pool
                pool = None if new_pool is pool else new_pool
                continue
            if pool.stopping:
                # The submit raced with a resize AFTER the task was
                # enqueued: the old pool's drain may already be past
                # this session.  Hand it to the current pool as well —
                # at-least-once scheduling is safe, the session's
                # execution guard keeps it single-threaded.
                self._reschedule(session)
            return future
        future: Future = Future()
        if future.set_running_or_notify_cancel():
            try:
                if isinstance(session, AgentSession):
                    with session.inline_execution():
                        future.set_result(
                            self._run_command(session, sql, ctx))
                else:
                    future.set_result(self._run_command(session, sql, ctx))
            except BaseException as exc:
                future.set_exception(exc)
        return future

    def _reschedule(self, session: AgentSession) -> None:
        """Re-offer a session whose run-queue entry may have died with a
        stopped pool.  Schedules it on the current pool (looping past
        further resizes); with no pool left, drains it inline."""
        while True:
            pool = self._pool
            if pool is None:
                drain_session(session)
                return
            pool.schedule(session)
            if not pool.stopping:
                return
            if self._pool is pool:
                # A stopped pool that is still current (direct stop);
                # don't spin — service the session on this thread.
                drain_session(session)
                return

    # ------------------------------------------------------------------
    # worker-pool administration

    @property
    def pool(self) -> WorkerPool | None:
        """The current worker pool (None = inline execution)."""
        return self._pool

    def set_workers(self, count: int) -> int:
        """Resize the worker pool by replacement; returns the new size.

        The old pool drains asynchronously (``join=False``): this method
        may itself be running on one of the old pool's workers, and a
        thread must never join itself.
        """
        old = self._pool
        self._pool = (WorkerPool(count, cleanup=self._clear_thread_state)
                      if count > 0 else None)
        if old is not None:
            old.stop(join=False)
        return count

    def worker_count(self) -> int:
        """Current pool size (0 = inline)."""
        pool = self._pool
        return pool.size if pool is not None else 0

    def stop_workers(self) -> None:
        """Join and discard the pool (agent shutdown)."""
        old = self._pool
        self._pool = None
        if old is not None:
            old.stop(join=True)

    def session_snapshots(self) -> list[dict]:
        """Session rows for ``show agent sessions``, newest first: every
        live session plus a bounded ring of recently-closed ones."""
        with self._sessions_lock:
            sessions = list(self._sessions.values()) + list(
                self._recent_closed)
        return [s.snapshot() for s in
                sorted(sessions, key=lambda s: s.session_id, reverse=True)]

    # ------------------------------------------------------------------
    # command execution (runs on a worker thread, or inline)

    def _run_command(self, session, sql: str, ctx=None,
                     enqueued_at: float | None = None) -> BatchResult:
        """Execute one routed command on the current thread.

        ``ctx`` is the trace context minted at submit time (None with
        tracing off); it is re-activated here so the whole Figure 3/4
        span tree — including work on this worker thread and any threads
        it hands off to — hangs off one trace id.  ``enqueued_at`` (pool
        path only) dates the submit, yielding the queue-wait span and
        the ``agent_queue_wait_seconds`` observation.

        Failure semantics: real errors (SQL errors, name-check failures,
        :class:`~repro.agent.errors.PersistenceError`) propagate to the
        issuing client unchanged.  *Injected* faults that survive the
        retry policies (:class:`~repro.faults.FaultError`, including
        ``RetryExhaustedError``) degrade gracefully instead: the client
        receives an error result for this one command and the agent
        keeps serving — only a :class:`~repro.faults.SimulatedCrash`
        takes the agent down.
        """
        self.commands_total += 1
        agent = self.agent
        metrics = agent.metrics
        timed = metrics.enabled
        accounting = agent.accounting
        frame = accounting.begin(session)
        flightrec = agent.flightrec
        # Snapshot the threshold with the marks: ``set agent slowlog off``
        # issued *by this command* must not null the threshold under us.
        slow_threshold = flightrec.threshold_ms if flightrec.armed else None
        marks = (flightrec.marks(agent.trace, agent.journal)
                 if slow_threshold is not None else None)
        # The health and accounting planes need wall time even with
        # stats off; one perf_counter pair per command is in the noise.
        start = time.perf_counter()
        if timed and enqueued_at is not None:
            self._m_queue_wait.observe(start - enqueued_at)
        trace_id = ctx.trace_id if ctx is not None else None
        kind = "error"
        try:
            trace = agent.trace
            if trace.enabled:
                with trace.activate(ctx), \
                        trace.span(FIG3_COMMAND_RECEIVED,
                                   sql.split(chr(10))[0][:60]):
                    if enqueued_at is not None:
                        trace.record_span(SPAN_QUEUE_WAIT,
                                          start=enqueued_at, end=start)
                    kind, result = self._route(session, sql)
            else:
                kind, result = self._route(session, sql)
        except FaultError as exc:
            kind = "degraded"
            result = BatchResult(messages=[
                f"Agent error: command not applied ({exc}). "
                "The agent compensated and remains consistent."])
        finally:
            duration = time.perf_counter() - start
            if timed:
                self._m_commands.labels(kind).inc()
                if trace_id is not None:
                    self._m_command_seconds.labels(kind).observe_with_trace(
                        duration, trace_id)
                else:
                    self._m_command_seconds.labels(kind).observe(duration)
            if (marks is not None
                    and duration * 1e3 >= slow_threshold):
                flightrec.capture(
                    kind=kind, statement=sql, session=session,
                    duration=duration, frame=frame, trace=agent.trace,
                    journal=agent.journal, marks=marks,
                    trace_id=trace_id,
                    plan=agent.server.explain_text(
                        sql, getattr(session, "server_session", session)))
            accounting.finish(frame, duration)
        return result

    def _clear_thread_state(self) -> None:
        """Drop ambient per-thread observability state (span stack,
        provenance stack, accounting frames) — the worker pool's
        between-task hygiene hook, so a recycled worker thread never
        attributes later work to a previous command."""
        agent = self.agent
        agent.trace.reset_thread()
        agent.journal.reset_thread()
        agent.accounting.reset_thread()

    def _route(self, session, sql: str) -> tuple[str, BatchResult]:
        """Classify and dispatch; returns (classification label, result)."""
        filter_ = self.agent.language_filter
        trace = self.agent.trace
        if trace.enabled:
            with trace.span(SPAN_CLASSIFY):
                kind = filter_.classify(sql)
        else:
            kind = filter_.classify(sql)

        if kind == filter_.AGENT_ADMIN:
            # The admin plane is never faulted: ``set agent faults off``
            # must remain available while a chaos plan is wreaking havoc.
            self.commands_admin += 1
            return "admin", self.agent.admin.handle(sql, session)

        faults = self.agent.faults
        if faults.enabled:
            faults.fire(POINT_GATEWAY_PROCESS, sql)

        if kind == filter_.ECA:
            self.commands_eca += 1
            trace.emit(FIG3_CLASSIFIED_ECA)
            return "eca", self.agent.handle_eca(sql, session)

        if kind == filter_.MAYBE_DROP_TRIGGER:
            if self.agent.owns_drop_trigger(sql, session):
                self.commands_eca += 1
                return "eca", self.agent.handle_eca(sql, session)

        self.commands_passed_through += 1
        trace.emit(FIG3_PASSED_THROUGH)
        return "passthrough", self._pass_through(session, sql)

    def _pass_through(self, session, sql: str) -> BatchResult:
        """Run plain SQL on the server, merging any IMMEDIATE action
        output raised by it into the client's result stream."""
        owns_slot = not hasattr(self._local, "slot") or self._local.slot is None
        if owns_slot:
            self._local.slot = BatchResult()
        engine_session = getattr(session, "server_session", session)
        try:
            result = self.agent.server.execute(sql, engine_session)
            self.agent.after_client_command(session)
        finally:
            if owns_slot:
                slot = self._local.slot
                self._local.slot = None
        if owns_slot and (slot.result_sets or slot.messages):
            result.result_sets.extend(slot.result_sets)
            result.messages.extend(slot.messages)
        return result

    # ------------------------------------------------------------------
    # action output routing

    def push_action_output(self, action_result: BatchResult) -> bool:
        """Append an action's output to the in-flight client result.

        Returns False when no client command is executing on this thread
        (detached actions land in the agent's action log instead).
        """
        slot = getattr(self._local, "slot", None)
        if slot is None:
            return False
        slot.messages.extend(action_result.messages)
        slot.result_sets.extend(action_result.result_sets)
        self.agent.trace.emit(FIG4_RESULTS_ROUTED)
        return True
