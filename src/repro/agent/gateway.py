"""The Gateway Open Server — the agent's General Interface (Figure 2).

Presents exactly the same endpoint surface as the SQL server
(:class:`repro.sqlengine.client.SqlEndpoint`), so existing clients connect
to the agent without modification.  Each incoming command flows through
the Language Filter: ECA commands go to the agent's ECA parser, agent
admin commands (``show agent ...``) to the introspection surface, plain
SQL passes straight through to the server (Figure 3 steps 1-3).

The gateway also routes the output of IMMEDIATE rule actions back into
the result stream of the client command that raised the event (Figure 4
step 6 / Figure 16), via a per-thread slot the action handler writes to.

Observability: every command is wrapped in a root trace span (the whole
Figure 3/4 tree hangs off it) and, when stats are on, counted and timed
by classification (``agent_commands_total`` / ``agent_command_seconds``).
"""

from __future__ import annotations

import threading
import time

from repro.faults import FaultError, POINT_GATEWAY_PROCESS
from repro.sqlengine.results import BatchResult
from repro.sqlengine.server import Session

from .trace import (
    FIG3_CLASSIFIED_ECA,
    FIG3_COMMAND_RECEIVED,
    FIG3_PASSED_THROUGH,
    FIG4_RESULTS_ROUTED,
    SPAN_CLASSIFY,
)


class GatewayOpenServer:
    """SqlEndpoint implementation mediating between clients and server."""

    def __init__(self, agent):
        self.agent = agent
        self._local = threading.local()
        #: statistics for the transparency/overhead benches (E-PERF1)
        self.commands_total = 0
        self.commands_passed_through = 0
        self.commands_eca = 0
        self.commands_admin = 0
        self._m_commands = agent.metrics.counter(
            "agent_commands_total",
            "Client commands routed by the gateway, by classification",
            ("kind",))
        self._m_command_seconds = agent.metrics.histogram(
            "agent_command_seconds",
            "End-to-end client command latency through the gateway "
            "(seconds)", ("kind",))

    # ------------------------------------------------------------------
    # SqlEndpoint surface

    def open_session(self, user: str, database: str | None) -> Session:
        """Open a server session on the client's behalf (the gateway's
        pass-through connection)."""
        return self.agent.server.create_session(user, database)

    def execute_for(self, session: Session, sql: str) -> BatchResult:
        """Route one client command (Figure 3, steps 1-4).

        Failure semantics: real errors (SQL errors, name-check failures,
        :class:`~repro.agent.errors.PersistenceError`) propagate to the
        issuing client unchanged.  *Injected* faults that survive the
        retry policies (:class:`~repro.faults.FaultError`, including
        ``RetryExhaustedError``) degrade gracefully instead: the client
        receives an error result for this one command and the agent
        keeps serving — only a :class:`~repro.faults.SimulatedCrash`
        takes the agent down.
        """
        self.commands_total += 1
        agent = self.agent
        metrics = agent.metrics
        timed = metrics.enabled
        accounting = agent.accounting
        frame = accounting.begin(session)
        flightrec = agent.flightrec
        # Snapshot the threshold with the marks: ``set agent slowlog off``
        # issued *by this command* must not null the threshold under us.
        slow_threshold = flightrec.threshold_ms if flightrec.armed else None
        marks = (flightrec.marks(agent.trace, agent.journal)
                 if slow_threshold is not None else None)
        # The health and accounting planes need wall time even with
        # stats off; one perf_counter pair per command is in the noise.
        start = time.perf_counter()
        kind = "error"
        try:
            trace = agent.trace
            if trace.enabled:
                with trace.span(FIG3_COMMAND_RECEIVED,
                                sql.split(chr(10))[0][:60]):
                    kind, result = self._route(session, sql)
            else:
                kind, result = self._route(session, sql)
        except FaultError as exc:
            kind = "degraded"
            result = BatchResult(messages=[
                f"Agent error: command not applied ({exc}). "
                "The agent compensated and remains consistent."])
        finally:
            duration = time.perf_counter() - start
            if timed:
                self._m_commands.labels(kind).inc()
                self._m_command_seconds.labels(kind).observe(duration)
            if (marks is not None
                    and duration * 1e3 >= slow_threshold):
                flightrec.capture(
                    kind=kind, statement=sql, session=session,
                    duration=duration, frame=frame, trace=agent.trace,
                    journal=agent.journal, marks=marks)
            accounting.finish(frame, duration)
        return result

    def _route(self, session: Session, sql: str) -> tuple[str, BatchResult]:
        """Classify and dispatch; returns (classification label, result)."""
        filter_ = self.agent.language_filter
        trace = self.agent.trace
        if trace.enabled:
            with trace.span(SPAN_CLASSIFY):
                kind = filter_.classify(sql)
        else:
            kind = filter_.classify(sql)

        if kind == filter_.AGENT_ADMIN:
            # The admin plane is never faulted: ``set agent faults off``
            # must remain available while a chaos plan is wreaking havoc.
            self.commands_admin += 1
            return "admin", self.agent.admin.handle(sql, session)

        faults = self.agent.faults
        if faults.enabled:
            faults.fire(POINT_GATEWAY_PROCESS, sql)

        if kind == filter_.ECA:
            self.commands_eca += 1
            trace.emit(FIG3_CLASSIFIED_ECA)
            return "eca", self.agent.handle_eca(sql, session)

        if kind == filter_.MAYBE_DROP_TRIGGER:
            if self.agent.owns_drop_trigger(sql, session):
                self.commands_eca += 1
                return "eca", self.agent.handle_eca(sql, session)

        self.commands_passed_through += 1
        trace.emit(FIG3_PASSED_THROUGH)
        return "passthrough", self._pass_through(session, sql)

    def _pass_through(self, session: Session, sql: str) -> BatchResult:
        """Run plain SQL on the server, merging any IMMEDIATE action
        output raised by it into the client's result stream."""
        owns_slot = not hasattr(self._local, "slot") or self._local.slot is None
        if owns_slot:
            self._local.slot = BatchResult()
        try:
            result = self.agent.server.execute(sql, session)
            self.agent.after_client_command(session)
        finally:
            if owns_slot:
                slot = self._local.slot
                self._local.slot = None
        if owns_slot and (slot.result_sets or slot.messages):
            result.result_sets.extend(slot.result_sets)
            result.messages.extend(slot.messages)
        return result

    # ------------------------------------------------------------------
    # action output routing

    def push_action_output(self, action_result: BatchResult) -> bool:
        """Append an action's output to the in-flight client result.

        Returns False when no client command is executing on this thread
        (detached actions land in the agent's action log instead).
        """
        slot = getattr(self._local, "slot", None)
        if slot is None:
            return False
        slot.messages.extend(action_result.messages)
        slot.result_sets.extend(action_result.result_sets)
        self.agent.trace.emit(FIG4_RESULTS_ROUTED)
        return True
