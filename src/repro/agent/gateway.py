"""The Gateway Open Server — the agent's General Interface (Figure 2).

Presents exactly the same endpoint surface as the SQL server
(:class:`repro.sqlengine.client.SqlEndpoint`), so existing clients connect
to the agent without modification.  Each incoming command flows through
the Language Filter: ECA commands go to the agent's ECA parser, plain SQL
passes straight through to the server (Figure 3 steps 1-3).

The gateway also routes the output of IMMEDIATE rule actions back into
the result stream of the client command that raised the event (Figure 4
step 6 / Figure 16), via a per-thread slot the action handler writes to.
"""

from __future__ import annotations

import threading

from repro.sqlengine.results import BatchResult
from repro.sqlengine.server import Session

from .trace import (
    FIG3_CLASSIFIED_ECA,
    FIG3_COMMAND_RECEIVED,
    FIG3_PASSED_THROUGH,
    FIG4_RESULTS_ROUTED,
)


class GatewayOpenServer:
    """SqlEndpoint implementation mediating between clients and server."""

    def __init__(self, agent):
        self.agent = agent
        self._local = threading.local()
        #: statistics for the transparency/overhead benches (E-PERF1)
        self.commands_total = 0
        self.commands_passed_through = 0
        self.commands_eca = 0

    # ------------------------------------------------------------------
    # SqlEndpoint surface

    def open_session(self, user: str, database: str | None) -> Session:
        """Open a server session on the client's behalf (the gateway's
        pass-through connection)."""
        return self.agent.server.create_session(user, database)

    def execute_for(self, session: Session, sql: str) -> BatchResult:
        """Route one client command (Figure 3, steps 1-4)."""
        self.commands_total += 1
        self.agent.trace.emit(FIG3_COMMAND_RECEIVED, sql.split(chr(10))[0][:60])
        filter_ = self.agent.language_filter
        kind = filter_.classify(sql)

        if kind == filter_.ECA:
            self.commands_eca += 1
            self.agent.trace.emit(FIG3_CLASSIFIED_ECA)
            return self.agent.handle_eca(sql, session)

        if kind == filter_.MAYBE_DROP_TRIGGER:
            if self.agent.owns_drop_trigger(sql, session):
                self.commands_eca += 1
                return self.agent.handle_eca(sql, session)

        self.commands_passed_through += 1
        self.agent.trace.emit(FIG3_PASSED_THROUGH)
        owns_slot = not hasattr(self._local, "slot") or self._local.slot is None
        if owns_slot:
            self._local.slot = BatchResult()
        try:
            result = self.agent.server.execute(sql, session)
            self.agent.after_client_command(session)
        finally:
            if owns_slot:
                slot = self._local.slot
                self._local.slot = None
        if owns_slot and (slot.result_sets or slot.messages):
            result.result_sets.extend(slot.result_sets)
            result.messages.extend(slot.messages)
        return result

    # ------------------------------------------------------------------
    # action output routing

    def push_action_output(self, action_result: BatchResult) -> bool:
        """Append an action's output to the in-flight client result.

        Returns False when no client command is executing on this thread
        (detached actions land in the agent's action log instead).
        """
        slot = getattr(self._local, "slot", None)
        if slot is None:
            return False
        slot.messages.extend(action_result.messages)
        slot.result_sets.extend(action_result.result_sets)
        self.agent.trace.emit(FIG4_RESULTS_ROUTED)
        return True
