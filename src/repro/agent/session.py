"""Per-client gateway sessions (the multi-session half of Figure 2).

The paper's Gateway Open Server multiplexes many Sybase clients; each
one gets an :class:`AgentSession` here — a thin stateful wrapper around
the engine's :class:`~repro.sqlengine.server.Session` that adds what the
gateway needs to schedule the client fairly:

- a stable session id (delegated to the engine session, so per-session
  accounting in ``repro.obs.opcontext`` attributes work to the same id
  whether a command came through the gateway or straight to the server);
- a lifecycle ``state`` (``idle``/``queued``/``running``/``closed``);
- a **bounded pending-command queue** with FIFO ordering: the worker
  pool runs at most one command per session at a time, so one client's
  commands never reorder, and a client that floods the gateway blocks in
  :meth:`enqueue` (backpressure) instead of growing memory without
  bound.

The wrapper deliberately quacks like the engine session (``session_id``,
``user``, ``database``, ``tx_log``, ``global_vars``, ``closed``): the
rest of the agent — admin plane, ECA handler, accounting frames —
already consumes those attributes and needs no changes.
"""

from __future__ import annotations

import threading
from collections import deque
from contextlib import contextmanager

#: Default bound on commands waiting per session (beyond the running one).
DEFAULT_QUEUE_LIMIT = 32


class AgentSession:
    """One client's connection state inside the gateway."""

    def __init__(self, server_session, queue_limit: int = DEFAULT_QUEUE_LIMIT):
        #: the engine-side session this wrapper fronts
        self.server_session = server_session
        self.queue_limit = max(1, int(queue_limit))
        #: pending (callable, Future) pairs, drained FIFO by the pool
        self.pending: deque = deque()
        self._cond = threading.Condition(threading.Lock())
        #: True while the session sits in the pool's run queue or runs
        self.scheduled = False
        #: True while one worker is executing a command of this session.
        #: Scheduling is at-least-once (a pool resize may leave the
        #: session in two run queues); this flag is the at-most-one
        #: execution guard: :meth:`take` yields work to a single worker.
        self.active = False
        #: called once with the session when it closes (gateway eviction)
        self.on_close = None
        #: scheduling state for ``show agent sessions``
        self.state = "idle"
        #: commands accepted / finished through this session
        self.enqueued_total = 0
        self.executed_total = 0
        #: enqueue attempts that had to wait for queue space
        self.backpressure_waits = 0

    # -- engine-session facade ------------------------------------------

    @property
    def session_id(self) -> int:
        """Engine session id (shared with the accounting plane)."""
        return self.server_session.session_id

    @property
    def user(self) -> str:
        """The login the session was opened for."""
        return self.server_session.user

    @property
    def database(self) -> str:
        """The session's current database."""
        return self.server_session.database

    @property
    def tx_log(self):
        """The engine session's transaction log."""
        return self.server_session.tx_log

    @property
    def global_vars(self) -> dict:
        """The engine session's ``@@``-variable table."""
        return self.server_session.global_vars

    @property
    def closed(self) -> bool:
        """Whether the connection was closed (mirrors the engine side)."""
        return self.server_session.closed

    @closed.setter
    def closed(self, value: bool) -> None:
        """Propagate closure to the engine session and the lifecycle state."""
        self.server_session.closed = value
        if value:
            self.state = "closed"
            callback, self.on_close = self.on_close, None
            if callback is not None:
                callback(self)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (f"AgentSession({self.session_id}, user={self.user!r}, "
                f"db={self.database!r}, state={self.state!r})")

    # -- queue plumbing (used by the worker pool) -----------------------

    def enqueue(self, task) -> bool:
        """Append a task FIFO; returns True when the caller must hand the
        session to the pool's run queue (it was not scheduled).

        Blocks while the queue is at its bound — that block *is* the
        gateway's backpressure: a flooding client slows to the engine's
        pace instead of queueing unboundedly.
        """
        with self._cond:
            if len(self.pending) >= self.queue_limit:
                self.backpressure_waits += 1
                while len(self.pending) >= self.queue_limit:
                    self._cond.wait()
            self.pending.append(task)
            self.enqueued_total += 1
            if not self.scheduled:
                self.scheduled = True
                self.state = "queued"
                return True
            return False

    def take(self):
        """Pop the oldest pending task (pool worker only), else None.

        Returns None both when nothing is pending and when another
        worker is already executing a command of this session (the
        session may sit in two run queues across a pool resize); in the
        latter case ``scheduled`` is left alone — the active worker owns
        the requeue-or-idle decision when it finishes.
        """
        with self._cond:
            if self.active:
                return None
            if not self.pending:
                self.scheduled = False
                self.state = "idle" if not self.server_session.closed else "closed"
                return None
            self._cond.notify()
            self.active = True
            self.state = "running"
            return self.pending.popleft()

    def task_done(self) -> None:
        """Record one finished command (pool worker only)."""
        with self._cond:
            self.executed_total += 1

    @contextmanager
    def inline_execution(self):
        """Account one command run inline on the client's thread (no
        pool), so ``show agent sessions`` counts commands identically in
        both execution modes."""
        with self._cond:
            self.enqueued_total += 1
            self.state = "running"
        try:
            yield
        finally:
            with self._cond:
                self.executed_total += 1
                if self.state == "running":
                    self.state = ("closed" if self.server_session.closed
                                  else "idle")

    def queue_depth(self) -> int:
        """Commands waiting (not counting one currently running)."""
        return len(self.pending)

    def snapshot(self) -> dict:
        """One row for ``show agent sessions``."""
        return {
            "session_id": self.session_id,
            "user": self.user,
            "database": self.database,
            "state": self.state,
            "queued": self.queue_depth(),
            "enqueued": self.enqueued_total,
            "executed": self.executed_total,
            "backpressure_waits": self.backpressure_waits,
        }
