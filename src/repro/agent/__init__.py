"""``repro.agent`` — the ECA Agent mediator (the paper's contribution).

The agent sits between clients and the (passive) SQL server and provides
full active-database capability — named primitive events, Snoop composite
events, multiple triggers per event, all four parameter contexts, the
three coupling modes, persistence and recovery — without modifying either
the server or the clients (paper Figures 1 and 2).

Assembly::

    from repro.sqlengine import SqlServer
    from repro.agent import EcaAgent

    server = SqlServer(default_database="sentineldb")
    agent = EcaAgent(server)
    conn = agent.connect(user="sharma", database="sentineldb")
    conn.execute("create table stock (symbol varchar(10), price float)")
    conn.execute(
        'create trigger t_addStk on stock for insert event addStk '
        'as print "stock added"'
    )
    conn.execute("insert stock values ('IBM', 101.5)")   # -> "stock added"
"""

from .action_handler import ActionHandler
from .admin import AgentAdmin
from .agent import EcaAgent
from .eca_parser import EcaCommand, LanguageFilter, parse_eca_command
from .errors import (
    AgentError,
    EcaSyntaxError,
    NameError_,
    PersistenceError,
    RecoveryError,
)
from .gateway import GatewayOpenServer
from .messages import Notification, NotiStr
from .model import CompositeEventDef, EcaTriggerDef, PrimitiveEventDef
from .naming import expand_name, internal_name, split_internal
from .notifier import (
    EventNotifier,
    NotificationChannel,
    SynchronousChannel,
    ThreadedChannel,
    UdpChannel,
)
from .persistence import PersistentManager
from .trace import PipelineTrace, SpanRecord, TraceRecord

__all__ = [
    "ActionHandler",
    "AgentAdmin",
    "AgentError",
    "CompositeEventDef",
    "EcaAgent",
    "EcaCommand",
    "EcaSyntaxError",
    "EcaTriggerDef",
    "EventNotifier",
    "GatewayOpenServer",
    "LanguageFilter",
    "NameError_",
    "Notification",
    "NotiStr",
    "NotificationChannel",
    "PersistenceError",
    "PersistentManager",
    "RecoveryError",
    "PipelineTrace",
    "PrimitiveEventDef",
    "SpanRecord",
    "SynchronousChannel",
    "TraceRecord",
    "ThreadedChannel",
    "UdpChannel",
    "expand_name",
    "internal_name",
    "parse_eca_command",
    "split_internal",
]
