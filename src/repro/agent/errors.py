"""Errors raised by the ECA Agent."""

from __future__ import annotations

from repro.errors import ReproError


class AgentError(ReproError):
    """Root of ECA Agent errors."""


class EcaSyntaxError(AgentError):
    """An ECA command (extended trigger syntax) failed to parse."""


class NameError_(AgentError):
    """Name checking failed: duplicate new object, or a referenced event,
    trigger, or table does not exist (paper Section 5.3, 'Name checking')."""


class NotificationError(AgentError):
    """A notification message could not be decoded or delivered."""


class PersistenceError(AgentError):
    """A Persistent Manager statement failed.

    Carries the offending SQL as ``statement`` and names it in the
    message, so a failure inside a multi-statement operation (e.g. the
    two inserts of ``persist_trigger``) is attributable from logs alone.
    """

    def __init__(self, statement: str, cause: BaseException):
        shown = " ".join(statement.split())
        if len(shown) > 120:
            shown = shown[:117] + "..."
        super().__init__(
            f"persistence statement failed: [{shown}]: {cause}")
        self.statement = statement
        self.cause = cause


class RecoveryError(AgentError):
    """Persistent state could not be restored at agent startup."""
