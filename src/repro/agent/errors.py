"""Errors raised by the ECA Agent."""

from __future__ import annotations

from repro.errors import ReproError


class AgentError(ReproError):
    """Root of ECA Agent errors."""


class EcaSyntaxError(AgentError):
    """An ECA command (extended trigger syntax) failed to parse."""


class NameError_(AgentError):
    """Name checking failed: duplicate new object, or a referenced event,
    trigger, or table does not exist (paper Section 5.3, 'Name checking')."""


class NotificationError(AgentError):
    """A notification message could not be decoded or delivered."""


class RecoveryError(AgentError):
    """Persistent state could not be restored at agent startup."""
