"""Notification messages and the ``NotiStr`` action-parameter structure.

The generated native triggers notify the agent with a ``syb_sendmsg``
datagram whose payload is (paper Figure 11)::

    <user> <table> <operation> begin <internal event name> [<vNo>]

The paper's message stops at the event name; we append the occurrence
number ``vNo`` so the notification is self-contained — the paper's agent
instead reads the current ``vNo`` back from ``SysPrimitiveEvent``, which
races when notifications are delivered asynchronously (documented
deviation, DESIGN.md §2).  The decoder accepts both forms.

Trace propagation rides the same datagram: while tracing is enabled the
sink appends one ``;``-separated ``tc=<encoded context>`` segment to the
payload (:func:`attach_trace_context`), and the delivery side strips it
back off (:func:`split_trace_context`) before the notification decoder
ever sees the payload.  The token is a trailer, not a notification —
``decode_batch`` also skips any ``tc=`` segment defensively, so a traced
payload that reaches an unaware decoder still parses.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import NotificationError

#: Marker prefix of the trace-context trailer segment in a datagram.
TRACE_TOKEN_PREFIX = "tc="


def attach_trace_context(payload: str, encoded: str) -> str:
    """Append an encoded trace context to a datagram payload as a
    ``;``-separated ``tc=`` trailer segment."""
    return f"{payload};{TRACE_TOKEN_PREFIX}{encoded}"


def split_trace_context(payload: str) -> tuple[str, str | None]:
    """Split a payload into (clean payload, encoded trace context).

    The second element is None when the payload carries no ``tc=``
    trailer; the clean payload is always safe to hand to
    :meth:`Notification.decode_batch`.
    """
    head, sep, tail = payload.rpartition(";")
    if sep and tail.startswith(TRACE_TOKEN_PREFIX):
        return head, tail[len(TRACE_TOKEN_PREFIX):]
    return payload, None


@dataclass(frozen=True)
class Notification:
    """Decoded content of one primitive-event notification."""

    user: str
    table: str
    operation: str
    phase: str              # always "begin" for database events
    event_internal: str
    v_no: int | None = None

    def encode(self) -> str:
        """Render the datagram payload."""
        base = (
            f"{self.user} {self.table} {self.operation} "
            f"{self.phase} {self.event_internal}"
        )
        if self.v_no is None:
            return base
        return f"{base} {self.v_no}"

    @classmethod
    def decode(cls, payload: str) -> "Notification":
        """Parse a datagram payload; raises :class:`NotificationError`."""
        parts = payload.split()
        if len(parts) not in (5, 6):
            raise NotificationError(
                f"malformed notification payload {payload!r}"
            )
        v_no: int | None = None
        if len(parts) == 6:
            try:
                v_no = int(parts[5])
            except ValueError as exc:
                raise NotificationError(
                    f"bad occurrence number in {payload!r}"
                ) from exc
        return cls(
            user=parts[0],
            table=parts[1],
            operation=parts[2],
            phase=parts[3],
            event_internal=parts[4],
            v_no=v_no,
        )

    @classmethod
    def decode_batch(cls, payload: str) -> "list[Notification]":
        """Parse a (possibly coalesced) datagram payload.

        A native trigger serving several events on one (table, operation)
        sends a single datagram with ``;``-separated segments; a plain
        single-event payload is the degenerate one-segment case and
        decodes exactly as :meth:`decode` would.  A ``tc=`` trace-context
        trailer (normally stripped upstream by
        :func:`split_trace_context`) is skipped, not rejected.
        """
        segments = [part for part in
                    (segment.strip() for segment in payload.split(";"))
                    if part and not part.startswith(TRACE_TOKEN_PREFIX)]
        if not segments:
            raise NotificationError(
                f"malformed notification payload {payload!r}")
        return [cls.decode(segment) for segment in segments]


@dataclass
class NotiStr:
    """The action-parameter structure of paper Figure 13.

    Packs everything ``SybaseAction`` needs to run a rule's action inside
    the SQL server: the stored procedure to execute, the event name, the
    parameter context, and the client/thread association (here, the
    originating session id rather than a ``SRV_PROC*``).
    """

    store_proc: str
    event_name: str
    context: str
    session_id: int | None = None
