"""Notification messages and the ``NotiStr`` action-parameter structure.

The generated native triggers notify the agent with a ``syb_sendmsg``
datagram whose payload is (paper Figure 11)::

    <user> <table> <operation> begin <internal event name> [<vNo>]

The paper's message stops at the event name; we append the occurrence
number ``vNo`` so the notification is self-contained — the paper's agent
instead reads the current ``vNo`` back from ``SysPrimitiveEvent``, which
races when notifications are delivered asynchronously (documented
deviation, DESIGN.md §2).  The decoder accepts both forms.
"""

from __future__ import annotations

from dataclasses import dataclass

from .errors import NotificationError


@dataclass(frozen=True)
class Notification:
    """Decoded content of one primitive-event notification."""

    user: str
    table: str
    operation: str
    phase: str              # always "begin" for database events
    event_internal: str
    v_no: int | None = None

    def encode(self) -> str:
        """Render the datagram payload."""
        base = (
            f"{self.user} {self.table} {self.operation} "
            f"{self.phase} {self.event_internal}"
        )
        if self.v_no is None:
            return base
        return f"{base} {self.v_no}"

    @classmethod
    def decode(cls, payload: str) -> "Notification":
        """Parse a datagram payload; raises :class:`NotificationError`."""
        parts = payload.split()
        if len(parts) not in (5, 6):
            raise NotificationError(
                f"malformed notification payload {payload!r}"
            )
        v_no: int | None = None
        if len(parts) == 6:
            try:
                v_no = int(parts[5])
            except ValueError as exc:
                raise NotificationError(
                    f"bad occurrence number in {payload!r}"
                ) from exc
        return cls(
            user=parts[0],
            table=parts[1],
            operation=parts[2],
            phase=parts[3],
            event_internal=parts[4],
            v_no=v_no,
        )

    @classmethod
    def decode_batch(cls, payload: str) -> "list[Notification]":
        """Parse a (possibly coalesced) datagram payload.

        A native trigger serving several events on one (table, operation)
        sends a single datagram with ``;``-separated segments; a plain
        single-event payload is the degenerate one-segment case and
        decodes exactly as :meth:`decode` would.
        """
        segments = [part for part in
                    (segment.strip() for segment in payload.split(";"))
                    if part]
        if not segments:
            raise NotificationError(
                f"malformed notification payload {payload!r}")
        return [cls.decode(segment) for segment in segments]


@dataclass
class NotiStr:
    """The action-parameter structure of paper Figure 13.

    Packs everything ``SybaseAction`` needs to run a rule's action inside
    the SQL server: the stored procedure to execute, the event name, the
    parameter context, and the client/thread association (here, the
    originating session id rather than a ``SRV_PROC*``).
    """

    store_proc: str
    event_name: str
    context: str
    session_id: int | None = None
