"""The Action Handler — ``SybaseAction`` (paper Section 5.5, Figure 16).

When the LED fires a rule, the action handler turns the rule's stored
procedure into SQL commands and runs them in the SQL server through the
gateway: first the ``sysContext`` refresh carrying the occurrence's
parameters (Section 5.6), then ``execute <proc>``.

In the paper a new Open Server thread is spawned per action; here the
``threaded`` mode does the same with Python threads (used for DETACHED
coupling), while the default synchronous path runs the action inline —
which is exactly what IMMEDIATE coupling means.

Concurrency: actions whose parameter contexts touch disjoint snapshot
tables run fully in parallel (the engine's lock manager arbitrates the
data below); actions sharing a snapshot table are serialized here, by
sorted per-table locks, because their ``sysContext`` refresh +
context-processing join is a multi-batch read-modify-write over shared
rows.  Actions sharing an execution session (same database and owner)
additionally serialize on that session — engine sessions hold
per-session state (``@@rowcount``, transaction log) and are not
reentrant.
"""

from __future__ import annotations

import threading
import time
from contextlib import ExitStack
from dataclasses import dataclass, field

from repro.faults import POINT_ACTION_RUN
from repro.led.detector import RuleFiring
from repro.led.occurrences import Occurrence
from repro.led.rules import Coupling, Rule

from .codegen import sys_context_refresh_sql
from .messages import NotiStr
from .model import EcaTriggerDef
from .trace import FIG4_ACTION_RUN


@dataclass
class ActionRecord:
    """Log entry for one executed action."""

    trigger_internal: str
    proc_name: str
    event_internal: str
    occurrence: Occurrence
    messages: list[str] = field(default_factory=list)
    row_sets: int = 0
    error: BaseException | None = None


@dataclass
class TriggerRuntime:
    """Runtime wiring for one ECA trigger."""

    definition: EcaTriggerDef
    snapshot_tables: list[str]
    uses_context: bool
    inline: bool  # executed inside the generated native trigger
    enabled: bool = True


class ActionHandler:
    """Executes rule actions inside the SQL server."""

    def __init__(self, agent):
        self.agent = agent
        self.action_log: list[ActionRecord] = []
        self._threads: list[threading.Thread] = []
        self._lock = threading.Lock()
        self._m_actions = agent.metrics.counter(
            "agent_actions_total",
            "Rule actions executed by the Action Handler", ("status",))
        self._m_action_seconds = agent.metrics.histogram(
            "agent_action_seconds",
            "Rule action execution latency (seconds)")
        #: action execution sessions, one per (database, user): actions run
        #: with the *trigger owner's* identity so unqualified names in the
        #: user's action SQL resolve as they would for that user.  Each
        #: session carries a lock: concurrent actions sharing an identity
        #: must not interleave on one engine session.
        self._sessions: dict[tuple[str, str], tuple[object, threading.RLock]] = {}
        #: serialization locks for actions touching the same snapshot
        #: table (sysContext refresh is a read-modify-write across batches)
        self._table_locks: dict[str, threading.Lock] = {}

    def _session_for(self, database: str, user: str):
        """The (engine session, session lock) pair for one identity."""
        key = (database.lower(), user.lower())
        with self._lock:
            entry = self._sessions.get(key)
            if entry is None:
                entry = (self.agent.server.create_session(user, database),
                         threading.RLock())
                self._sessions[key] = entry
        return entry

    def _serialization_locks(self, runtime: "TriggerRuntime") -> list:
        """Sorted per-table locks covering the action's snapshot tables.

        Sorting gives a global acquisition order, so two actions with
        overlapping table sets cannot deadlock; disjoint actions share no
        locks and run concurrently.
        """
        names = sorted({t.lower() for t in runtime.snapshot_tables})
        locks = []
        with self._lock:
            for name in names:
                lock = self._table_locks.get(name)
                if lock is None:
                    lock = threading.Lock()
                    self._table_locks[name] = lock
                locks.append(lock)
        return locks

    # ------------------------------------------------------------------
    # LED integration

    def make_action(self, runtime: TriggerRuntime):
        """Build the LED action callable for a (non-inline) ECA trigger."""

        def action(occurrence: Occurrence) -> None:
            self.run_action(runtime, occurrence)

        return action

    def dispatch_detached(self, rule: Rule, occurrence: Occurrence) -> None:
        """LED detached dispatcher: one worker thread per action
        (the paper: 'new thread is generated for each call to
        SybaseAction').

        Causal context crosses the thread boundary explicitly: the
        dispatching thread captures its trace context, ambient journal
        parents, and command accounting frame *before* spawning, and the
        worker re-activates all three — so a detached action's span
        parents into the originating command's trace, its journal
        records link to the triggering detection, and its cost still
        charges the triggering session.
        """
        runtime = self.agent.runtime_for_rule(rule.name)
        if runtime is None:
            return
        agent = self.agent
        ctx = agent.trace.current_context()
        journal = agent.journal
        parents = (journal.ambient_parents()
                   if journal is not None and journal.enabled else ())
        origin = agent.accounting.command_frame()

        def worker() -> None:
            with ExitStack() as stack:
                stack.enter_context(agent.trace.activate(ctx))
                if parents:
                    stack.enter_context(journal.inherit(parents))
                stack.enter_context(agent.accounting.inherit_scope(origin))
                record = self.run_action(runtime, occurrence)
            firing = RuleFiring(
                rule_name=rule.name,
                event_name=rule.event_name,
                occurrence=occurrence,
                context=rule.context,
                coupling=Coupling.DETACHED,
                at=self.agent.led.clock.now(),
                error=record.error,
            )
            self.agent.led.record_external_firing(firing)

        thread = threading.Thread(
            target=worker, name=f"eca-action-{rule.name}", daemon=True)
        with self._lock:
            self._threads.append(thread)
        thread.start()

    def join_detached(self, timeout: float = 5.0) -> None:
        """Wait for all outstanding detached action threads."""
        with self._lock:
            threads = list(self._threads)
            self._threads = []
        for thread in threads:
            thread.join(timeout=timeout)

    # ------------------------------------------------------------------
    # execution

    def run_action(self, runtime: TriggerRuntime,
                   occurrence: Occurrence) -> ActionRecord:
        """Run one action: refresh ``sysContext``, execute the procedure,
        and route its output toward the client (Figure 16).

        Failure semantics: any failure — real or injected at the
        ``action.run`` point — is recorded in the action log; it then
        propagates (wrapped by the LED in ``ActionError``) unless the
        agent was built with ``swallow_action_errors``.

        The whole action is charged to the trigger's rule frame (and any
        enclosing command frame) in the agent's accounting plane; errors
        count whether they propagate or are swallowed.
        """
        scope = self.agent.accounting.rule_scope(
            runtime.definition.internal)
        with scope:
            record = self._run_action(runtime, occurrence)
            if record.error is not None:
                scope.mark_error()
            return record

    def _run_action(self, runtime: TriggerRuntime,
                    occurrence: Occurrence) -> ActionRecord:
        trigger = runtime.definition
        faults = self.agent.faults
        if faults.enabled:
            try:
                faults.fire(POINT_ACTION_RUN, trigger.internal)
            except Exception as exc:
                record = ActionRecord(
                    trigger_internal=trigger.internal,
                    proc_name=trigger.proc_name,
                    event_internal=trigger.event_internal,
                    occurrence=occurrence,
                    error=exc,
                )
                self.action_log.append(record)
                if self.agent.metrics.enabled:
                    self._m_actions.labels("error").inc()
                journal = self.agent.journal
                if journal is not None and journal.enabled:
                    journal.record_action(
                        trigger.internal, trigger.context.value,
                        occurrence, error=exc)
                if not self.agent.led.swallow_action_errors:
                    raise
                return record
        noti = NotiStr(
            store_proc=trigger.proc_name,
            event_name=trigger.event_internal,
            context=trigger.context.value,
        )
        record = ActionRecord(
            trigger_internal=trigger.internal,
            proc_name=noti.store_proc,
            event_internal=noti.event_name,
            occurrence=occurrence,
        )
        statements: list[str] = []
        params: dict[str, object] = {}
        if runtime.uses_context:
            entries = context_entries(occurrence)
            refresh, params = sys_context_refresh_sql(
                entries,
                runtime.snapshot_tables,
                trigger.context,
                self.agent.persistent_manager.system_prefix(trigger.db_name),
            )
            statements.extend(refresh)
        statements.append(f"execute {noti.store_proc}")
        script = "\n".join(statements)
        # An IMMEDIATE action runs nested inside the client's engine
        # batch, which holds the exclusive gate: it is already serialized
        # against every other action and must not block on handler locks
        # (a lock held by an action waiting for the gate would deadlock).
        # It gets a throwaway session for the same reason — the cached
        # identity session might be mid-script on another thread.
        nested = self.agent.server.lock_manager.in_batch()
        if nested:
            session = self.agent.server.create_session(
                trigger.user_name, trigger.db_name)
            locks: list = []
        else:
            session, session_lock = self._session_for(
                trigger.db_name, trigger.user_name)
            locks = [session_lock]
            locks.extend(self._serialization_locks(runtime))
        metrics = self.agent.metrics
        timed = metrics.enabled
        journal = self.agent.journal
        journaled = journal is not None and journal.enabled
        if timed or journaled:
            start = time.perf_counter()
        trace = self.agent.trace
        span = (trace.span(FIG4_ACTION_RUN, trigger.internal)
                if trace.enabled else None)
        try:
            with ExitStack() as stack:
                for lock in locks:
                    stack.enter_context(lock)
                if span is not None:
                    with span:
                        result = self.agent.server.execute(
                            script, session, params=params)
                        # Figure 16: results flow back to the client
                        # through the gateway (routing is part of the
                        # action span).
                        self._finish(record, result)
                else:
                    result = self.agent.server.execute(
                        script, session, params=params)
                    self._finish(record, result)
        except Exception as exc:  # record and surface via the LED policy
            record.error = exc
            self.action_log.append(record)
            if timed:
                self._m_actions.labels("error").inc()
            if journaled:
                journal.record_action(
                    trigger.internal, trigger.context.value, occurrence,
                    error=exc, duration=time.perf_counter() - start)
            if not self.agent.led.swallow_action_errors:
                raise
            return record
        if timed:
            self._m_actions.labels("ok").inc()
            self._m_action_seconds.observe(time.perf_counter() - start)
        if journaled:
            journal.record_action(
                trigger.internal, trigger.context.value, occurrence,
                duration=time.perf_counter() - start)
        return record

    def _finish(self, record: ActionRecord, result) -> None:
        record.messages = list(result.messages)
        record.row_sets = len(result.result_sets)
        self.action_log.append(record)
        self.agent.gateway.push_action_output(result)


def context_entries(occurrence: Occurrence) -> list[tuple[str, int]]:
    """(snapshot table, vNo) pairs carried by an occurrence's constituents.

    Timer ticks and other synthetic constituents carry no snapshot tables
    and are skipped; duplicates are removed while preserving order.
    """
    entries: list[tuple[str, int]] = []
    seen: set[tuple[str, int]] = set()
    for constituent in occurrence.flatten():
        snapshot_tables = constituent.params.get("snapshot_tables")
        v_no = constituent.params.get("vNo")
        if not snapshot_tables or v_no is None:
            continue
        for table in snapshot_tables.values():
            entry = (str(table), int(v_no))
            if entry not in seen:
                seen.add(entry)
                entries.append(entry)
    return entries
