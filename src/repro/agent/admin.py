"""Operator introspection commands — the agent's ``sp_monitor`` analogue.

The Language Filter routes ``show/reset/set agent ...`` commands here;
answers come back as ordinary result sets and messages, so *any* client
that can issue SQL can inspect the agent — without touching the DBMS
engine (the paper's core transparency constraint).

Commands:

- ``show agent stats`` — two result sets: counters/gauges, then latency
  histogram summaries (count, mean, p50, p95, p99, max in milliseconds);
- ``show agent trace [N]`` — the most recent N span records (default 50);
- ``show agent status`` — observability flags and buffer sizes;
- ``show agent faults`` — armed fault-injection specs, fire counts, and
  the active retry policy (the robustness layer's knobs);
- ``reset agent stats`` / ``reset agent trace`` — zero the registry /
  clear the span buffer;
- ``set agent stats on|off`` / ``set agent trace on|off`` — toggle the
  metrics registry / span tracing at runtime;
- ``set agent faults on|off`` — re-arm / disarm the fault injector
  without forgetting its plan.
"""

from __future__ import annotations

import re

from repro.obs.metrics import HistogramSummary
from repro.sqlengine.results import BatchResult, ResultSet

from .errors import AgentError

_USAGE = (
    "unknown agent command; expected one of: "
    "show agent stats | show agent trace [N] | show agent status | "
    "show agent faults | "
    "reset agent stats | reset agent trace | "
    "set agent stats on|off | set agent trace on|off | "
    "set agent faults on|off"
)

_COMMAND = re.compile(
    r"^\s*(?:"
    r"(?P<show_stats>show\s+agent\s+stats)"
    r"|(?P<show_trace>show\s+agent\s+trace(?:\s+(?P<trace_n>\d+))?)"
    r"|(?P<show_status>show\s+agent\s+status)"
    r"|(?P<show_faults>show\s+agent\s+faults)"
    r"|(?P<reset_stats>reset\s+agent\s+stats)"
    r"|(?P<reset_trace>reset\s+agent\s+trace)"
    r"|set\s+agent\s+(?P<set_target>stats|trace|faults)\s+(?P<set_value>on|off)"
    r")\s*;?\s*$",
    re.IGNORECASE,
)

#: Default row count for ``show agent trace``.
DEFAULT_TRACE_ROWS = 50


class AgentAdmin:
    """Executes agent introspection commands against the agent's own
    metrics registry and pipeline trace."""

    def __init__(self, agent):
        self.agent = agent

    # ------------------------------------------------------------------
    # entry point

    def handle(self, sql: str, session=None) -> BatchResult:
        match = _COMMAND.match(sql)
        if match is None:
            raise AgentError(_USAGE)
        if match.group("show_stats"):
            return self._show_stats()
        if match.group("show_trace"):
            count = int(match.group("trace_n") or DEFAULT_TRACE_ROWS)
            return self._show_trace(count)
        if match.group("show_status"):
            return self._show_status()
        if match.group("show_faults"):
            return self._show_faults()
        if match.group("reset_stats"):
            return self._reset_stats()
        if match.group("reset_trace"):
            return self._reset_trace()
        target = match.group("set_target").lower()
        value = match.group("set_value").lower() == "on"
        return self._set_flag(target, value)

    # ------------------------------------------------------------------
    # show

    def _show_stats(self) -> BatchResult:
        counters = ResultSet(columns=["metric", "labels", "value"])
        latency = ResultSet(columns=[
            "metric", "labels", "count",
            "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms",
        ])
        for family in self.agent.metrics.families():
            for labels, metric in family.children():
                rendered = _render_labels(labels)
                value = metric.value()
                if isinstance(value, HistogramSummary):
                    latency.rows.append([
                        family.name, rendered, value.count,
                        round(value.mean * 1e3, 4),
                        round(value.p50 * 1e3, 4),
                        round(value.p95 * 1e3, 4),
                        round(value.p99 * 1e3, 4),
                        round(value.max * 1e3, 4),
                    ])
                else:
                    counters.rows.append([family.name, rendered, value])
        result = BatchResult(result_sets=[counters, latency])
        if not self.agent.metrics.enabled:
            result.messages.append(
                "Agent stats collection is off; enable with "
                "'set agent stats on'.")
        return result

    def _show_trace(self, count: int) -> BatchResult:
        trace = self.agent.trace
        rows = ResultSet(columns=[
            "seq", "parent", "step", "detail", "duration_ms",
        ])
        for record in trace.tail(count):
            duration = record.duration
            rows.rows.append([
                record.seq,
                record.parent,
                "  " * record.depth + record.step,
                record.detail,
                None if duration is None else round(duration * 1e3, 4),
            ])
        result = BatchResult(result_sets=[rows])
        if not trace.enabled:
            result.messages.append(
                "Agent tracing is off; enable with 'set agent trace on'.")
        return result

    def _show_status(self) -> BatchResult:
        metrics = self.agent.metrics
        trace = self.agent.trace
        status = ResultSet(
            columns=["setting", "value"],
            rows=[
                ["stats", "on" if metrics.enabled else "off"],
                ["trace", "on" if trace.enabled else "off"],
                ["metric_families", len(metrics.families())],
                ["trace_records", len(trace.records)],
                ["trace_capacity", trace.max_records],
            ],
        )
        return BatchResult(result_sets=[status])

    def _show_faults(self) -> BatchResult:
        faults = self.agent.faults
        specs = ResultSet(
            columns=["point", "kind", "mode", "times", "match", "seen",
                     "fired"])
        for row in faults.describe():
            specs.rows.append([
                row["point"], row["kind"], row["mode"], row["times"],
                row["match"], row["seen"], row["fired"],
            ])
        policy = self.agent.retry_policy
        retry = ResultSet(
            columns=["setting", "value"],
            rows=[
                ["injector", "armed" if faults.armed else "disarmed"],
                ["faults_injected", faults.injected_count],
                ["retry_max_attempts", policy.max_attempts],
                ["retry_backoff_s", policy.backoff],
                ["retry_multiplier", policy.multiplier],
                ["retry_timeout_s",
                 "unbounded" if policy.timeout is None else policy.timeout],
            ],
        )
        result = BatchResult(result_sets=[specs, retry])
        if not faults.plan.specs:
            result.messages.append(
                "No fault plan armed; pass faults=FaultPlan(...) when "
                "constructing the agent.")
        return result

    # ------------------------------------------------------------------
    # reset / set

    def _reset_stats(self) -> BatchResult:
        self.agent.metrics.reset()
        return BatchResult(messages=["Agent statistics reset."])

    def _reset_trace(self) -> BatchResult:
        self.agent.trace.clear()
        return BatchResult(messages=["Agent trace cleared."])

    def _set_flag(self, target: str, value: bool) -> BatchResult:
        if target == "stats":
            self.agent.metrics.enabled = value
        elif target == "faults":
            if value:
                self.agent.faults.arm()
            else:
                self.agent.faults.disarm()
            state = "armed" if value else "disarmed"
            return BatchResult(messages=[f"Agent fault injection {state}."])
        else:
            self.agent.trace.enabled = value
        state = "on" if value else "off"
        return BatchResult(messages=[f"Agent {target} collection {state}."])


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    return ",".join(f"{key}={value}" for key, value in labels.items())
