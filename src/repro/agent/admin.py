"""Operator introspection commands — the agent's ``sp_monitor`` analogue.

The Language Filter routes ``show/reset/set/export agent ...`` and
``explain trigger ...`` commands here; answers come back as ordinary
result sets and messages, so *any* client that can issue SQL can inspect
the agent — without touching the DBMS engine (the paper's core
transparency constraint).

Commands:

- ``show agent stats [top [N]]`` — two result sets: counters/gauges,
  then latency histogram summaries (count, mean, p50, p95, p99, max in
  milliseconds); ``top N`` sorts by value/count and keeps the N largest
  rows of each set;
- ``show agent top [rules|sessions] [N]`` — the N most expensive rules
  and/or sessions from the resource-accounting plane (rows scanned,
  cache hits, events, actions, wall time);
- ``show agent slow [N]`` — the flight recorder's most recent N slow
  operations (arm with ``set agent slowlog <ms>``), each with its span
  and provenance slice sizes and the EXPLAIN rendering of the offending
  statement's optimized plan (NULL when nothing in it is plannable);
- ``show agent health`` — the watchdog's ok/degraded/critical report:
  per-rule findings plus the sampled values they were judged on;
- ``show agent trace [N]`` — the most recent N span records (default 50);
- ``show agent trace <trace_id>`` — the full cross-thread span tree of
  one stored trace (queue-wait and per-action spans included), looked up
  by the trace id stamped on telemetry lines and slow-op records;
- ``trace next <N>`` — arm tracing for the next N client commands, then
  restore the previous on/off state (bounded causal sampling);
- ``show agent events [N]`` — the most recent N provenance records as
  lineage trees (default 20);
- ``show agent graph`` — the full LED event graph: every node, its
  operator kind, children, active contexts, rules, and fire counts;
- ``show agent status`` — observability flags and buffer sizes;
- ``show agent faults`` — armed fault-injection specs, fire counts, and
  the active retry policy (the robustness layer's knobs);
- ``show agent cache [N]`` — the server's statement-plan cache counters
  (hits, misses, evictions, epoch invalidations, hit rate, plan-memo
  hits/misses), index-scan and notification-coalescing totals, the N
  hottest cached batches (each flagged ``plan`` when a DAG plan memo is
  live at the current schema epoch, ``parse`` when only the parsed
  statements are cached, with its per-entry hit count), then the N
  busiest table indexes;
- ``reset agent cache`` — clear the plan cache and zero its counters
  (the hot-path equivalent of ``reset agent stats``);
- ``explain trigger <name>`` — the trigger's rule attributes plus its
  event subgraph with per-node stats (fires, consumed occurrences, p95
  propagation latency) from the provenance journal;
- ``reset agent stats|trace|provenance`` — zero the registry / clear the
  span buffer / clear the journal;
- ``reset agent accounting`` — drop the per-session/per-rule totals;
- ``reset agent slow`` — clear the flight recorder's ring;
- ``set agent stats|trace|provenance on|off`` — toggle each sink at
  runtime;
- ``set agent accounting on|off`` — toggle the resource-accounting
  plane (on by default; plain int adds per hook);
- ``set agent slowlog <ms>|off`` — arm the flight recorder at a
  threshold in milliseconds (fractions allowed), or disarm it;
- ``set agent faults on|off`` — re-arm / disarm the fault injector
  without forgetting its plan;
- ``show agent sessions [N]`` — the newest N gateway sessions with their
  scheduling state, queue depth, and per-session command counters;
- ``show agent workers`` — the gateway worker pool (size, live threads,
  completed commands) and the engine lock manager's batch counters;
- ``set agent workers <N>`` — resize the worker pool by replacement
  (0 removes it: commands run inline on the client's thread);
- ``show agent sites`` — sharded-GED membership: per-site status, owned
  partition sizes, routed/replayed counters, and router totals (only
  when this agent participates in a :class:`~repro.ged.ShardedGed`);
- ``export agent telemetry`` — snapshot metrics + spans + provenance
  into the attached :class:`~repro.obs.TelemetryExporter`'s JSONL file.

Numeric ``[N]`` arguments are validated: a non-numeric value yields a
one-row error result set (not a raised exception), and values are
clamped to the underlying buffer's capacity.
"""

from __future__ import annotations

import re

from repro.obs.metrics import HistogramSummary
from repro.sqlengine.results import BatchResult, ResultSet

from .errors import AgentError
from .naming import expand_name

_USAGE = (
    "unknown agent command; expected one of: "
    "show agent stats [top [N]] | show agent trace [N|<trace_id>] | "
    "trace next <N> | show agent events [N] | "
    "show agent graph | show agent status | show agent faults | "
    "show agent cache [N] | "
    "show agent top [rules|sessions] [N] | show agent slow [N] | "
    "show agent health | show agent sessions [N] | show agent workers | "
    "show agent sites | "
    "explain trigger <name> | "
    "reset agent stats | reset agent trace | reset agent provenance | "
    "reset agent cache | reset agent accounting | reset agent slow | "
    "set agent stats on|off | set agent trace on|off | "
    "set agent provenance on|off | set agent faults on|off | "
    "set agent accounting on|off | set agent slowlog <ms>|off | "
    "set agent workers <N> | export agent telemetry"
)

_COMMAND = re.compile(
    r"^\s*(?:"
    r"(?P<show_stats>show\s+agent\s+stats"
    r"(?:\s+(?P<stats_top>top)(?:\s+(?P<stats_n>[^\s;]+))?)?)"
    r"|(?P<show_trace>show\s+agent\s+trace(?:\s+(?P<trace_n>[^\s;]+))?)"
    r"|(?P<trace_next>trace\s+next(?:\s+(?P<trace_next_n>[^\s;]+))?)"
    r"|(?P<show_events>show\s+agent\s+events(?:\s+(?P<events_n>[^\s;]+))?)"
    r"|(?P<show_graph>show\s+agent\s+graph)"
    r"|(?P<show_status>show\s+agent\s+status)"
    r"|(?P<show_faults>show\s+agent\s+faults)"
    r"|(?P<show_cache>show\s+agent\s+cache(?:\s+(?P<cache_n>[^\s;]+))?)"
    r"|(?P<show_top>show\s+agent\s+top"
    r"(?:\s+(?P<top_scope>rules|sessions))?(?:\s+(?P<top_n>[^\s;]+))?)"
    r"|(?P<show_slow>show\s+agent\s+slow(?:\s+(?P<slow_n>[^\s;]+))?)"
    r"|(?P<show_health>show\s+agent\s+health)"
    r"|(?P<show_sessions>show\s+agent\s+sessions(?:\s+(?P<sessions_n>[^\s;]+))?)"
    r"|(?P<show_workers>show\s+agent\s+workers)"
    r"|(?P<show_sites>show\s+agent\s+sites)"
    r"|explain\s+trigger\s+(?P<explain_name>[A-Za-z_#][\w.$#]*)"
    r"|(?P<reset_stats>reset\s+agent\s+stats)"
    r"|(?P<reset_trace>reset\s+agent\s+trace)"
    r"|(?P<reset_prov>reset\s+agent\s+provenance)"
    r"|(?P<reset_cache>reset\s+agent\s+cache)"
    r"|(?P<reset_accounting>reset\s+agent\s+accounting)"
    r"|(?P<reset_slow>reset\s+agent\s+slow)"
    r"|set\s+agent\s+slowlog\s+(?P<slowlog_value>[^\s;]+)"
    r"|set\s+agent\s+workers\s+(?P<workers_value>[^\s;]+)"
    r"|set\s+agent\s+(?P<set_target>stats|trace|provenance|faults"
    r"|accounting)\s+(?P<set_value>on|off)"
    r"|(?P<export>export\s+agent\s+telemetry)"
    r")\s*;?\s*$",
    re.IGNORECASE,
)

#: Default row count for ``show agent trace``.
DEFAULT_TRACE_ROWS = 50
#: Default row count for ``show agent events``.
DEFAULT_EVENT_ROWS = 20
#: Default row count for the index listing of ``show agent cache``.
DEFAULT_INDEX_ROWS = 20
#: Default row count for ``show agent top`` and ``show agent stats top``.
DEFAULT_TOP_ROWS = 10
#: Default row count for ``show agent slow``.
DEFAULT_SLOW_ROWS = 10
#: Default row count for ``show agent sessions``.
DEFAULT_SESSION_ROWS = 20
#: Hard ceiling for ``set agent workers`` (threads are not free).
MAX_WORKERS = 128

#: Operator-node class -> the Snoop operator it implements.
_NODE_KINDS = {
    "PrimitiveEventNode": "primitive",
    "OrNode": "OR",
    "AndNode": "AND",
    "SeqNode": "SEQ",
    "NotNode": "NOT",
    "AperiodicNode": "A",
    "AperiodicStarNode": "A*",
    "PeriodicNode": "P",
    "PeriodicStarNode": "P*",
    "PlusNode": "PLUS",
}


def _is_int(text: str) -> bool:
    """Whether a ``show agent trace`` argument is a row count (numeric)
    rather than a trace id."""
    try:
        int(text)
    except ValueError:
        return False
    return True


#: Max characters of cached-statement text shown by ``show agent cache``.
STATEMENT_CLIP = 80


def _clip(text: str, limit: int = STATEMENT_CLIP) -> str:
    """One-line, length-capped rendering of a cached batch's SQL text."""
    flat = " ".join(text.split())
    if len(flat) <= limit:
        return flat
    return flat[:limit - 3] + "..."


def _error_result(message: str) -> BatchResult:
    """A one-row error result set (argument problems are answered, not
    raised: the client's batch keeps working)."""
    return BatchResult(result_sets=[
        ResultSet(columns=["error"], rows=[[message]])])


class AgentAdmin:
    """Executes agent introspection commands against the agent's own
    metrics registry, pipeline trace, and provenance journal."""

    def __init__(self, agent):
        self.agent = agent

    # ------------------------------------------------------------------
    # entry point

    def handle(self, sql: str, session=None) -> BatchResult:
        match = _COMMAND.match(sql)
        if match is None:
            raise AgentError(_USAGE)
        if match.group("show_stats"):
            if match.group("stats_top") is None:
                return self._show_stats()
            count, error = self._parse_count(
                match.group("stats_n"), DEFAULT_TOP_ROWS,
                max(1, self._count_metric_rows()), "show agent stats top")
            return error if error is not None else self._show_stats(count)
        if match.group("show_trace"):
            arg = match.group("trace_n")
            if arg is not None and not _is_int(arg):
                return self._show_trace_tree(arg)
            count, error = self._parse_count(
                arg, DEFAULT_TRACE_ROWS,
                self.agent.trace.max_records, "show agent trace")
            return error if error is not None else self._show_trace(count)
        if match.group("trace_next"):
            return self._trace_next(match.group("trace_next_n"))
        if match.group("show_events"):
            count, error = self._parse_count(
                match.group("events_n"), DEFAULT_EVENT_ROWS,
                self.agent.journal.capacity, "show agent events")
            return error if error is not None else self._show_events(count)
        if match.group("show_graph"):
            return self._show_graph()
        if match.group("show_status"):
            return self._show_status()
        if match.group("show_faults"):
            return self._show_faults()
        if match.group("show_cache"):
            count, error = self._parse_count(
                match.group("cache_n"), DEFAULT_INDEX_ROWS,
                max(1, self._count_indexes(),
                    self.agent.server.plan_cache.stats()["size"]),
                "show agent cache")
            return error if error is not None else self._show_cache(count)
        if match.group("show_top"):
            scope = (match.group("top_scope") or "").lower()
            accounting = self.agent.accounting
            tracked = max(
                accounting.rule_count() if scope != "sessions" else 0,
                accounting.session_count() if scope != "rules" else 0)
            count, error = self._parse_count(
                match.group("top_n"), DEFAULT_TOP_ROWS,
                max(1, tracked), "show agent top")
            return error if error is not None else self._show_top(
                scope, count)
        if match.group("show_slow"):
            count, error = self._parse_count(
                match.group("slow_n"), DEFAULT_SLOW_ROWS,
                self.agent.flightrec.capacity, "show agent slow")
            return error if error is not None else self._show_slow(count)
        if match.group("show_health"):
            return self._show_health()
        if match.group("show_sessions"):
            count, error = self._parse_count(
                match.group("sessions_n"), DEFAULT_SESSION_ROWS,
                max(1, len(self.agent.gateway.session_snapshots())),
                "show agent sessions")
            return error if error is not None else self._show_sessions(count)
        if match.group("show_workers"):
            return self._show_workers()
        if match.group("show_sites"):
            return self._show_sites()
        if match.group("explain_name"):
            return self._explain_trigger(match.group("explain_name"), session)
        if match.group("reset_stats"):
            return self._reset_stats()
        if match.group("reset_trace"):
            return self._reset_trace()
        if match.group("reset_prov"):
            return self._reset_provenance()
        if match.group("reset_cache"):
            return self._reset_cache()
        if match.group("reset_accounting"):
            return self._reset_accounting()
        if match.group("reset_slow"):
            return self._reset_slow()
        if match.group("export"):
            return self._export_telemetry()
        if match.group("slowlog_value") is not None:
            return self._set_slowlog(match.group("slowlog_value"))
        if match.group("workers_value") is not None:
            return self._set_workers(match.group("workers_value"))
        target = match.group("set_target").lower()
        value = match.group("set_value").lower() == "on"
        return self._set_flag(target, value)

    @staticmethod
    def _parse_count(text: str | None, default: int, capacity: int,
                     command: str) -> tuple[int, BatchResult | None]:
        """Validate an optional ``[N]`` argument: non-numeric input is
        answered with a one-row error result set; values are clamped to
        ``[1, capacity]``."""
        if text is None:
            return default, None
        try:
            count = int(text)
        except ValueError:
            return 0, _error_result(
                f"'{command}' expects a row count, got {text!r}")
        if count < 1:
            count = 1
        return min(count, capacity), None

    # ------------------------------------------------------------------
    # show

    def _count_metric_rows(self) -> int:
        """Total metric children across every family (the ``stats top``
        clamp capacity)."""
        return sum(
            len(family.children())
            for family in self.agent.metrics.families())

    def _show_stats(self, top: int | None = None) -> BatchResult:
        counters = ResultSet(columns=["metric", "labels", "value"])
        latency = ResultSet(columns=[
            "metric", "labels", "count",
            "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms",
        ])
        for family in self.agent.metrics.families():
            for labels, metric in family.children():
                rendered = _render_labels(labels)
                value = metric.value()
                if isinstance(value, HistogramSummary):
                    latency.rows.append([
                        family.name, rendered, value.count,
                        round(value.mean * 1e3, 4),
                        round(value.p50 * 1e3, 4),
                        round(value.p95 * 1e3, 4),
                        round(value.p99 * 1e3, 4),
                        round(value.max * 1e3, 4),
                    ])
                else:
                    counters.rows.append([family.name, rendered, value])
        if top is not None:
            # Busiest first: counters by value, histograms by sample
            # count (ties break on name/labels for determinism).
            counters.rows.sort(key=lambda row: (-row[2], row[0], row[1]))
            latency.rows.sort(key=lambda row: (-row[2], row[0], row[1]))
            counters.rows = counters.rows[:top]
            latency.rows = latency.rows[:top]
        result = BatchResult(result_sets=[counters, latency])
        if not self.agent.metrics.enabled:
            result.messages.append(
                "Agent stats collection is off; enable with "
                "'set agent stats on'.")
        return result

    def _show_trace(self, count: int) -> BatchResult:
        trace = self.agent.trace
        rows = ResultSet(columns=[
            "seq", "parent", "step", "detail", "duration_ms",
        ])
        for record in trace.tail(count):
            duration = record.duration
            rows.rows.append([
                record.seq,
                record.parent,
                "  " * record.depth + record.step,
                record.detail,
                None if duration is None else round(duration * 1e3, 4),
            ])
        result = BatchResult(result_sets=[rows])
        if not trace.enabled:
            result.messages.append(
                "Agent tracing is off; enable with 'set agent trace on'.")
        return result

    def _show_trace_tree(self, trace_id: str) -> BatchResult:
        """The full cross-thread span tree of one stored trace: every
        pinned span (client-thread, worker-thread queue-wait, detached
        action threads, notification listener) indented by its depth in
        the shared tree."""
        trace = self.agent.trace
        spans = trace.spans_for(trace_id)
        if not spans:
            return _error_result(
                f"no stored trace with id {trace_id!r}; ids appear in "
                "telemetry lines, 'show agent slow', and histogram "
                "exemplars")
        rows = ResultSet(columns=[
            "seq", "parent", "trace_id", "step", "detail", "duration_ms",
        ])
        for record in spans:
            duration = record.duration
            rows.rows.append([
                record.seq,
                record.parent,
                record.trace_id,
                "  " * record.depth + record.step,
                record.detail,
                None if duration is None else round(duration * 1e3, 4),
            ])
        return BatchResult(
            result_sets=[rows],
            messages=[f"Trace {trace_id}: {len(spans)} span(s)."])

    def _trace_next(self, text: str | None) -> BatchResult:
        """Arm the ``trace next <N>`` sampling window."""
        if text is None:
            return _error_result(
                "'trace next' expects a command count, e.g. 'trace next 5'")
        try:
            count = int(text)
        except ValueError:
            return _error_result(
                f"'trace next' expects a command count, got {text!r}")
        if count < 1:
            return _error_result(
                f"'trace next' expects a count >= 1, got {count}")
        self.agent.trace.sample_next(count)
        return BatchResult(messages=[
            f"Tracing armed for the next {count} client command(s)."])

    def _show_events(self, count: int) -> BatchResult:
        """The most recent provenance records, indented into lineage
        trees (a record nests under its first parent when that parent is
        within the displayed window)."""
        journal = self.agent.journal
        window = journal.tail(count)
        depths: dict[int, int] = {}
        rows = ResultSet(columns=[
            "seq", "kind", "record", "context", "detail", "parents",
        ])
        for record in window:
            parent_depth = (
                depths.get(record.parents[0]) if record.parents else None)
            depth = 0 if parent_depth is None else parent_depth + 1
            depths[record.seq] = depth
            rows.rows.append([
                record.seq,
                record.kind,
                "  " * depth + record.name,
                record.context,
                record.detail,
                ",".join(str(parent) for parent in record.parents),
            ])
        result = BatchResult(result_sets=[rows])
        if not journal.enabled:
            result.messages.append(
                "Agent provenance is off; enable with "
                "'set agent provenance on'.")
        return result

    def _show_graph(self) -> BatchResult:
        """Dump the full LED event graph: one row per (node, context)."""
        journal = self.agent.journal
        rows = ResultSet(columns=[
            "event", "kind", "children", "context", "fires", "consumed",
            "rules",
        ])
        led = self.agent.led
        for name in sorted(led.events):
            node = led.events[name]
            kind = _NODE_KINDS.get(type(node).__name__, type(node).__name__)
            children = ", ".join(
                f"{role}={child.name}" for role, child in node.role_children())
            rules = ", ".join(rule.name for rule in led.rules_for(node.name))
            for context in _node_contexts(node):
                summary = journal.node_summary(node.name, context)
                rows.rows.append([
                    node.name, kind, children, context,
                    summary["fires"] if summary else 0,
                    summary["consumed"] if summary else 0,
                    rules,
                ])
        result = BatchResult(result_sets=[rows])
        if not journal.enabled:
            result.messages.append(
                "Agent provenance is off; enable with "
                "'set agent provenance on'.")
        return result

    def _show_status(self) -> BatchResult:
        metrics = self.agent.metrics
        trace = self.agent.trace
        journal = self.agent.journal
        exporter = self.agent.exporter
        status = ResultSet(
            columns=["setting", "value"],
            rows=[
                ["stats", "on" if metrics.enabled else "off"],
                ["trace", "on" if trace.enabled else "off"],
                ["provenance", "on" if journal.enabled else "off"],
                ["metric_families", len(metrics.families())],
                ["trace_records", len(trace.records)],
                ["trace_capacity", trace.max_records],
                ["trace_sampling", trace.sampling_remaining()],
                ["traces_stored", trace.trace_count()],
                ["journal_records", len(journal)],
                ["journal_capacity", journal.capacity],
                ["accounting",
                 "on" if self.agent.accounting.enabled else "off"],
                ["accounted_sessions", self.agent.accounting.session_count()],
                ["accounted_rules", self.agent.accounting.rule_count()],
                ["slowlog_ms",
                 "off" if not self.agent.flightrec.armed
                 else self.agent.flightrec.threshold_ms],
                ["slow_ops", len(self.agent.flightrec)],
                ["exporter",
                 "none" if exporter is None else exporter.path],
            ],
        )
        return BatchResult(result_sets=[status])

    def _show_faults(self) -> BatchResult:
        faults = self.agent.faults
        specs = ResultSet(
            columns=["point", "kind", "mode", "times", "match", "seen",
                     "fired"])
        for row in faults.describe():
            specs.rows.append([
                row["point"], row["kind"], row["mode"], row["times"],
                row["match"], row["seen"], row["fired"],
            ])
        policy = self.agent.retry_policy
        retry = ResultSet(
            columns=["setting", "value"],
            rows=[
                ["injector", "armed" if faults.armed else "disarmed"],
                ["faults_injected", faults.injected_count],
                ["retry_max_attempts", policy.max_attempts],
                ["retry_backoff_s", policy.backoff],
                ["retry_multiplier", policy.multiplier],
                ["retry_timeout_s",
                 "unbounded" if policy.timeout is None else policy.timeout],
            ],
        )
        result = BatchResult(result_sets=[specs, retry])
        if not faults.plan.specs:
            result.messages.append(
                "No fault plan armed; pass faults=FaultPlan(...) when "
                "constructing the agent.")
        return result

    def _count_indexes(self) -> int:
        """Total table indexes across every database on the server."""
        total = 0
        for database in self.agent.server.catalog.databases.values():
            for table in database.tables.values():
                total += len(table.indexes)
        return total

    def _show_cache(self, count: int) -> BatchResult:
        """Hot-path introspection: plan-cache counters, index-scan and
        coalescing totals, the ``count`` hottest cached batch entries
        (plan vs parse), then the ``count`` busiest table indexes."""
        server = self.agent.server
        stats = server.plan_cache.stats()
        summary = ResultSet(
            columns=["setting", "value"],
            rows=[
                ["plan_cache", "on" if stats["enabled"] else "off"],
                ["plan_cache_size", stats["size"]],
                ["plan_cache_capacity", stats["capacity"]],
                ["plan_cache_hits", stats["hits"]],
                ["plan_cache_misses", stats["misses"]],
                ["plan_cache_evictions", stats["evictions"]],
                ["plan_cache_invalidations", stats["invalidations"]],
                ["plan_cache_hit_rate", stats["hit_rate"]],
                *[
                    [f"plan_cache_{origin}_{field}", data[field]]
                    for origin, data in stats["origins"].items()
                    for field in ("hits", "misses", "hit_rate")
                ],
                ["plan_memo_size", stats["plans"]],
                ["plan_memo_hits", stats["plan_hits"]],
                ["plan_memo_misses", stats["plan_misses"]],
                ["schema_epoch", server.catalog.schema_epoch],
                ["index_scans", server.index_scans],
                ["coalesced_payloads", self.agent.notifier.coalesced_payloads],
                ["coalesced_events", self.agent.notifier.coalesced_events],
            ],
        )
        epoch = server.catalog.schema_epoch
        entry_rows = server.plan_cache.entry_rows(count, epoch)
        cached = ResultSet(
            columns=["statement", "kind", "hits"],
            rows=[[_clip(text), kind, hits]
                  for text, kind, hits in entry_rows],
        )
        entries = []
        for db_name in sorted(server.catalog.databases):
            database = server.catalog.databases[db_name]
            for table in database.tables.values():
                for index in table.indexes.values():
                    entries.append([
                        f"{database.name}.{table.qualified_name}",
                        index.name,
                        index.column,
                        "yes" if index.unique else "no",
                        index.rebuild_count,
                    ])
        # The busiest (most-rebuilt) indexes are the interesting ones.
        entries.sort(key=lambda entry: (-entry[4], entry[0], entry[1]))
        indexes = ResultSet(
            columns=["table", "index", "column", "unique", "rebuilds"],
            rows=entries[:count],
        )
        result = BatchResult(result_sets=[summary, cached, indexes])
        if stats["size"] > count:
            result.messages.append(
                f"Showing {count} of {stats['size']} cached batches; "
                f"'show agent cache {stats['size']}' lists all.")
        if len(entries) > count:
            result.messages.append(
                f"Showing {count} of {len(entries)} indexes; "
                f"'show agent cache {len(entries)}' lists all.")
        return result

    # ------------------------------------------------------------------
    # health plane

    def _show_top(self, scope: str, count: int) -> BatchResult:
        """The most expensive rules and/or sessions by wall time."""
        accounting = self.agent.accounting
        sets: list[ResultSet] = []
        if scope in ("", "rules"):
            rules = ResultSet(columns=[
                "rule", "actions", "errors", "action_ms", "max_ms",
                "sql_statements", "rows_scanned", "plan_hits",
                "plan_misses", "events", "detections",
            ])
            for totals in accounting.top_rules(count):
                rules.rows.append([
                    totals.rule, totals.actions, totals.action_errors,
                    round(totals.seconds * 1e3, 4),
                    round(totals.max_seconds * 1e3, 4),
                    totals.sql_statements, totals.rows_scanned,
                    totals.plan_cache_hits, totals.plan_cache_misses,
                    totals.events_raised, totals.detections,
                ])
            sets.append(rules)
        if scope in ("", "sessions"):
            sessions = ResultSet(columns=[
                "session", "user", "database", "commands", "total_ms",
                "max_ms", "sql_statements", "rows_scanned", "plan_hits",
                "plan_misses", "events", "actions", "action_ms",
            ])
            for totals in accounting.top_sessions(count):
                sessions.rows.append([
                    totals.session_id, totals.user, totals.database,
                    totals.commands,
                    round(totals.seconds * 1e3, 4),
                    round(totals.max_seconds * 1e3, 4),
                    totals.sql_statements, totals.rows_scanned,
                    totals.plan_cache_hits, totals.plan_cache_misses,
                    totals.events_raised, totals.actions,
                    round(totals.action_seconds * 1e3, 4),
                ])
            sets.append(sessions)
        result = BatchResult(result_sets=sets)
        if not accounting.enabled:
            result.messages.append(
                "Agent accounting is off; enable with "
                "'set agent accounting on'.")
        return result

    def _show_slow(self, count: int) -> BatchResult:
        """The flight recorder's most recent slow operations."""
        flightrec = self.agent.flightrec
        rows = ResultSet(columns=[
            "seq", "kind", "duration_ms", "threshold_ms", "session",
            "user", "statement", "trace_id", "rows_scanned", "actions",
            "spans", "provenance", "plan",
        ])
        for record in flightrec.tail(count):
            counters = record.counters
            rows.rows.append([
                record.seq, record.kind, record.duration_ms,
                record.threshold_ms, record.session_id, record.user,
                record.statement, record.trace_id,
                counters.get("rows_scanned", 0),
                counters.get("actions", 0), len(record.spans),
                len(record.provenance), record.plan,
            ])
        result = BatchResult(result_sets=[rows])
        if not flightrec.armed:
            result.messages.append(
                "Slow-op capture is disarmed; arm with "
                "'set agent slowlog <ms>'.")
        return result

    def _show_health(self) -> BatchResult:
        """The watchdog report: status, findings, sampled values."""
        report = self.agent.health()
        status = ResultSet(columns=["status"], rows=[[report.status]])
        findings = ResultSet(columns=[
            "rule", "severity", "status", "value", "threshold",
            "direction", "description",
        ])
        for finding in report.findings:
            findings.rows.append([
                finding.rule, finding.severity, finding.status,
                round(finding.value, 4), finding.threshold,
                finding.direction, finding.description,
            ])
        sample = ResultSet(
            columns=["sample", "value"],
            rows=[[key, round(value, 6) if isinstance(value, float)
                   else value]
                  for key, value in sorted(report.sample.items())],
        )
        return BatchResult(result_sets=[status, findings, sample])

    # ------------------------------------------------------------------
    # explain trigger

    def _explain_trigger(self, name: str, session) -> BatchResult:
        trigger = self._find_trigger(name, session)
        if trigger is None:
            return _error_result(f"ECA trigger '{name}' does not exist")
        journal = self.agent.journal
        led = self.agent.led
        rule = led.rules.get(trigger.rule_name)
        runtime = self.agent.runtime_for_rule(trigger.rule_name)

        summary = ResultSet(
            columns=["setting", "value"],
            rows=[
                ["trigger", trigger.internal],
                ["event", trigger.event_internal],
                ["context", trigger.context.value],
                ["coupling", trigger.coupling.value],
                ["priority", trigger.priority],
                ["enabled", "yes" if runtime is None or runtime.enabled
                 else "no"],
                ["inline", "yes" if runtime is not None and runtime.inline
                 else "no"],
                ["fire_count", rule.fire_count if rule is not None else 0],
                ["last_fired_at",
                 rule.last_fired_at if rule is not None else None],
                ["last_trace", self._last_action_trace(trigger)],
            ],
        )

        nodes = ResultSet(columns=[
            "node", "kind", "role", "context", "fires", "consumed",
            "latency_n", "p95_ms", "rules",
        ])
        root = led.events.get(trigger.event_internal)
        if root is not None:
            self._walk_subgraph(root, "", 0, nodes, journal, set())
        result = BatchResult(result_sets=[summary, nodes])
        if root is None:
            # An inline IMMEDIATE trigger on a primitive event runs inside
            # the generated native trigger; there is no LED subgraph.
            result.messages.append(
                f"Event {trigger.event_internal} has no LED node "
                "(inline native-trigger execution).")
        if not journal.enabled:
            result.messages.append(
                "Agent provenance is off; per-node statistics need "
                "'set agent provenance on'.")
        return result

    def _last_action_trace(self, trigger) -> str | None:
        """The trace id of the trigger's most recent journaled action —
        the handle an operator feeds to ``show agent trace <id>`` to see
        the full causal tree behind the last firing."""
        from repro.obs.provenance import KIND_ACTION

        key = trigger.internal.lower()
        for record in reversed(self.agent.journal.snapshot()):
            if record.kind == KIND_ACTION and record.name.lower() == key:
                return record.trace_id
        return None

    def _find_trigger(self, name: str, session):
        """Resolve a trigger by client-visible name: expanded through the
        session first, then as-written, then by unique short name."""
        triggers = self.agent.eca_triggers
        candidates = [name]
        if session is not None:
            candidates.insert(
                0, expand_name(name, session.database, session.user))
        for candidate in candidates:
            trigger = triggers.get(candidate.lower())
            if trigger is not None:
                return trigger
        short = name.split(".")[-1].lower()
        matches = [
            trigger for trigger in triggers.values()
            if trigger.trigger_name.lower() == short
        ]
        return matches[0] if len(matches) == 1 else None

    def _walk_subgraph(self, node, role: str, depth: int,
                       rows: ResultSet, journal, seen: set) -> None:
        """DFS over a trigger's event subgraph: one row per
        (node, context) with the journal's per-node aggregates."""
        led = self.agent.led
        kind = _NODE_KINDS.get(type(node).__name__, type(node).__name__)
        rules = ", ".join(rule.name for rule in led.rules_for(node.name))
        for context in _node_contexts(node):
            summary = journal.node_summary(node.name, context)
            rows.rows.append([
                "  " * depth + node.name,
                kind,
                role,
                context,
                summary["fires"] if summary else 0,
                summary["consumed"] if summary else 0,
                summary["latency_count"] if summary else 0,
                round(summary["p95_ms"], 4) if summary else 0.0,
                rules,
            ])
        if id(node) in seen:
            return
        seen.add(id(node))
        for child_role, child in node.role_children():
            self._walk_subgraph(child, child_role, depth + 1, rows,
                                journal, seen)

    # ------------------------------------------------------------------
    # reset / set / export

    def _reset_stats(self) -> BatchResult:
        self.agent.metrics.reset()
        return BatchResult(messages=["Agent statistics reset."])

    def _reset_trace(self) -> BatchResult:
        self.agent.trace.clear()
        return BatchResult(messages=["Agent trace cleared."])

    def _reset_provenance(self) -> BatchResult:
        self.agent.journal.clear()
        return BatchResult(messages=["Agent provenance journal cleared."])

    def _reset_cache(self) -> BatchResult:
        server = self.agent.server
        server.plan_cache.clear()
        server.index_scans = 0
        return BatchResult(messages=["Agent plan cache cleared."])

    def _reset_accounting(self) -> BatchResult:
        self.agent.accounting.reset()
        return BatchResult(messages=["Agent accounting totals reset."])

    def _reset_slow(self) -> BatchResult:
        self.agent.flightrec.clear()
        return BatchResult(messages=["Agent slow-op recorder cleared."])

    def _set_slowlog(self, value: str) -> BatchResult:
        flightrec = self.agent.flightrec
        if value.lower() == "off":
            flightrec.threshold_ms = None
            return BatchResult(messages=["Agent slow-op capture disarmed."])
        try:
            threshold = float(value)
        except ValueError:
            return _error_result(
                f"'set agent slowlog' expects a threshold in ms or "
                f"'off', got {value!r}")
        if threshold < 0:
            return _error_result(
                f"'set agent slowlog' threshold must be >= 0, "
                f"got {value}")
        flightrec.threshold_ms = threshold
        return BatchResult(messages=[
            f"Agent slow-op capture armed at {threshold:g} ms."])

    def _show_sessions(self, count: int) -> BatchResult:
        """The newest ``count`` gateway sessions and their queue state."""
        rows = ResultSet(columns=[
            "session_id", "user", "database", "state", "queued",
            "enqueued", "executed", "backpressure_waits",
        ])
        snapshots = self.agent.gateway.session_snapshots()
        for snap in snapshots[:count]:
            rows.rows.append([
                snap["session_id"], snap["user"], snap["database"],
                snap["state"], snap["queued"], snap["enqueued"],
                snap["executed"], snap["backpressure_waits"],
            ])
        result = BatchResult(result_sets=[rows])
        result.messages.append(
            f"{len(snapshots)} gateway session(s); "
            f"worker pool size {self.agent.gateway.worker_count()}.")
        return result

    def _show_workers(self) -> BatchResult:
        """Worker-pool and engine lock-manager counters."""
        pool = self.agent.gateway.pool
        pool_rows = ResultSet(columns=[
            "pool", "size", "alive", "completed", "stopping"])
        if pool is not None:
            snap = pool.snapshot()
            pool_rows.rows.append([
                snap["name"], snap["size"], snap["alive"],
                snap["completed"], int(snap["stopping"])])
        locks = ResultSet(columns=["lock_stat", "value"])
        for name, value in sorted(
                self.agent.server.lock_manager.stats().items()):
            locks.rows.append([name, value])
        result = BatchResult(result_sets=[pool_rows, locks])
        if pool is None:
            result.messages.append(
                "No worker pool: commands run inline on the client's "
                "thread (enable with 'set agent workers <N>').")
        return result

    def _show_sites(self) -> BatchResult:
        """Sharded-GED membership: one row per site with its partition.

        Available when this agent participates in a
        :class:`~repro.ged.sharded.ShardedGed` (which sets the agent's
        ``ged_sites`` attribute on ``add_site``).
        """
        membership = getattr(self.agent, "ged_sites", None)
        if not membership:
            return _error_result(
                "this agent is not part of a sharded GED deployment")
        ged, here = membership
        rows = ResultSet(columns=[
            "site", "status", "composites", "imports_homed",
            "classes_owned", "routed", "replayed"])
        for row in ged.site_rows():
            rows.rows.append(list(row))
        totals = ResultSet(columns=["ged_stat", "value"])
        for name, value in (
                ("this_site", here),
                ("sharded", int(ged.sharded)),
                ("journal_entries", len(ged.journal)),
                ("global_rules", len(ged.rules)),
                ("firings", len(ged.firings)),
                ("suppressed_replays", ged.suppressed),
                ("deduplicated_firings", ged.deduped),
                ("skipped_down_deliveries", ged.skipped_down),
                ("site_failures", ged.failures),
                ("transport_sent", ged.transport.sent),
                ("transport_segments", ged.transport.segments),
                ("transport_rejected", ged.transport.rejected),
        ):
            totals.rows.append([name, value])
        return BatchResult(result_sets=[rows, totals])

    def _set_workers(self, value: str) -> BatchResult:
        try:
            count = int(value)
        except ValueError:
            return _error_result(
                f"'set agent workers' expects a thread count, got "
                f"{value!r}")
        if count < 0:
            return _error_result(
                f"'set agent workers' expects a count >= 0, got {count}")
        count = min(count, MAX_WORKERS)
        self.agent.gateway.set_workers(count)
        if count == 0:
            return BatchResult(messages=[
                "Agent worker pool removed; commands run inline."])
        return BatchResult(messages=[
            f"Agent worker pool resized to {count} thread(s)."])

    def _export_telemetry(self) -> BatchResult:
        if self.agent.exporter is None:
            return _error_result(
                "no telemetry exporter attached; pass "
                "exporter=TelemetryExporter(path) when constructing the "
                "agent")
        lines = self.agent.export_telemetry(label="admin")
        return BatchResult(messages=[
            f"Telemetry snapshot written: {lines} lines to "
            f"{self.agent.exporter.path}."])

    def _set_flag(self, target: str, value: bool) -> BatchResult:
        if target == "stats":
            self.agent.metrics.enabled = value
        elif target == "provenance":
            self.agent.journal.enabled = value
        elif target == "accounting":
            self.agent.accounting.enabled = value
        elif target == "faults":
            if value:
                self.agent.faults.arm()
            else:
                self.agent.faults.disarm()
            state = "armed" if value else "disarmed"
            return BatchResult(messages=[f"Agent fault injection {state}."])
        else:
            self.agent.trace.enabled = value
        state = "on" if value else "off"
        return BatchResult(messages=[f"Agent {target} collection {state}."])


def _node_contexts(node) -> list[str]:
    """The context rows a node contributes: ``-`` for primitives (raises
    are context-independent), the active contexts for composites."""
    if not node.role_children():
        return ["-"]
    contexts = sorted(context.value for context in node.active_contexts)
    return contexts or ["-"]


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    return ",".join(f"{key}={value}" for key, value in labels.items())
