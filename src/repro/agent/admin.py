"""Operator introspection commands — the agent's ``sp_monitor`` analogue.

The Language Filter routes ``show/reset/set/export agent ...`` and
``explain trigger ...`` commands here; answers come back as ordinary
result sets and messages, so *any* client that can issue SQL can inspect
the agent — without touching the DBMS engine (the paper's core
transparency constraint).

Commands:

- ``show agent stats`` — two result sets: counters/gauges, then latency
  histogram summaries (count, mean, p50, p95, p99, max in milliseconds);
- ``show agent trace [N]`` — the most recent N span records (default 50);
- ``show agent events [N]`` — the most recent N provenance records as
  lineage trees (default 20);
- ``show agent graph`` — the full LED event graph: every node, its
  operator kind, children, active contexts, rules, and fire counts;
- ``show agent status`` — observability flags and buffer sizes;
- ``show agent faults`` — armed fault-injection specs, fire counts, and
  the active retry policy (the robustness layer's knobs);
- ``show agent cache [N]`` — the server's statement-plan cache counters
  (hits, misses, evictions, epoch invalidations, hit rate), index-scan
  and notification-coalescing totals, then the N busiest table indexes;
- ``reset agent cache`` — clear the plan cache and zero its counters
  (the hot-path equivalent of ``reset agent stats``);
- ``explain trigger <name>`` — the trigger's rule attributes plus its
  event subgraph with per-node stats (fires, consumed occurrences, p95
  propagation latency) from the provenance journal;
- ``reset agent stats|trace|provenance`` — zero the registry / clear the
  span buffer / clear the journal;
- ``set agent stats|trace|provenance on|off`` — toggle each sink at
  runtime;
- ``set agent faults on|off`` — re-arm / disarm the fault injector
  without forgetting its plan;
- ``export agent telemetry`` — snapshot metrics + spans + provenance
  into the attached :class:`~repro.obs.TelemetryExporter`'s JSONL file.

Numeric ``[N]`` arguments are validated: a non-numeric value yields a
one-row error result set (not a raised exception), and values are
clamped to the underlying buffer's capacity.
"""

from __future__ import annotations

import re

from repro.obs.metrics import HistogramSummary
from repro.sqlengine.results import BatchResult, ResultSet

from .errors import AgentError
from .naming import expand_name

_USAGE = (
    "unknown agent command; expected one of: "
    "show agent stats | show agent trace [N] | show agent events [N] | "
    "show agent graph | show agent status | show agent faults | "
    "show agent cache [N] | "
    "explain trigger <name> | "
    "reset agent stats | reset agent trace | reset agent provenance | "
    "reset agent cache | "
    "set agent stats on|off | set agent trace on|off | "
    "set agent provenance on|off | set agent faults on|off | "
    "export agent telemetry"
)

_COMMAND = re.compile(
    r"^\s*(?:"
    r"(?P<show_stats>show\s+agent\s+stats)"
    r"|(?P<show_trace>show\s+agent\s+trace(?:\s+(?P<trace_n>[^\s;]+))?)"
    r"|(?P<show_events>show\s+agent\s+events(?:\s+(?P<events_n>[^\s;]+))?)"
    r"|(?P<show_graph>show\s+agent\s+graph)"
    r"|(?P<show_status>show\s+agent\s+status)"
    r"|(?P<show_faults>show\s+agent\s+faults)"
    r"|(?P<show_cache>show\s+agent\s+cache(?:\s+(?P<cache_n>[^\s;]+))?)"
    r"|explain\s+trigger\s+(?P<explain_name>[A-Za-z_#][\w.$#]*)"
    r"|(?P<reset_stats>reset\s+agent\s+stats)"
    r"|(?P<reset_trace>reset\s+agent\s+trace)"
    r"|(?P<reset_prov>reset\s+agent\s+provenance)"
    r"|(?P<reset_cache>reset\s+agent\s+cache)"
    r"|set\s+agent\s+(?P<set_target>stats|trace|provenance|faults)"
    r"\s+(?P<set_value>on|off)"
    r"|(?P<export>export\s+agent\s+telemetry)"
    r")\s*;?\s*$",
    re.IGNORECASE,
)

#: Default row count for ``show agent trace``.
DEFAULT_TRACE_ROWS = 50
#: Default row count for ``show agent events``.
DEFAULT_EVENT_ROWS = 20
#: Default row count for the index listing of ``show agent cache``.
DEFAULT_INDEX_ROWS = 20

#: Operator-node class -> the Snoop operator it implements.
_NODE_KINDS = {
    "PrimitiveEventNode": "primitive",
    "OrNode": "OR",
    "AndNode": "AND",
    "SeqNode": "SEQ",
    "NotNode": "NOT",
    "AperiodicNode": "A",
    "AperiodicStarNode": "A*",
    "PeriodicNode": "P",
    "PeriodicStarNode": "P*",
    "PlusNode": "PLUS",
}


def _error_result(message: str) -> BatchResult:
    """A one-row error result set (argument problems are answered, not
    raised: the client's batch keeps working)."""
    return BatchResult(result_sets=[
        ResultSet(columns=["error"], rows=[[message]])])


class AgentAdmin:
    """Executes agent introspection commands against the agent's own
    metrics registry, pipeline trace, and provenance journal."""

    def __init__(self, agent):
        self.agent = agent

    # ------------------------------------------------------------------
    # entry point

    def handle(self, sql: str, session=None) -> BatchResult:
        match = _COMMAND.match(sql)
        if match is None:
            raise AgentError(_USAGE)
        if match.group("show_stats"):
            return self._show_stats()
        if match.group("show_trace"):
            count, error = self._parse_count(
                match.group("trace_n"), DEFAULT_TRACE_ROWS,
                self.agent.trace.max_records, "show agent trace")
            return error if error is not None else self._show_trace(count)
        if match.group("show_events"):
            count, error = self._parse_count(
                match.group("events_n"), DEFAULT_EVENT_ROWS,
                self.agent.journal.capacity, "show agent events")
            return error if error is not None else self._show_events(count)
        if match.group("show_graph"):
            return self._show_graph()
        if match.group("show_status"):
            return self._show_status()
        if match.group("show_faults"):
            return self._show_faults()
        if match.group("show_cache"):
            count, error = self._parse_count(
                match.group("cache_n"), DEFAULT_INDEX_ROWS,
                max(1, self._count_indexes()), "show agent cache")
            return error if error is not None else self._show_cache(count)
        if match.group("explain_name"):
            return self._explain_trigger(match.group("explain_name"), session)
        if match.group("reset_stats"):
            return self._reset_stats()
        if match.group("reset_trace"):
            return self._reset_trace()
        if match.group("reset_prov"):
            return self._reset_provenance()
        if match.group("reset_cache"):
            return self._reset_cache()
        if match.group("export"):
            return self._export_telemetry()
        target = match.group("set_target").lower()
        value = match.group("set_value").lower() == "on"
        return self._set_flag(target, value)

    @staticmethod
    def _parse_count(text: str | None, default: int, capacity: int,
                     command: str) -> tuple[int, BatchResult | None]:
        """Validate an optional ``[N]`` argument: non-numeric input is
        answered with a one-row error result set; values are clamped to
        ``[1, capacity]``."""
        if text is None:
            return default, None
        try:
            count = int(text)
        except ValueError:
            return 0, _error_result(
                f"'{command}' expects a row count, got {text!r}")
        if count < 1:
            count = 1
        return min(count, capacity), None

    # ------------------------------------------------------------------
    # show

    def _show_stats(self) -> BatchResult:
        counters = ResultSet(columns=["metric", "labels", "value"])
        latency = ResultSet(columns=[
            "metric", "labels", "count",
            "mean_ms", "p50_ms", "p95_ms", "p99_ms", "max_ms",
        ])
        for family in self.agent.metrics.families():
            for labels, metric in family.children():
                rendered = _render_labels(labels)
                value = metric.value()
                if isinstance(value, HistogramSummary):
                    latency.rows.append([
                        family.name, rendered, value.count,
                        round(value.mean * 1e3, 4),
                        round(value.p50 * 1e3, 4),
                        round(value.p95 * 1e3, 4),
                        round(value.p99 * 1e3, 4),
                        round(value.max * 1e3, 4),
                    ])
                else:
                    counters.rows.append([family.name, rendered, value])
        result = BatchResult(result_sets=[counters, latency])
        if not self.agent.metrics.enabled:
            result.messages.append(
                "Agent stats collection is off; enable with "
                "'set agent stats on'.")
        return result

    def _show_trace(self, count: int) -> BatchResult:
        trace = self.agent.trace
        rows = ResultSet(columns=[
            "seq", "parent", "step", "detail", "duration_ms",
        ])
        for record in trace.tail(count):
            duration = record.duration
            rows.rows.append([
                record.seq,
                record.parent,
                "  " * record.depth + record.step,
                record.detail,
                None if duration is None else round(duration * 1e3, 4),
            ])
        result = BatchResult(result_sets=[rows])
        if not trace.enabled:
            result.messages.append(
                "Agent tracing is off; enable with 'set agent trace on'.")
        return result

    def _show_events(self, count: int) -> BatchResult:
        """The most recent provenance records, indented into lineage
        trees (a record nests under its first parent when that parent is
        within the displayed window)."""
        journal = self.agent.journal
        window = journal.tail(count)
        depths: dict[int, int] = {}
        rows = ResultSet(columns=[
            "seq", "kind", "record", "context", "detail", "parents",
        ])
        for record in window:
            parent_depth = (
                depths.get(record.parents[0]) if record.parents else None)
            depth = 0 if parent_depth is None else parent_depth + 1
            depths[record.seq] = depth
            rows.rows.append([
                record.seq,
                record.kind,
                "  " * depth + record.name,
                record.context,
                record.detail,
                ",".join(str(parent) for parent in record.parents),
            ])
        result = BatchResult(result_sets=[rows])
        if not journal.enabled:
            result.messages.append(
                "Agent provenance is off; enable with "
                "'set agent provenance on'.")
        return result

    def _show_graph(self) -> BatchResult:
        """Dump the full LED event graph: one row per (node, context)."""
        journal = self.agent.journal
        rows = ResultSet(columns=[
            "event", "kind", "children", "context", "fires", "consumed",
            "rules",
        ])
        led = self.agent.led
        for name in sorted(led.events):
            node = led.events[name]
            kind = _NODE_KINDS.get(type(node).__name__, type(node).__name__)
            children = ", ".join(
                f"{role}={child.name}" for role, child in node.role_children())
            rules = ", ".join(rule.name for rule in led.rules_for(node.name))
            for context in _node_contexts(node):
                summary = journal.node_summary(node.name, context)
                rows.rows.append([
                    node.name, kind, children, context,
                    summary["fires"] if summary else 0,
                    summary["consumed"] if summary else 0,
                    rules,
                ])
        result = BatchResult(result_sets=[rows])
        if not journal.enabled:
            result.messages.append(
                "Agent provenance is off; enable with "
                "'set agent provenance on'.")
        return result

    def _show_status(self) -> BatchResult:
        metrics = self.agent.metrics
        trace = self.agent.trace
        journal = self.agent.journal
        exporter = self.agent.exporter
        status = ResultSet(
            columns=["setting", "value"],
            rows=[
                ["stats", "on" if metrics.enabled else "off"],
                ["trace", "on" if trace.enabled else "off"],
                ["provenance", "on" if journal.enabled else "off"],
                ["metric_families", len(metrics.families())],
                ["trace_records", len(trace.records)],
                ["trace_capacity", trace.max_records],
                ["journal_records", len(journal)],
                ["journal_capacity", journal.capacity],
                ["exporter",
                 "none" if exporter is None else exporter.path],
            ],
        )
        return BatchResult(result_sets=[status])

    def _show_faults(self) -> BatchResult:
        faults = self.agent.faults
        specs = ResultSet(
            columns=["point", "kind", "mode", "times", "match", "seen",
                     "fired"])
        for row in faults.describe():
            specs.rows.append([
                row["point"], row["kind"], row["mode"], row["times"],
                row["match"], row["seen"], row["fired"],
            ])
        policy = self.agent.retry_policy
        retry = ResultSet(
            columns=["setting", "value"],
            rows=[
                ["injector", "armed" if faults.armed else "disarmed"],
                ["faults_injected", faults.injected_count],
                ["retry_max_attempts", policy.max_attempts],
                ["retry_backoff_s", policy.backoff],
                ["retry_multiplier", policy.multiplier],
                ["retry_timeout_s",
                 "unbounded" if policy.timeout is None else policy.timeout],
            ],
        )
        result = BatchResult(result_sets=[specs, retry])
        if not faults.plan.specs:
            result.messages.append(
                "No fault plan armed; pass faults=FaultPlan(...) when "
                "constructing the agent.")
        return result

    def _count_indexes(self) -> int:
        """Total table indexes across every database on the server."""
        total = 0
        for database in self.agent.server.catalog.databases.values():
            for table in database.tables.values():
                total += len(table.indexes)
        return total

    def _show_cache(self, count: int) -> BatchResult:
        """Hot-path introspection: plan-cache counters, index-scan and
        coalescing totals, then the ``count`` busiest table indexes."""
        server = self.agent.server
        stats = server.plan_cache.stats()
        summary = ResultSet(
            columns=["setting", "value"],
            rows=[
                ["plan_cache", "on" if stats["enabled"] else "off"],
                ["plan_cache_size", stats["size"]],
                ["plan_cache_capacity", stats["capacity"]],
                ["plan_cache_hits", stats["hits"]],
                ["plan_cache_misses", stats["misses"]],
                ["plan_cache_evictions", stats["evictions"]],
                ["plan_cache_invalidations", stats["invalidations"]],
                ["plan_cache_hit_rate", stats["hit_rate"]],
                ["schema_epoch", server.catalog.schema_epoch],
                ["index_scans", server.index_scans],
                ["coalesced_payloads", self.agent.notifier.coalesced_payloads],
                ["coalesced_events", self.agent.notifier.coalesced_events],
            ],
        )
        entries = []
        for db_name in sorted(server.catalog.databases):
            database = server.catalog.databases[db_name]
            for table in database.tables.values():
                for index in table.indexes.values():
                    entries.append([
                        f"{database.name}.{table.qualified_name}",
                        index.name,
                        index.column,
                        "yes" if index.unique else "no",
                        index.rebuild_count,
                    ])
        # The busiest (most-rebuilt) indexes are the interesting ones.
        entries.sort(key=lambda entry: (-entry[4], entry[0], entry[1]))
        indexes = ResultSet(
            columns=["table", "index", "column", "unique", "rebuilds"],
            rows=entries[:count],
        )
        result = BatchResult(result_sets=[summary, indexes])
        if len(entries) > count:
            result.messages.append(
                f"Showing {count} of {len(entries)} indexes; "
                f"'show agent cache {len(entries)}' lists all.")
        return result

    # ------------------------------------------------------------------
    # explain trigger

    def _explain_trigger(self, name: str, session) -> BatchResult:
        trigger = self._find_trigger(name, session)
        if trigger is None:
            return _error_result(f"ECA trigger '{name}' does not exist")
        journal = self.agent.journal
        led = self.agent.led
        rule = led.rules.get(trigger.rule_name)
        runtime = self.agent.runtime_for_rule(trigger.rule_name)

        summary = ResultSet(
            columns=["setting", "value"],
            rows=[
                ["trigger", trigger.internal],
                ["event", trigger.event_internal],
                ["context", trigger.context.value],
                ["coupling", trigger.coupling.value],
                ["priority", trigger.priority],
                ["enabled", "yes" if runtime is None or runtime.enabled
                 else "no"],
                ["inline", "yes" if runtime is not None and runtime.inline
                 else "no"],
                ["fire_count", rule.fire_count if rule is not None else 0],
                ["last_fired_at",
                 rule.last_fired_at if rule is not None else None],
            ],
        )

        nodes = ResultSet(columns=[
            "node", "kind", "role", "context", "fires", "consumed",
            "latency_n", "p95_ms", "rules",
        ])
        root = led.events.get(trigger.event_internal)
        if root is not None:
            self._walk_subgraph(root, "", 0, nodes, journal, set())
        result = BatchResult(result_sets=[summary, nodes])
        if root is None:
            # An inline IMMEDIATE trigger on a primitive event runs inside
            # the generated native trigger; there is no LED subgraph.
            result.messages.append(
                f"Event {trigger.event_internal} has no LED node "
                "(inline native-trigger execution).")
        if not journal.enabled:
            result.messages.append(
                "Agent provenance is off; per-node statistics need "
                "'set agent provenance on'.")
        return result

    def _find_trigger(self, name: str, session):
        """Resolve a trigger by client-visible name: expanded through the
        session first, then as-written, then by unique short name."""
        triggers = self.agent.eca_triggers
        candidates = [name]
        if session is not None:
            candidates.insert(
                0, expand_name(name, session.database, session.user))
        for candidate in candidates:
            trigger = triggers.get(candidate.lower())
            if trigger is not None:
                return trigger
        short = name.split(".")[-1].lower()
        matches = [
            trigger for trigger in triggers.values()
            if trigger.trigger_name.lower() == short
        ]
        return matches[0] if len(matches) == 1 else None

    def _walk_subgraph(self, node, role: str, depth: int,
                       rows: ResultSet, journal, seen: set) -> None:
        """DFS over a trigger's event subgraph: one row per
        (node, context) with the journal's per-node aggregates."""
        led = self.agent.led
        kind = _NODE_KINDS.get(type(node).__name__, type(node).__name__)
        rules = ", ".join(rule.name for rule in led.rules_for(node.name))
        for context in _node_contexts(node):
            summary = journal.node_summary(node.name, context)
            rows.rows.append([
                "  " * depth + node.name,
                kind,
                role,
                context,
                summary["fires"] if summary else 0,
                summary["consumed"] if summary else 0,
                summary["latency_count"] if summary else 0,
                round(summary["p95_ms"], 4) if summary else 0.0,
                rules,
            ])
        if id(node) in seen:
            return
        seen.add(id(node))
        for child_role, child in node.role_children():
            self._walk_subgraph(child, child_role, depth + 1, rows,
                                journal, seen)

    # ------------------------------------------------------------------
    # reset / set / export

    def _reset_stats(self) -> BatchResult:
        self.agent.metrics.reset()
        return BatchResult(messages=["Agent statistics reset."])

    def _reset_trace(self) -> BatchResult:
        self.agent.trace.clear()
        return BatchResult(messages=["Agent trace cleared."])

    def _reset_provenance(self) -> BatchResult:
        self.agent.journal.clear()
        return BatchResult(messages=["Agent provenance journal cleared."])

    def _reset_cache(self) -> BatchResult:
        server = self.agent.server
        server.plan_cache.clear()
        server.index_scans = 0
        return BatchResult(messages=["Agent plan cache cleared."])

    def _export_telemetry(self) -> BatchResult:
        if self.agent.exporter is None:
            return _error_result(
                "no telemetry exporter attached; pass "
                "exporter=TelemetryExporter(path) when constructing the "
                "agent")
        lines = self.agent.export_telemetry(label="admin")
        return BatchResult(messages=[
            f"Telemetry snapshot written: {lines} lines to "
            f"{self.agent.exporter.path}."])

    def _set_flag(self, target: str, value: bool) -> BatchResult:
        if target == "stats":
            self.agent.metrics.enabled = value
        elif target == "provenance":
            self.agent.journal.enabled = value
        elif target == "faults":
            if value:
                self.agent.faults.arm()
            else:
                self.agent.faults.disarm()
            state = "armed" if value else "disarmed"
            return BatchResult(messages=[f"Agent fault injection {state}."])
        else:
            self.agent.trace.enabled = value
        state = "on" if value else "off"
        return BatchResult(messages=[f"Agent {target} collection {state}."])


def _node_contexts(node) -> list[str]:
    """The context rows a node contributes: ``-`` for primitives (raises
    are context-independent), the active contexts for composites."""
    if not node.role_children():
        return ["-"]
    contexts = sorted(context.value for context in node.active_contexts)
    return contexts or ["-"]


def _render_labels(labels: dict[str, str]) -> str:
    if not labels:
        return ""
    return ",".join(f"{key}={value}" for key, value in labels.items())
