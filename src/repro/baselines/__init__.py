"""``repro.baselines`` — the alternative architectures the paper rejects.

Section 1 discusses (and dismisses) two alternatives to the mediated ECA
Agent for adding active behaviour to a passive DBMS:

- **Polling** (:mod:`repro.baselines.polling`): an external process that
  periodically scans tables for changes.  Latency is bounded below by the
  poll interval and every poll costs a full scan even when nothing
  changed.
- **Embedded situation checks** (:mod:`repro.baselines.embedded`):
  every application embeds condition checks after its own updates —
  modularity is lost and situations caused by *other* applications are
  missed.

Both are implemented so the benchmarks can quantify the comparison
(E-PERF2), plus a native-trigger-only configuration
(:mod:`repro.baselines.native_only`) demonstrating the Section 2.2
restrictions.
"""

from .embedded import EmbeddedSituationClient, SituationCheck
from .native_only import NativeTriggerToolkit
from .polling import PollingMonitor, TableChange

__all__ = [
    "EmbeddedSituationClient",
    "NativeTriggerToolkit",
    "PollingMonitor",
    "SituationCheck",
    "TableChange",
]
