"""The Embedded Situation Check baseline (paper Section 1).

The application embeds its own condition checks after every statement it
issues.  The paper's criticisms are structural and this implementation
makes them observable:

- extra code in every application (the checks run on every execute);
- situations caused by *other* connections are missed entirely (checks
  only run when *this* client does something);
- business rules are tangled into application code (the checks live in
  the client object, not the database).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from repro.sqlengine import BatchResult, ClientConnection


@dataclass
class SituationCheck:
    """One embedded check: run ``condition_sql``; if it returns any rows,
    invoke the handler with them."""

    name: str
    condition_sql: str
    handler: Callable[[list[list[object]]], None]
    fired: int = 0
    evaluations: int = 0


@dataclass
class EmbeddedSituationClient:
    """A client wrapper that re-evaluates its checks after every command.

    Wraps any :class:`~repro.sqlengine.ClientConnection` (direct or
    mediated); checks are evaluated in registration order after each
    successful ``execute``.
    """

    connection: ClientConnection
    checks: list[SituationCheck] = field(default_factory=list)
    statements_executed: int = 0
    check_queries_issued: int = 0

    def add_check(self, name: str, condition_sql: str,
                  handler: Callable[[list[list[object]]], None]) -> SituationCheck:
        check = SituationCheck(name, condition_sql, handler)
        self.checks.append(check)
        return check

    def execute(self, sql: str) -> BatchResult:
        """Run a statement, then every embedded check."""
        result = self.connection.execute(sql)
        self.statements_executed += 1
        for check in self.checks:
            check.evaluations += 1
            self.check_queries_issued += 1
            check_result = self.connection.execute(check.condition_sql)
            rows = check_result.last.rows if check_result.last else []
            if rows:
                check.fired += 1
                check.handler(rows)
        return result

    def close(self) -> None:
        self.connection.close()
