"""The Polling baseline (paper Sections 1 and 2).

An external monitor periodically re-reads the watched tables and diffs
them against its previous snapshot to infer inserts and deletes (updates
appear as a delete+insert pair, since a passive engine exposes no row
identity).  This is what an application had to do before active
capability: detection latency is bounded below by the polling interval,
and every poll pays a scan of the full table even when nothing changed —
the costs the benchmarks quantify in E-PERF2.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Callable

from repro.sqlengine import SqlServer


@dataclass(frozen=True)
class TableChange:
    """One inferred change: ``kind`` is ``insert`` or ``delete``."""

    table: str
    kind: str
    row: tuple


@dataclass
class PollingMonitor:
    """Snapshot-diff poller over one or more tables.

    Args:
        server: the passive engine to poll.
        tables: table names (resolvable in ``database`` for ``user``).
        database / user: the session identity used for polling.
        on_change: callback invoked once per inferred change.
    """

    server: SqlServer
    tables: list[str]
    database: str
    user: str = "dbo"
    on_change: Callable[[TableChange], None] | None = None
    polls: int = 0
    rows_scanned: int = 0
    changes_detected: int = 0
    _snapshots: dict[str, Counter] = field(default_factory=dict)
    _session: object = None

    def __post_init__(self) -> None:
        self._session = self.server.create_session(self.user, self.database)

    def prime(self) -> None:
        """Take the initial snapshots without reporting changes."""
        for table in self.tables:
            self._snapshots[table] = self._read(table)

    def poll(self) -> list[TableChange]:
        """One polling round: scan every table, diff, report changes."""
        self.polls += 1
        changes: list[TableChange] = []
        for table in self.tables:
            current = self._read(table)
            previous = self._snapshots.get(table, Counter())
            for row, count in (current - previous).items():
                for _ in range(count):
                    changes.append(TableChange(table, "insert", row))
            for row, count in (previous - current).items():
                for _ in range(count):
                    changes.append(TableChange(table, "delete", row))
            self._snapshots[table] = current
        self.changes_detected += len(changes)
        if self.on_change is not None:
            for change in changes:
                self.on_change(change)
        return changes

    def _read(self, table: str) -> Counter:
        result = self.server.execute(f"select * from {table}", self._session)
        rows = result.last.rows if result.last else []
        self.rows_scanned += len(rows)
        return Counter(tuple(row) for row in rows)
